//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the `[[bench]]`
//! targets link against this minimal harness instead. It keeps the
//! Criterion API surface the workspace uses (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!`, `criterion_main!`)
//! and reports mean/min wall-clock per iteration — no statistics, no
//! HTML reports, no state between runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget for one benchmark id.
const TARGET_TIME: Duration = Duration::from_millis(700);
/// Hard cap on timed iterations per benchmark id.
const MAX_ITERS: u64 = 30;

/// What a throughput number is denominated in.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Passed to the closure under measurement; `iter` times its argument.
pub struct Bencher {
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Run `f` repeatedly and record mean wall-clock per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call, then time batches until the budget
        // or the iteration cap is reached.
        let _ = f();
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters == 0 || started.elapsed() < TARGET_TIME) {
            std::hint::black_box(f());
            iters += 1;
        }
        self.result = Some((started.elapsed(), iters));
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let Some((total, iters)) = b.result else {
        println!("{name:50} (no measurement)");
        return;
    };
    let mean = total.as_secs_f64() / iters as f64;
    print!("{name:50} {:>12.3} ms/iter  ({iters} iters)", mean * 1e3);
    match throughput {
        Some(Throughput::Elements(n)) => {
            print!("  {:>12.0} elem/s", n as f64 / mean);
        }
        Some(Throughput::Bytes(n)) => {
            print!("  {:>12.0} B/s", n as f64 / mean);
        }
        None => {}
    }
    println!();
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Denominate subsequent results in `throughput` units.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Measure `f` with an input value under `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { result: None };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    /// End the group (no-op; prints happen eagerly).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Measure `f` under `name`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(&name.to_string(), &b, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
