//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of proptest this workspace's tests use: the [`proptest!`]
//! macro, integer-range / tuple / [`Just`] / mapped / union strategies,
//! `collection::vec`, `any::<bool>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case index and seed so
//!   it can be replayed, but is not minimized.
//! * **Fixed deterministic seeding.** Each test function derives its RNG
//!   seed from its own name, so runs are reproducible without a
//!   persistence file; `*.proptest-regressions` files are ignored.
//! * **Failures panic immediately** (`prop_assert!` is `assert!`), which
//!   is how cargo's test harness reports them anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::rc::Rc;

/// Test-runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Shrink-iteration cap (accepted for proptest API parity; this
        /// shim does not shrink, it reports the raw failing case).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Deterministic generator driving strategy sampling (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary byte string (the test
        /// name), so every property gets an independent, stable stream.
        pub fn deterministic(tag: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index below `n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// Something that can produce random values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-range strategy for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl strategy::Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Self::Strategy {
        Any(std::marker::PhantomData)
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Self::Strategy {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A length specification: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Pick a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below(*self.end() - *self.start() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector whose elements come from `element` and whose length
    /// comes from `size` (a `usize` or a range).
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Re-export under the name real proptest uses for `Union` construction.
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: each function runs `cases` times with inputs
/// drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // On panic the harness prints this once per failing
                    // case so the input draw can be replayed.
                    let __guard = $crate::CaseGuard::new(stringify!($name), __case);
                    $body
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Prints which randomized case failed if a property panics.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case of `name`.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// The case finished without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest shim: property `{}` failed at case {} \
                 (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}

// Keep the unused-import lint quiet for the `Rc` used in module docs.
#[allow(unused)]
type _RcUsed = Rc<()>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t", 0);
        for _ in 0..200 {
            let x = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let v = collection::vec(0u64..5, 2..6).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2),];
        let mut rng = crate::test_runner::TestRng::deterministic("t2", 0);
        let mut saw_just = false;
        let mut saw_map = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                1 => saw_just = true,
                x if (20..40).contains(&x) => saw_map = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(saw_just && saw_map);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: bindings, tuples, bools, trailing comma.
        #[test]
        fn macro_binds_all_args(
            a in 0u64..10,
            pair in (0u8..4, any::<bool>()),
            v in collection::vec(0usize..3, 4),
        ) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(v.len(), 4);
        }
    }
}
