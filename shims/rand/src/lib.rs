//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is SplitMix64 —
//! statistically fine for arrival-skew/think-time jitter, deterministic
//! for a given seed on every platform, and dependency-free.
//!
//! Determinism contract: for a fixed seed the sequence is stable across
//! runs, platforms, and compiler versions. Experiment outputs (e.g.
//! `tables_output.txt`) depend on this stream, so changing the generator
//! is a result-breaking change and must be called out in CHANGES.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable random generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// Not the real `rand::rngs::StdRng` (ChaCha12); this workspace only
    /// needs reproducible jitter, not cryptographic quality.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood; public domain reference
            // constants).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A generator constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Range-sampling support (mirrors the `rand::distributions` machinery
/// just enough for `gen_range`).
pub mod distributions {
    use crate::RngCore;

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draw one sample.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty gen_range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty gen_range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    impl_sample_range!(u8, u16, u32, u64, usize);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
            let z = rng.gen_range(3usize..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
