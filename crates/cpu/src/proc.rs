//! The processor: drives one kernel, owns a private cache hierarchy,
//! answers coherence traffic, and executes active-message handlers.

use crate::kernel::{Kernel, Op, Outcome};
use amo_cache::{CacheHierarchy, Evicted, LineState, LlReservation, Probe};
use amo_types::stats::OpClass;
use amo_types::tape::ChoiceKind;
use amo_types::{
    Addr, BlockAddr, Cycle, HandlerKind, InterventionKind, InterventionResp, NodeId, Payload,
    ProcId, ReqId, SharedTape, SpinPred, Stats, SystemConfig, Word,
};
use std::collections::VecDeque;

/// Side effects the machine executes on the processor's behalf.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcEffect {
    /// Send a message toward a node's hub (the machine adds bus latency
    /// and routes through the fabric).
    Send {
        /// Destination node.
        dst: NodeId,
        /// Message.
        payload: Payload,
    },
    /// Call [`Processor::step`] at `when`.
    Wake {
        /// Wake-up time.
        when: Cycle,
    },
    /// Call [`Processor::handler_done`] at `when`.
    HandlerWake {
        /// Handler completion time.
        when: Cycle,
    },
    /// Call [`Processor::timeout`] with `req` at `when` (active-message
    /// retransmission, AMU NACK backoff, or end-to-end delivery timer —
    /// `kind` says which, because their expiry actions differ).
    TimeoutAt {
        /// Outstanding request the timer guards.
        req: ReqId,
        /// Expiry time.
        when: Cycle,
        /// Which timer this is.
        kind: TimerKind,
    },
    /// The kernel finished at `when`.
    Finished {
        /// Completion time.
        when: Cycle,
    },
    /// A measurement marker was hit (see [`Op::Mark`]).
    Mark {
        /// Marker id.
        id: u32,
        /// Cycle at which the kernel passed the marker.
        when: Cycle,
    },
    /// A kernel operation's completion span, for tracing. Emitted only
    /// when [`Processor::set_op_tracing`] enabled it (the machine turns
    /// it on when a real tracer is attached), because completion times
    /// are known here and nowhere else.
    OpDone {
        /// Latency-accounting class of the operation.
        class: OpClass,
        /// Issue cycle.
        start: Cycle,
        /// Completion cycle.
        end: Cycle,
        /// Root causal flow of the operation: the first request tag it
        /// allocated (`ReqId::flow`), or 0 if it never left the core.
        flow: u64,
    },
    /// Re-deliver this payload to the same processor at `when`: a probe
    /// arrived inside a freshly-filled block's minimum-residence window
    /// (the LL/SC forward-progress guarantee).
    Defer {
        /// The probe to re-deliver.
        payload: Payload,
        /// Earliest re-delivery time.
        when: Cycle,
    },
    /// The processor hit an unrecoverable condition (retry budget
    /// exhausted). The machine converts this into a typed `SimError`
    /// instead of the old `assert!` process abort.
    Fault {
        /// What went wrong.
        kind: ProcFault,
        /// Cycle at which the fault was detected.
        when: Cycle,
    },
}

/// Which retransmission timer a [`ProcEffect::TimeoutAt`] arms. The
/// kinds must stay distinguishable at expiry: a `Retry` timer on an
/// AMO/MAO continuation is an AMU-NACK backoff (its resend counts
/// `amu_nack_retries`), while an `E2e` timer is the delivery-fault
/// watchdog on the same request (its resend counts
/// `e2e_retransmissions` and escalates past `max_e2e_retries`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerKind {
    /// Active-message retransmission or AMU-NACK backoff expiry.
    Retry,
    /// End-to-end delivery timeout; `attempt` is the retransmission
    /// this expiry triggers (1 = first resend).
    E2e {
        /// Retransmission attempt this timer triggers when it fires.
        attempt: u32,
    },
}

/// Unrecoverable processor-side conditions, reported via
/// [`ProcEffect::Fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcFault {
    /// An active message exhausted its retransmission budget
    /// (`ActMsgConfig::max_retries`).
    ActMsgStarved {
        /// Retries attempted before giving up.
        attempts: u32,
    },
    /// An AMO/MAO was NACKed by the home AMU more than
    /// `AmuConfig::max_retries` times.
    AmuStarved {
        /// Retries attempted before giving up.
        attempts: u32,
    },
    /// An outstanding request exhausted `FaultConfig::max_e2e_retries`
    /// end-to-end retransmissions under delivery faults.
    RequestTimedOut {
        /// The request that never completed (its tag pins the exact
        /// backoff schedule — see [`Processor::e2e_retx_schedule`]).
        req: ReqId,
        /// End-to-end retransmissions attempted before giving up.
        attempts: u32,
    },
}

/// What to do when the reply for an outstanding kernel request arrives.
#[derive(Clone, Copy, Debug)]
enum Cont {
    Load {
        addr: Addr,
    },
    Ll {
        addr: Addr,
    },
    Store {
        addr: Addr,
        value: Word,
    },
    Sc {
        addr: Addr,
        value: Word,
    },
    Rmw {
        kind: amo_types::AmoKind,
        addr: Addr,
        operand: Word,
    },
    Amo {
        kind: amo_types::AmoKind,
        addr: Addr,
        operand: Word,
        test: Option<Word>,
        /// NACK-driven resend count (0 = first send).
        attempt: u32,
    },
    Mao {
        kind: amo_types::AmoKind,
        addr: Addr,
        operand: Word,
        attempt: u32,
    },
    UncachedLoad {
        addr: Addr,
        attempt: u32,
    },
    UncachedStore {
        addr: Addr,
        value: Word,
        attempt: u32,
    },
    ActMsg {
        home: NodeId,
        handler: HandlerKind,
        attempt: u32,
    },
    SpinFill {
        addr: Addr,
        pred: SpinPred,
    },
}

#[derive(Clone, Copy, Debug)]
enum KState {
    /// Ready to issue the next kernel op.
    Ready,
    /// A local (cache-hit) op completes at the given cycle.
    LocalOp { until: Cycle },
    /// An explicit `Delay` op completes at the given cycle.
    Delaying { until: Cycle },
    /// A request is outstanding; `Cont` says how to finish it.
    Waiting { req: ReqId, cont: Cont },
    /// Sleeping on a cached copy; woken by invalidation or word update.
    Spinning { addr: Addr, pred: SpinPred },
    /// The op targets a block with another outstanding transaction from
    /// this processor (e.g. an injected handler store); it re-issues when
    /// that transaction completes — MSHR-style same-block merging.
    Blocked { block: BlockAddr, op: Op },
    /// Kernel returned `Done`.
    Finished,
}

/// An incoming active message admitted to the handler queue.
#[derive(Clone, Copy, Debug)]
struct IncomingMsg {
    req: ReqId,
    requester: ProcId,
    handler: HandlerKind,
}

/// Home-mediated lock bookkeeping (see `HandlerKind::LockAcquire`).
#[derive(Default, Debug)]
struct LockSrv {
    next_ticket: Word,
    now_serving: Word,
    /// ticket → (waiter, its request tag, so the deferred grant matches).
    waiting: std::collections::BTreeMap<Word, (ProcId, ReqId)>,
}

/// One simulated processor.
pub struct Processor {
    id: ProcId,
    node: NodeId,
    cfg: SystemConfig,
    caches: CacheHierarchy,
    reservation: LlReservation,
    kernel: Option<Box<dyn Kernel>>,
    kstate: KState,
    last_outcome: Option<Outcome>,
    next_req: u64,
    /// Outstanding injected (handler-published) stores: (req, addr, value).
    /// A handful at most — linear scan beats hashing.
    injected: Vec<(ReqId, Addr, Word)>,
    /// Blocks with an in-flight coherence request from this processor
    /// (MSHRs): a second request for the same block must merge, not issue.
    /// Bounded by the MSHR count (single digits), so a flat vector with
    /// linear probes replaces the old hash set on this per-miss path.
    outstanding: Vec<u64>,
    /// Injected stores waiting for an outstanding same-block transaction.
    deferred_injected: Vec<(Addr, Word)>,
    /// Minimum-residence windows of freshly-filled blocks: probes for
    /// these blocks are deferred until the recorded cycle.
    hold_until: Vec<(u64, Cycle)>,
    /// The in-flight kernel op's latency-accounting class and issue time.
    pending_op: Option<(OpClass, Cycle)>,
    /// Root causal flow of the in-flight kernel op: the first request tag
    /// it allocated. Follow-up requests of the same op (LL/SC pairs,
    /// NACK retries under a fresh tag) are linked back to it via
    /// [`Processor::flow_parent`]. 0 = the op has not allocated yet.
    /// Only maintained while `trace_ops` is on.
    op_root: u64,
    /// Emit [`ProcEffect::OpDone`] spans on op completion (off unless a
    /// tracer is attached, so the untraced path pays nothing).
    trace_ops: bool,
    handler_queue: VecDeque<IncomingMsg>,
    running_handler: Option<IncomingMsg>,
    /// Current handler window: the processor is occupied by handler
    /// execution in `busy_from..busy_until`. The kernel may issue before
    /// `busy_from` (yield gaps between handler bursts).
    busy_from: Cycle,
    /// End of the current handler window.
    busy_until: Cycle,
    /// Handlers served since the last yield gap.
    handlers_since_yield: u32,
    /// Latest busy-retry wake already scheduled (suppresses the wake
    /// storm a saturated handler processor would otherwise generate:
    /// every spurious wake during busy time would schedule another).
    armed_wake: Cycle,
    /// At-most-once dedup: last served request per requester, indexed
    /// densely by [`ProcId::index`] and grown on demand.
    served: Vec<Option<(ReqId, Word)>>,
    /// Node-local active-message service counters.
    service_counters: Vec<Word>,
    /// Home-mediated lock state, keyed by lock index (few locks per
    /// home — linear scan).
    lock_srv: Vec<(u16, LockSrv)>,
    finished_at: Option<Cycle>,
    /// True when the fault plan injects delivery faults (drop / dup /
    /// reorder): arms end-to-end timers on AMO-layer requests and
    /// tolerates stale or duplicate replies instead of treating them as
    /// protocol bugs. Off (the default) keeps the strict asserts and
    /// adds zero events, so fault-free timing is untouched.
    delivery_hardened: bool,
    /// Schedule-explorer choice tape. When attached, retransmission
    /// jitter is an explicit tape choice instead of the keyed hash (see
    /// `amo_types::tape`); `None` (the default) keeps the hashed
    /// schedule bit-identical to the untaped engine.
    tape: Option<SharedTape>,
}

impl Processor {
    /// Build a processor with empty caches and no kernel.
    pub fn new(id: ProcId, cfg: SystemConfig) -> Self {
        Processor {
            id,
            node: id.node(cfg.procs_per_node),
            caches: CacheHierarchy::new(cfg.l1, cfg.l2),
            cfg,
            reservation: LlReservation::new(),
            kernel: None,
            kstate: KState::Finished,
            last_outcome: None,
            // Tags start at 1 so no request ever maps to flow id 0,
            // which the tracer reserves for "no flow".
            next_req: 1,
            injected: Vec::new(),
            outstanding: Vec::new(),
            deferred_injected: Vec::new(),
            hold_until: Vec::new(),
            pending_op: None,
            op_root: 0,
            trace_ops: false,
            handler_queue: VecDeque::new(),
            running_handler: None,
            busy_from: 0,
            busy_until: 0,
            handlers_since_yield: 0,
            armed_wake: 0,
            served: Vec::new(),
            service_counters: Vec::new(),
            lock_srv: Vec::new(),
            finished_at: None,
            delivery_hardened: cfg.faults.delivery_enabled(),
            tape: None,
        }
    }

    /// Attach a schedule-explorer choice tape: retry-jitter picks become
    /// explicit tape choices (see `amo_types::tape`).
    pub fn set_schedule_tape(&mut self, tape: SharedTape) {
        self.tape = Some(tape);
    }

    /// This processor's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The node this processor lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Completion time of the kernel, if it finished.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Emit [`ProcEffect::OpDone`] spans for completed kernel operations
    /// (tracing support; off by default).
    pub fn set_op_tracing(&mut self, on: bool) {
        self.trace_ops = on;
    }

    /// In-flight coherence requests from this processor (occupied MSHRs;
    /// observability sampling).
    pub fn outstanding_misses(&self) -> usize {
        self.outstanding.len()
    }

    /// Read-only view of the cache hierarchy (tests/diagnostics).
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// Mutable view of the cache hierarchy (machine applies word updates).
    pub fn caches_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.caches
    }

    /// Install a kernel and arm the processor; call [`Self::step`] to
    /// start it.
    pub fn load_kernel(&mut self, kernel: Box<dyn Kernel>) {
        self.kernel = Some(kernel);
        self.kstate = KState::Ready;
        self.last_outcome = None;
        self.finished_at = None;
    }

    /// Allocate a tag without tying it to the in-flight kernel op
    /// (handler-published stores, which belong to the remote sender's
    /// flow, not to whatever this core happens to be executing).
    fn alloc_req_raw(&mut self) -> ReqId {
        let r = ReqId(((self.id.0 as u64) << 48) | self.next_req);
        self.next_req += 1;
        r
    }

    fn alloc_req(&mut self) -> ReqId {
        let r = self.alloc_req_raw();
        if self.trace_ops && self.op_root == 0 && self.pending_op.is_some() {
            self.op_root = r.0;
        }
        r
    }

    /// Parent flow link for a message this processor is about to inject:
    /// the in-flight op's root flow when `payload` carries a follow-up
    /// request of that op (an SC after its LL, a retry under a fresh
    /// tag), else 0. The tracer stores it on the send event so the
    /// causal DAG can stitch multi-request ops together.
    pub fn flow_parent(&self, payload: &Payload) -> u64 {
        if self.op_root == 0 {
            return 0;
        }
        match payload.req() {
            Some(r)
                if r.0 != self.op_root
                    && r.proc() == self.id
                    && !self.injected.iter().any(|&(ir, _, _)| ir == r) =>
            {
                self.op_root
            }
            _ => 0,
        }
    }

    /// Advance the kernel: complete local ops whose time has come and
    /// issue the next operation.
    pub fn step(&mut self, now: Cycle, stats: &mut Stats) -> Vec<ProcEffect> {
        let mut eff = Vec::new();
        self.step_into(now, stats, &mut eff);
        eff
    }

    /// Allocation-free form of [`Self::step`]: appends effects to `eff`.
    pub fn step_into(&mut self, now: Cycle, stats: &mut Stats, eff: &mut Vec<ProcEffect>) {
        match self.kstate {
            KState::LocalOp { until } if now >= until => {
                self.kstate = KState::Ready;
            }
            KState::Delaying { until } if now >= until => {
                self.kstate = KState::Ready;
                self.last_outcome = Some(Outcome::Delayed);
            }
            KState::Ready => {}
            // Waiting / Spinning / Finished / not-yet-due local ops:
            // nothing to do on a (possibly spurious) wake.
            _ => return,
        }
        // Handler execution occupies the pipeline: postpone the issue.
        // Only one retry wake per busy horizon — without the dedup, a
        // saturated handler processor generates a quadratic wake storm.
        // The kernel is free before `busy_from`: the scheduler's yield
        // gaps guarantee the host process is never starved forever by a
        // handler storm.
        if now >= self.busy_from && self.busy_until > now {
            if self.armed_wake < self.busy_until {
                self.armed_wake = self.busy_until;
                eff.push(ProcEffect::Wake {
                    when: self.busy_until,
                });
            }
            return;
        }
        let op = self
            .kernel
            .as_mut()
            .expect("step without a kernel")
            .next(self.last_outcome.take());
        self.dispatch(op, now, stats, eff);
    }

    fn finish_local(
        &mut self,
        outcome: Outcome,
        when: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        if let Some((class, started)) = self.pending_op.take() {
            stats.record_op(class, when.saturating_sub(started));
            if self.trace_ops {
                eff.push(ProcEffect::OpDone {
                    class,
                    start: started,
                    end: when,
                    flow: self.op_root,
                });
            }
            self.op_root = 0;
        }
        self.last_outcome = Some(outcome);
        self.kstate = KState::LocalOp { until: when };
        eff.push(ProcEffect::Wake { when });
    }

    fn hit_latency(&self, probe: &Probe) -> Cycle {
        match probe {
            Probe::L1 { .. } => self.cfg.l1.hit_latency,
            Probe::L2 { .. } => self.cfg.l2.hit_latency,
            Probe::Miss => unreachable!("miss has no hit latency"),
        }
    }

    fn send_home(&mut self, addr_home: NodeId, payload: Payload, eff: &mut Vec<ProcEffect>) {
        eff.push(ProcEffect::Send {
            dst: addr_home,
            payload,
        });
    }

    fn wait(&mut self, req: ReqId, cont: Cont) {
        self.kstate = KState::Waiting { req, cont };
    }

    /// Arm the end-to-end delivery timer on a freshly issued AMO-layer
    /// request. No-op unless delivery faults are active, so the
    /// fault-free machine schedules zero extra events.
    fn arm_e2e(&self, req: ReqId, now: Cycle, eff: &mut Vec<ProcEffect>) {
        if self.delivery_hardened {
            eff.push(ProcEffect::TimeoutAt {
                req,
                when: now + self.retry_delay_for(req, 0, self.cfg.faults.e2e_timeout),
                kind: TimerKind::E2e { attempt: 1 },
            });
        }
    }

    /// Overwrite-or-insert the minimum-residence window of a block.
    fn set_hold_until(&mut self, block: BlockAddr, until: Cycle) {
        if let Some(slot) = self.hold_until.iter_mut().find(|(b, _)| *b == block.0) {
            slot.1 = until;
        } else {
            self.hold_until.push((block.0, until));
        }
    }

    /// Remove and return the injected store registered under `req`.
    fn take_injected(&mut self, req: ReqId) -> Option<(Addr, Word)> {
        let i = self.injected.iter().position(|&(r, _, _)| r == req)?;
        let (_, addr, value) = self.injected.swap_remove(i);
        Some((addr, value))
    }

    /// Last served (request, result) for `requester`, if any.
    fn served_get(&self, requester: ProcId) -> Option<(ReqId, Word)> {
        self.served.get(requester.index()).copied().flatten()
    }

    /// Record the served (request, result) for `requester`.
    fn served_set(&mut self, requester: ProcId, req: ReqId, result: Word) {
        let idx = requester.index();
        if self.served.len() <= idx {
            self.served.resize(idx + 1, None);
        }
        self.served[idx] = Some((req, result));
    }

    /// Lock-server state for `lock`, created on first touch.
    fn lock_srv_mut(&mut self, lock: u16) -> &mut LockSrv {
        if let Some(i) = self.lock_srv.iter().position(|(l, _)| *l == lock) {
            return &mut self.lock_srv[i].1;
        }
        self.lock_srv.push((lock, LockSrv::default()));
        &mut self.lock_srv.last_mut().expect("just pushed").1
    }

    /// Register an outstanding block transaction and send its request.
    fn send_block_req(&mut self, block: BlockAddr, payload: Payload, eff: &mut Vec<ProcEffect>) {
        debug_assert!(
            !self.outstanding.contains(&block.0),
            "duplicate outstanding request for {block}"
        );
        self.outstanding.push(block.0);
        eff.push(ProcEffect::Send {
            dst: block.home(),
            payload,
        });
    }

    /// The block a kernel op needs coherent access to, if any.
    fn coherent_block(&self, op: &Op) -> Option<BlockAddr> {
        match op {
            Op::Load { addr }
            | Op::LoadLinked { addr }
            | Op::Store { addr, .. }
            | Op::StoreConditional { addr, .. }
            | Op::AtomicRmw { addr, .. }
            | Op::SpinUntil { addr, .. } => Some(self.caches.l2_block(*addr)),
            _ => None,
        }
    }

    /// An outstanding block transaction completed: release the MSHR and
    /// re-dispatch anything that merged behind it.
    fn txn_complete(
        &mut self,
        block: BlockAddr,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        if let Some(i) = self.outstanding.iter().position(|&b| b == block.0) {
            self.outstanding.swap_remove(i);
        }
        // A kernel op deferred on this block re-issues now.
        if let KState::Blocked { block: b, op } = self.kstate {
            if b == block {
                self.kstate = KState::Ready;
                self.dispatch(op, now, stats, eff);
            }
        }
        // A spin on a word of this block re-checks the freshly-arrived data.
        if let KState::Spinning { addr, pred } = self.kstate {
            if self.caches.l2_block(addr) == block {
                if let Some(v) = self.caches.read_word(addr) {
                    if pred.eval(v) {
                        self.finish_local(
                            Outcome::SpinDone(v),
                            now + self.cfg.l1.hit_latency,
                            stats,
                            eff,
                        );
                    }
                }
            }
        }
        // Deferred injected stores for this block re-issue.
        let (ready, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.deferred_injected)
            .into_iter()
            .partition(|(a, _)| self.caches.l2_block(*a) == block);
        self.deferred_injected = rest;
        for (addr, value) in ready {
            self.start_injected_store(addr, value, now, stats, eff);
        }
    }

    fn op_class(op: &Op) -> Option<OpClass> {
        match op {
            Op::Load { .. } | Op::LoadLinked { .. } => Some(OpClass::Load),
            Op::Store { .. } | Op::StoreConditional { .. } => Some(OpClass::Store),
            Op::AtomicRmw { .. } => Some(OpClass::Atomic),
            Op::Amo { .. } => Some(OpClass::Amo),
            Op::Mao { .. } | Op::UncachedLoad { .. } | Op::UncachedStore { .. } => {
                Some(OpClass::Mao)
            }
            Op::ActiveMsg { .. } => Some(OpClass::ActMsg),
            Op::SpinUntil { .. } => Some(OpClass::Spin),
            Op::Delay { .. } | Op::Mark { .. } | Op::Done => None,
        }
    }

    fn dispatch(&mut self, op: Op, now: Cycle, stats: &mut Stats, eff: &mut Vec<ProcEffect>) {
        // Latency accounting starts at first dispatch (a re-dispatch
        // after an MSHR merge keeps the original issue time).
        if self.pending_op.is_none() {
            if let Some(class) = Self::op_class(&op) {
                self.pending_op = Some((class, now));
            }
        }
        // MSHR merge: a second request for a block with an in-flight
        // transaction from this processor must wait for it.
        if let Some(block) = self.coherent_block(&op) {
            if self.outstanding.contains(&block.0) {
                self.kstate = KState::Blocked { block, op };
                return;
            }
        }
        match op {
            Op::Done => {
                self.kstate = KState::Finished;
                self.finished_at = Some(now);
                eff.push(ProcEffect::Finished { when: now });
            }
            Op::Delay { cycles } => {
                self.kstate = KState::Delaying {
                    until: now + cycles,
                };
                eff.push(ProcEffect::Wake { when: now + cycles });
            }
            Op::Mark { id } => {
                eff.push(ProcEffect::Mark { id, when: now });
                self.kstate = KState::Delaying { until: now };
                eff.push(ProcEffect::Wake { when: now });
            }
            Op::Load { addr } => match self.caches.probe_load(addr) {
                Probe::Miss => {
                    let req = self.alloc_req();
                    let block = self.caches.l2_block(addr);
                    self.send_block_req(
                        block,
                        Payload::GetS {
                            req,
                            requester: self.id,
                            block,
                        },
                        eff,
                    );
                    self.wait(req, Cont::Load { addr });
                }
                p @ (Probe::L1 { value, .. } | Probe::L2 { value, .. }) => {
                    let lat = self.hit_latency(&p);
                    self.finish_local(Outcome::Value(value), now + lat, stats, eff);
                }
            },
            Op::LoadLinked { addr } => {
                // LL fetches the block with write intent (exclusive), as
                // synchronization libraries on Origin-class machines do —
                // the paper's Fig. 1 shows LL/SC contenders "requesting
                // exclusive ownership". Without this, contended LL/SC
                // livelocks: a Shared LL's upgrade always loses its
                // reservation to a concurrent writer.
                stats.ll_issued += 1;
                match self.caches.probe_load(addr) {
                    Probe::Miss => {
                        let req = self.alloc_req();
                        let block = self.caches.l2_block(addr);
                        self.send_block_req(
                            block,
                            Payload::GetX {
                                req,
                                requester: self.id,
                                block,
                            },
                            eff,
                        );
                        self.wait(req, Cont::Ll { addr });
                    }
                    p @ (Probe::L1 { state, value } | Probe::L2 { state, value }) => {
                        if state.can_write() {
                            self.reservation.set(self.caches.l2_block(addr));
                            let lat = self.hit_latency(&p);
                            self.finish_local(Outcome::Value(value), now + lat, stats, eff);
                        } else {
                            let req = self.alloc_req();
                            let block = self.caches.l2_block(addr);
                            self.send_block_req(
                                block,
                                Payload::Upgrade {
                                    req,
                                    requester: self.id,
                                    block,
                                },
                                eff,
                            );
                            self.wait(req, Cont::Ll { addr });
                        }
                    }
                }
            }
            Op::Store { addr, value } => self.issue_store(addr, value, now, stats, eff),
            Op::StoreConditional { addr, value } => {
                let block = self.caches.l2_block(addr);
                if !self.reservation.holds(block) {
                    stats.sc_failures += 1;
                    self.reservation.consume(block);
                    self.finish_local(Outcome::ScResult(false), now + 2, stats, eff);
                    return;
                }
                match self.caches.state_of(addr) {
                    Some(s) if s.can_write() => {
                        self.reservation.consume(block);
                        assert!(self.caches.write_owned_word(addr, value));
                        stats.sc_successes += 1;
                        self.finish_local(
                            Outcome::ScResult(true),
                            now + self.cfg.l1.hit_latency + self.cfg.llsc_pair_overhead,
                            stats,
                            eff,
                        );
                    }
                    Some(_) => {
                        // Shared: race for exclusivity through home.
                        let req = self.alloc_req();
                        self.send_block_req(
                            block,
                            Payload::Upgrade {
                                req,
                                requester: self.id,
                                block,
                            },
                            eff,
                        );
                        self.wait(req, Cont::Sc { addr, value });
                    }
                    None => {
                        // Reservation without a line cannot happen (losing
                        // the line clears the reservation) — defensive.
                        stats.sc_failures += 1;
                        self.reservation.consume(block);
                        self.finish_local(Outcome::ScResult(false), now + 2, stats, eff);
                    }
                }
            }
            Op::AtomicRmw {
                kind,
                addr,
                operand,
            } => {
                let block = self.caches.l2_block(addr);
                match self.caches.state_of(addr) {
                    Some(s) if s.can_write() => {
                        let old = self.caches.read_word(addr).expect("owned line present");
                        assert!(self.caches.write_owned_word(addr, kind.apply(old, operand)));
                        stats.atomic_ops += 1;
                        self.finish_local(
                            Outcome::Value(old),
                            now + self.cfg.l1.hit_latency,
                            stats,
                            eff,
                        );
                    }
                    Some(_) => {
                        let req = self.alloc_req();
                        self.send_block_req(
                            block,
                            Payload::Upgrade {
                                req,
                                requester: self.id,
                                block,
                            },
                            eff,
                        );
                        self.wait(
                            req,
                            Cont::Rmw {
                                kind,
                                addr,
                                operand,
                            },
                        );
                    }
                    None => {
                        let req = self.alloc_req();
                        self.send_block_req(
                            block,
                            Payload::GetX {
                                req,
                                requester: self.id,
                                block,
                            },
                            eff,
                        );
                        self.wait(
                            req,
                            Cont::Rmw {
                                kind,
                                addr,
                                operand,
                            },
                        );
                    }
                }
            }
            Op::Amo {
                kind,
                addr,
                operand,
                test,
            } => {
                let req = self.alloc_req();
                self.send_home(
                    addr.home(),
                    Payload::AmoReq {
                        req,
                        requester: self.id,
                        kind,
                        addr,
                        operand,
                        test,
                    },
                    eff,
                );
                self.wait(
                    req,
                    Cont::Amo {
                        kind,
                        addr,
                        operand,
                        test,
                        attempt: 0,
                    },
                );
                self.arm_e2e(req, now, eff);
            }
            Op::Mao {
                kind,
                addr,
                operand,
            } => {
                let req = self.alloc_req();
                self.send_home(
                    addr.home(),
                    Payload::MaoReq {
                        req,
                        requester: self.id,
                        kind,
                        addr,
                        operand,
                    },
                    eff,
                );
                self.wait(
                    req,
                    Cont::Mao {
                        kind,
                        addr,
                        operand,
                        attempt: 0,
                    },
                );
                self.arm_e2e(req, now, eff);
            }
            Op::UncachedLoad { addr } => {
                let req = self.alloc_req();
                self.send_home(
                    addr.home(),
                    Payload::UncachedRead {
                        req,
                        requester: self.id,
                        addr,
                    },
                    eff,
                );
                self.wait(req, Cont::UncachedLoad { addr, attempt: 0 });
                self.arm_e2e(req, now, eff);
            }
            Op::UncachedStore { addr, value } => {
                let req = self.alloc_req();
                self.send_home(
                    addr.home(),
                    Payload::UncachedWrite {
                        req,
                        requester: self.id,
                        addr,
                        value,
                    },
                    eff,
                );
                self.wait(
                    req,
                    Cont::UncachedStore {
                        addr,
                        value,
                        attempt: 0,
                    },
                );
                self.arm_e2e(req, now, eff);
            }
            Op::ActiveMsg { home, handler } => {
                let req = self.alloc_req();
                let target_proc = home
                    .procs(self.cfg.procs_per_node)
                    .next()
                    .expect("node has processors");
                self.send_home(
                    home,
                    Payload::ActiveMsg {
                        req,
                        requester: self.id,
                        target_proc,
                        handler: Box::new(handler),
                        attempt: 0,
                    },
                    eff,
                );
                eff.push(ProcEffect::TimeoutAt {
                    req,
                    when: now + self.retry_delay_for(req, 0, self.cfg.actmsg.timeout),
                    kind: TimerKind::Retry,
                });
                self.wait(
                    req,
                    Cont::ActMsg {
                        home,
                        handler,
                        attempt: 0,
                    },
                );
            }
            Op::SpinUntil { addr, pred } => match self.caches.probe_load(addr) {
                Probe::Miss => {
                    let req = self.alloc_req();
                    let block = self.caches.l2_block(addr);
                    self.send_block_req(
                        block,
                        Payload::GetS {
                            req,
                            requester: self.id,
                            block,
                        },
                        eff,
                    );
                    self.wait(req, Cont::SpinFill { addr, pred });
                }
                p @ (Probe::L1 { value, .. } | Probe::L2 { value, .. }) => {
                    if pred.eval(value) {
                        let lat = self.hit_latency(&p);
                        self.finish_local(Outcome::SpinDone(value), now + lat, stats, eff);
                    } else {
                        self.kstate = KState::Spinning { addr, pred };
                    }
                }
            },
        }
    }

    fn issue_store(
        &mut self,
        addr: Addr,
        value: Word,
        _now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        // Shared helper used by kernel stores; hit path handled by caller
        // via probe_store before calling — here we always probe again.
        match self.caches.probe_store(addr, value) {
            Probe::Miss => {
                let req = self.alloc_req();
                let block = self.caches.l2_block(addr);
                self.send_block_req(
                    block,
                    Payload::GetX {
                        req,
                        requester: self.id,
                        block,
                    },
                    eff,
                );
                self.wait(req, Cont::Store { addr, value });
            }
            p @ (Probe::L1 { state, .. } | Probe::L2 { state, .. }) => {
                if state.can_write() {
                    let lat = self.hit_latency(&p);
                    self.finish_local(Outcome::Stored, _now + lat, stats, eff);
                } else {
                    let req = self.alloc_req();
                    let block = self.caches.l2_block(addr);
                    self.send_block_req(
                        block,
                        Payload::Upgrade {
                            req,
                            requester: self.id,
                            block,
                        },
                        eff,
                    );
                    self.wait(req, Cont::Store { addr, value });
                }
            }
        }
    }

    /// Install a filled block, sending a writeback if the fill evicted an
    /// owned line. Exclusive fills open a minimum-residence window so a
    /// pending conditional store can complete before probes take the
    /// line away.
    fn fill(
        &mut self,
        block: BlockAddr,
        state: LineState,
        data: amo_types::BlockData,
        accessed: Addr,
        now: Cycle,
        eff: &mut Vec<ProcEffect>,
    ) {
        if state.can_write() {
            // An LL's fill must stay resident long enough for the
            // following SC to complete; other fills only need their own
            // write to land.
            let extra = match self.kstate {
                KState::Waiting {
                    cont: Cont::Ll { .. } | Cont::Sc { .. },
                    ..
                } => self.cfg.llsc_pair_overhead,
                _ => 0,
            };
            self.set_hold_until(block, now + self.cfg.min_residence + extra);
        }
        if let Some(Evicted {
            block: vb,
            state: vs,
            data: vd,
        }) = self.caches.fill_block(block, state, data, accessed)
        {
            let vblock = BlockAddr(vb);
            self.reservation.lose(vblock);
            if vs.can_write() {
                self.send_home(
                    vblock.home(),
                    Payload::Writeback {
                        requester: self.id,
                        block: vblock,
                        data: vd,
                    },
                    eff,
                );
            }
            // A spin target should never be the eviction victim (it was
            // just probed, hence MRU) — but if it happens, reload.
            if let KState::Spinning { addr, .. } = self.kstate {
                assert!(
                    self.caches.l2_block(addr) != vblock,
                    "spin target evicted — workload exceeds cache capacity model"
                );
            }
        }
    }

    /// Handle a message delivered to this processor.
    pub fn handle(&mut self, payload: Payload, now: Cycle, stats: &mut Stats) -> Vec<ProcEffect> {
        let mut eff = Vec::new();
        self.handle_into(payload, now, stats, &mut eff);
        eff
    }

    /// Allocation-free form of [`Self::handle`]: appends effects to `eff`.
    pub fn handle_into(
        &mut self,
        payload: Payload,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        // Forward-progress guarantee: probes for a freshly-acquired block
        // wait out its minimum-residence window.
        if let Payload::Inv { block } | Payload::Intervention { block, .. } = &payload {
            if let Some(i) = self.hold_until.iter().position(|&(b, _)| b == block.0) {
                let until = self.hold_until[i].1;
                if until > now {
                    eff.push(ProcEffect::Defer {
                        payload,
                        when: until,
                    });
                    return;
                }
                self.hold_until.swap_remove(i);
            }
        }
        match payload {
            Payload::DataS { req, block, data } => {
                self.on_data_shared(req, block, data, now, stats, eff)
            }
            Payload::DataX { req, block, data } => {
                self.on_data_exclusive(req, block, data, now, stats, eff)
            }
            Payload::UpgradeAck { req, block } => self.on_upgrade_ack(req, block, now, stats, eff),
            Payload::Inv { block } => self.on_inv(block, now, stats, eff),
            Payload::Intervention { kind, block } => {
                self.on_intervention(kind, block, now, stats, eff)
            }
            Payload::AmoReply { req, old } => {
                self.on_simple_reply(req, Outcome::Value(old), now, stats, eff)
            }
            Payload::MaoReply { req, old } => {
                self.on_simple_reply(req, Outcome::Value(old), now, stats, eff)
            }
            Payload::UncachedReadReply { req, value } => {
                self.on_simple_reply(req, Outcome::Value(value), now, stats, eff)
            }
            Payload::UncachedWriteAck { req } => {
                self.on_simple_reply(req, Outcome::Stored, now, stats, eff)
            }
            Payload::ActMsgAck { req, result } => self.on_actmsg_ack(req, result, now, stats, eff),
            Payload::AmuNack { req, .. } => self.on_amu_nack(req, now, stats, eff),
            Payload::ActiveMsg {
                req,
                requester,
                handler,
                ..
            } => self.on_incoming_actmsg(req, requester, *handler, now, stats, eff),
            other => panic!("processor {} got unexpected payload {other:?}", self.id),
        }
    }

    fn waiting_req(&self) -> Option<ReqId> {
        match self.kstate {
            KState::Waiting { req, .. } => Some(req),
            _ => None,
        }
    }

    fn on_data_shared(
        &mut self,
        req: ReqId,
        block: BlockAddr,
        data: amo_types::BlockData,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        assert_eq!(self.waiting_req(), Some(req), "unmatched DataS");
        let KState::Waiting { cont, .. } = self.kstate else {
            unreachable!()
        };
        let lat = self.cfg.l2.hit_latency; // fill + read
        match cont {
            Cont::Load { addr } => {
                self.fill(block, LineState::Shared, data, addr, now, eff);
                let v = self.caches.read_word(addr).expect("just filled");
                self.finish_local(Outcome::Value(v), now + lat, stats, eff);
            }
            Cont::SpinFill { addr, pred } => {
                self.fill(block, LineState::Shared, data, addr, now, eff);
                let v = self.caches.read_word(addr).expect("just filled");
                if pred.eval(v) {
                    self.finish_local(Outcome::SpinDone(v), now + lat, stats, eff);
                } else {
                    self.kstate = KState::Spinning { addr, pred };
                }
            }
            other => panic!("DataS for non-read continuation {other:?}"),
        }
        self.txn_complete(block, now, stats, eff);
    }

    fn on_data_exclusive(
        &mut self,
        req: ReqId,
        block: BlockAddr,
        data: amo_types::BlockData,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        // Injected (handler-published) store?
        if let Some((addr, value)) = self.take_injected(req) {
            self.fill(block, LineState::Exclusive, data, addr, now, eff);
            assert!(self.caches.write_owned_word(addr, value));
            self.after_injected_write(addr, value, now, stats, eff);
            self.txn_complete(block, now, stats, eff);
            return;
        }
        assert_eq!(self.waiting_req(), Some(req), "unmatched DataX");
        let KState::Waiting { cont, .. } = self.kstate else {
            unreachable!()
        };
        let lat = self.cfg.l2.hit_latency;
        match cont {
            Cont::Ll { addr } => {
                self.fill(block, LineState::Exclusive, data, addr, now, eff);
                self.reservation.set(block);
                let v = self.caches.read_word(addr).expect("just filled");
                self.finish_local(Outcome::Value(v), now + lat, stats, eff);
            }
            Cont::Store { addr, value } => {
                self.fill(block, LineState::Exclusive, data, addr, now, eff);
                assert!(self.caches.write_owned_word(addr, value));
                self.finish_local(Outcome::Stored, now + lat, stats, eff);
            }
            Cont::Sc { addr, value } => {
                // Our Upgrade was converted to a GetX because we lost the
                // line — the reservation went with it.
                self.fill(block, LineState::Exclusive, data, addr, now, eff);
                let ok = self.reservation.consume(block);
                if ok {
                    assert!(self.caches.write_owned_word(addr, value));
                    stats.sc_successes += 1;
                } else {
                    stats.sc_failures += 1;
                }
                self.finish_local(
                    Outcome::ScResult(ok),
                    now + lat + self.cfg.llsc_pair_overhead,
                    stats,
                    eff,
                );
            }
            Cont::Rmw {
                kind,
                addr,
                operand,
            } => {
                self.fill(block, LineState::Exclusive, data, addr, now, eff);
                let old = self.caches.read_word(addr).expect("just filled");
                assert!(self.caches.write_owned_word(addr, kind.apply(old, operand)));
                stats.atomic_ops += 1;
                self.finish_local(Outcome::Value(old), now + lat, stats, eff);
            }
            other => panic!("DataX for non-write continuation {other:?}"),
        }
        self.txn_complete(block, now, stats, eff);
    }

    fn on_upgrade_ack(
        &mut self,
        req: ReqId,
        block: BlockAddr,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        let extra = match self.kstate {
            KState::Waiting {
                cont: Cont::Ll { .. } | Cont::Sc { .. },
                ..
            } => self.cfg.llsc_pair_overhead,
            _ => 0,
        };
        self.set_hold_until(block, now + self.cfg.min_residence + extra);
        if let Some((addr, value)) = self.take_injected(req) {
            assert!(self.caches.grant_exclusive(block));
            assert!(self.caches.write_owned_word(addr, value));
            self.after_injected_write(addr, value, now, stats, eff);
            self.txn_complete(block, now, stats, eff);
            return;
        }
        assert_eq!(self.waiting_req(), Some(req), "unmatched UpgradeAck");
        let KState::Waiting { cont, .. } = self.kstate else {
            unreachable!()
        };
        assert!(
            self.caches.grant_exclusive(block),
            "upgrade ack for absent line"
        );
        let lat = self.cfg.l1.hit_latency;
        match cont {
            Cont::Ll { addr } => {
                self.reservation.set(block);
                let v = self.caches.read_word(addr).expect("upgraded line present");
                self.finish_local(Outcome::Value(v), now + lat, stats, eff);
            }
            Cont::Store { addr, value } => {
                assert!(self.caches.write_owned_word(addr, value));
                self.finish_local(Outcome::Stored, now + lat, stats, eff);
            }
            Cont::Sc { addr, value } => {
                let ok = self.reservation.consume(block);
                if ok {
                    assert!(self.caches.write_owned_word(addr, value));
                    stats.sc_successes += 1;
                } else {
                    stats.sc_failures += 1;
                }
                self.finish_local(
                    Outcome::ScResult(ok),
                    now + lat + self.cfg.llsc_pair_overhead,
                    stats,
                    eff,
                );
            }
            Cont::Rmw {
                kind,
                addr,
                operand,
            } => {
                let old = self.caches.read_word(addr).expect("upgraded line present");
                assert!(self.caches.write_owned_word(addr, kind.apply(old, operand)));
                stats.atomic_ops += 1;
                self.finish_local(Outcome::Value(old), now + lat, stats, eff);
            }
            other => panic!("UpgradeAck for non-write continuation {other:?}"),
        }
        self.txn_complete(block, now, stats, eff);
    }

    fn after_injected_write(
        &mut self,
        addr: Addr,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        // If this processor is itself spinning on the word it just
        // published (the home processor participates in the barrier), the
        // local write must wake its own spin.
        if let KState::Spinning { addr: sa, pred } = self.kstate {
            if sa == addr && pred.eval(value) {
                self.finish_local(
                    Outcome::SpinDone(value),
                    now + self.cfg.l1.hit_latency,
                    stats,
                    eff,
                );
            }
        }
    }

    fn on_inv(
        &mut self,
        block: BlockAddr,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        self.caches.invalidate_block(block);
        self.reservation.lose(block);
        self.send_home(
            block.home(),
            Payload::InvAck {
                block,
                from: self.id,
            },
            eff,
        );
        self.respin_if_watching(block, now, stats, eff);
    }

    fn respin_if_watching(
        &mut self,
        block: BlockAddr,
        _now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        if let KState::Spinning { addr, pred } = self.kstate {
            if self.caches.l2_block(addr) == block {
                if self.outstanding.contains(&block.0) {
                    // An injected store to this block is in flight; its
                    // completion re-checks the spin (txn_complete).
                    return;
                }
                stats.spin_reloads += 1;
                let req = self.alloc_req();
                self.send_block_req(
                    block,
                    Payload::GetS {
                        req,
                        requester: self.id,
                        block,
                    },
                    eff,
                );
                self.wait(req, Cont::SpinFill { addr, pred });
            }
        }
    }

    fn on_intervention(
        &mut self,
        kind: InterventionKind,
        block: BlockAddr,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        let resp = match kind {
            InterventionKind::Shared => match self.caches.downgrade_block(block) {
                Some(Some(data)) => InterventionResp::Dirty(data),
                Some(None) => InterventionResp::Clean,
                None => InterventionResp::Gone,
            },
            InterventionKind::Exclusive => {
                self.reservation.lose(block);
                match self.caches.invalidate_block(block) {
                    Some((LineState::Modified, data)) => InterventionResp::Dirty(data),
                    Some(_) => InterventionResp::Clean,
                    None => InterventionResp::Gone,
                }
            }
        };
        self.send_home(
            block.home(),
            Payload::InterventionReply {
                block,
                from: self.id,
                resp,
            },
            eff,
        );
        if matches!(kind, InterventionKind::Exclusive) {
            self.respin_if_watching(block, now, stats, eff);
        }
    }

    fn on_simple_reply(
        &mut self,
        req: ReqId,
        outcome: Outcome,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        if self.waiting_req() != Some(req) {
            // Under delivery faults, a duplicated reply (or the reply to
            // a request an e2e retransmission already completed) is
            // expected traffic: swallow it. In clean mode an unmatched
            // reply is a protocol bug and must stay loud.
            if self.delivery_hardened {
                stats.dup_suppressed += 1;
                return;
            }
            panic!("unmatched reply {req:?} at {}", self.id);
        }
        self.finish_local(outcome, now + 1, stats, eff);
    }

    fn on_actmsg_ack(
        &mut self,
        req: ReqId,
        result: Word,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        // Late or duplicate acks (after a retransmission raced the
        // original) are dropped.
        if self.waiting_req() == Some(req) {
            if let KState::Waiting {
                cont: Cont::ActMsg { .. },
                ..
            } = self.kstate
            {
                self.finish_local(Outcome::Acked(result), now + 1, stats, eff);
            }
        }
    }

    /// The home AMU refused this request (full dispatch queue or
    /// brown-out). Back off and rearm the retry timer; the resend happens
    /// when it fires (see [`Self::timeout`]). A NACK for anything other
    /// than the outstanding request is stale and dropped.
    fn on_amu_nack(
        &mut self,
        req: ReqId,
        now: Cycle,
        _stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        if self.waiting_req() != Some(req) {
            return;
        }
        let KState::Waiting { cont, .. } = self.kstate else {
            unreachable!()
        };
        let attempt = match cont {
            Cont::Amo { attempt, .. }
            | Cont::Mao { attempt, .. }
            | Cont::UncachedLoad { attempt, .. }
            | Cont::UncachedStore { attempt, .. } => attempt + 1,
            _ => return, // stale NACK for a continuation that cannot retry
        };
        if attempt > self.cfg.amu.max_retries {
            eff.push(ProcEffect::Fault {
                kind: ProcFault::AmuStarved { attempts: attempt },
                when: now,
            });
            return;
        }
        let cont = match cont {
            Cont::Amo {
                kind,
                addr,
                operand,
                test,
                ..
            } => Cont::Amo {
                kind,
                addr,
                operand,
                test,
                attempt,
            },
            Cont::Mao {
                kind,
                addr,
                operand,
                ..
            } => Cont::Mao {
                kind,
                addr,
                operand,
                attempt,
            },
            Cont::UncachedLoad { addr, .. } => Cont::UncachedLoad { addr, attempt },
            Cont::UncachedStore { addr, value, .. } => Cont::UncachedStore {
                addr,
                value,
                attempt,
            },
            _ => unreachable!(),
        };
        self.wait(req, cont);
        eff.push(ProcEffect::TimeoutAt {
            req,
            when: now + self.retry_delay_for(req, attempt, self.cfg.amu.nack_backoff),
            kind: TimerKind::Retry,
        });
    }

    /// A retransmission timer fired.
    pub fn timeout(
        &mut self,
        req: ReqId,
        kind: TimerKind,
        now: Cycle,
        stats: &mut Stats,
    ) -> Vec<ProcEffect> {
        let mut eff = Vec::new();
        self.timeout_into(req, kind, now, stats, &mut eff);
        eff
    }

    /// Allocation-free form of [`Self::timeout`]: appends effects to `eff`.
    pub fn timeout_into(
        &mut self,
        req: ReqId,
        kind: TimerKind,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        if self.waiting_req() != Some(req) {
            return; // already completed
        }
        let KState::Waiting { cont, .. } = self.kstate else {
            return;
        };
        if let TimerKind::E2e { attempt } = kind {
            self.e2e_expired(req, cont, attempt, now, stats, eff);
            return;
        }
        match cont {
            Cont::ActMsg {
                home,
                handler,
                attempt,
            } => {
                let attempt = attempt + 1;
                if attempt > self.cfg.actmsg.max_retries {
                    eff.push(ProcEffect::Fault {
                        kind: ProcFault::ActMsgStarved { attempts: attempt },
                        when: now,
                    });
                    return;
                }
                stats.actmsg_retransmissions += 1;
                let target_proc = home
                    .procs(self.cfg.procs_per_node)
                    .next()
                    .expect("node has processors");
                self.send_home(
                    home,
                    Payload::ActiveMsg {
                        req,
                        requester: self.id,
                        target_proc,
                        handler: Box::new(handler),
                        attempt,
                    },
                    eff,
                );
                eff.push(ProcEffect::TimeoutAt {
                    req,
                    when: now + self.retry_delay_for(req, attempt, self.cfg.actmsg.timeout),
                    kind: TimerKind::Retry,
                });
                self.wait(
                    req,
                    Cont::ActMsg {
                        home,
                        handler,
                        attempt,
                    },
                );
            }
            // AMU-NACK backoff expired: resend the original request with
            // the same tag (the AMU replies once; late duplicates are
            // impossible because a NACKed request was never queued).
            Cont::Amo {
                kind,
                addr,
                operand,
                test,
                ..
            } => {
                stats.amu_nack_retries += 1;
                self.send_home(
                    addr.home(),
                    Payload::AmoReq {
                        req,
                        requester: self.id,
                        kind,
                        addr,
                        operand,
                        test,
                    },
                    eff,
                );
            }
            Cont::Mao {
                kind,
                addr,
                operand,
                ..
            } => {
                stats.amu_nack_retries += 1;
                self.send_home(
                    addr.home(),
                    Payload::MaoReq {
                        req,
                        requester: self.id,
                        kind,
                        addr,
                        operand,
                    },
                    eff,
                );
            }
            Cont::UncachedLoad { addr, .. } => {
                stats.amu_nack_retries += 1;
                self.send_home(
                    addr.home(),
                    Payload::UncachedRead {
                        req,
                        requester: self.id,
                        addr,
                    },
                    eff,
                );
            }
            Cont::UncachedStore { addr, value, .. } => {
                stats.amu_nack_retries += 1;
                self.send_home(
                    addr.home(),
                    Payload::UncachedWrite {
                        req,
                        requester: self.id,
                        addr,
                        value,
                    },
                    eff,
                );
            }
            _ => {}
        }
    }

    /// An end-to-end delivery timer expired with its request still
    /// outstanding: some copy of the request or its reply vanished (or
    /// is crawling through a reorder window). Retransmit under the same
    /// tag — the AMU's dedup window makes the resend idempotent — with
    /// the actmsg exponential-backoff-plus-jitter schedule, and
    /// escalate to a typed `RequestTimedOut` past the budget.
    fn e2e_expired(
        &mut self,
        req: ReqId,
        cont: Cont,
        attempt: u32,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        let payload = match cont {
            Cont::Amo {
                kind,
                addr,
                operand,
                test,
                ..
            } => Payload::AmoReq {
                req,
                requester: self.id,
                kind,
                addr,
                operand,
                test,
            },
            Cont::Mao {
                kind,
                addr,
                operand,
                ..
            } => Payload::MaoReq {
                req,
                requester: self.id,
                kind,
                addr,
                operand,
            },
            Cont::UncachedLoad { addr, .. } => Payload::UncachedRead {
                req,
                requester: self.id,
                addr,
            },
            Cont::UncachedStore { addr, value, .. } => Payload::UncachedWrite {
                req,
                requester: self.id,
                addr,
                value,
            },
            // Active messages run their own retransmission machinery;
            // coherence continuations ride the reliable channel and
            // never arm this timer.
            _ => return,
        };
        stats.e2e_timeouts += 1;
        if attempt > self.cfg.faults.max_e2e_retries {
            eff.push(ProcEffect::Fault {
                kind: ProcFault::RequestTimedOut {
                    req,
                    attempts: attempt - 1,
                },
                when: now,
            });
            return;
        }
        stats.e2e_retransmissions += 1;
        let home = match &payload {
            Payload::AmoReq { addr, .. }
            | Payload::MaoReq { addr, .. }
            | Payload::UncachedRead { addr, .. }
            | Payload::UncachedWrite { addr, .. } => addr.home(),
            _ => unreachable!(),
        };
        self.send_home(home, payload, eff);
        eff.push(ProcEffect::TimeoutAt {
            req,
            when: now + self.retry_delay_for(req, attempt, self.cfg.faults.e2e_timeout),
            kind: TimerKind::E2e {
                attempt: attempt + 1,
            },
        });
    }

    /// Retransmission delay for the given attempt: exponential backoff
    /// (doubling, capped at 16× the base timeout) plus deterministic
    /// jitter. Without the backoff a saturated handler processor faces a
    /// constant retransmission storm that starves everyone; without the
    /// jitter, lock-step retry bursts repeat the same collision pattern
    /// forever in a deterministic simulation.
    fn retry_delay(req: ReqId, attempt: u32, timeout: Cycle) -> Cycle {
        let backoff = timeout << attempt.min(4);
        let mut x = req.0 ^ ((attempt as u64) << 24) ^ 0x9e37_79b9_7f4a_7c15;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        backoff + x % (backoff / 2).max(1)
    }

    /// [`Self::retry_delay`] with the jitter resolved through the
    /// attached choice tape, when one is present: the pick spreads over
    /// the same `[0, backoff/2)` band the keyed hash draws from, but the
    /// schedule explorer decides which alternative is taken.
    fn retry_delay_for(&self, req: ReqId, attempt: u32, timeout: Cycle) -> Cycle {
        let Some(tape) = &self.tape else {
            return Self::retry_delay(req, attempt, timeout);
        };
        let backoff = timeout << attempt.min(4);
        let mut t = tape.borrow_mut();
        let arity = t.cfg.jitter_choices.max(1);
        let pick = t.choose(ChoiceKind::RetryJitter, arity) as Cycle;
        backoff + pick * ((backoff / 2) / arity as Cycle).max(1)
    }

    /// The end-to-end retransmission schedule a request walks before a
    /// `RequestTimedOut` escalation under the hashed (untaped) jitter:
    /// the backoff delay of the initial arm (attempt 0) and of every
    /// retransmission `1..=attempts`. Diagnostics only — the machine
    /// attaches this to the timeout's error bundle so counterexamples
    /// are self-describing.
    pub fn e2e_retx_schedule(req: ReqId, attempts: u32, timeout: Cycle) -> Vec<Cycle> {
        (0..=attempts)
            .map(|a| Self::retry_delay(req, a, timeout))
            .collect()
    }

    fn on_incoming_actmsg(
        &mut self,
        req: ReqId,
        requester: ProcId,
        handler: HandlerKind,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        // At-most-once: if we already served this request, re-ack with the
        // stored result (the original ack or the handler's effect raced
        // with the sender's timeout). Request tags are monotonic per
        // sender, so anything *older* than the last served request is a
        // stale duplicate still crawling through the network — it must be
        // dropped, or it would re-run its handler (e.g. taking a phantom
        // lock ticket nobody will ever release).
        if let Some((served_req, result)) = self.served_get(requester) {
            if served_req == req {
                self.send_home(
                    requester.node(self.cfg.procs_per_node),
                    Payload::ActMsgAck { req, result },
                    eff,
                );
                return;
            }
            const SEQ_MASK: u64 = (1 << 48) - 1;
            if (served_req.0 & SEQ_MASK) > (req.0 & SEQ_MASK) {
                return;
            }
        }
        // Duplicate of a queued-but-unserved message: drop, the queued
        // copy will answer.
        if self.handler_queue.iter().any(|m| m.req == req)
            || self.running_handler.is_some_and(|m| m.req == req)
        {
            return;
        }
        if self.handler_queue.len() >= self.cfg.actmsg.queue_cap {
            stats.actmsg_drops += 1;
            return;
        }
        self.handler_queue.push_back(IncomingMsg {
            req,
            requester,
            handler,
        });
        if self.running_handler.is_none() {
            self.start_next_handler(now, stats, eff);
        }
    }

    /// Handlers served back-to-back before the scheduler inserts a yield
    /// gap for the host process.
    const YIELD_EVERY: u32 = 8;
    /// Length of a yield gap, in cycles.
    const YIELD_GAP: Cycle = 200;

    fn start_next_handler(&mut self, now: Cycle, stats: &mut Stats, eff: &mut Vec<ProcEffect>) {
        let Some(msg) = self.handler_queue.pop_front() else {
            return;
        };
        let mut start = now.max(self.busy_until);
        self.handlers_since_yield += 1;
        if self.handlers_since_yield >= Self::YIELD_EVERY {
            self.handlers_since_yield = 0;
            start += Self::YIELD_GAP;
        }
        let done = start + self.cfg.actmsg.invoke_cycles + self.cfg.actmsg.handler_cycles;
        stats.handler_busy_cycles += done - start;
        self.busy_from = start;
        self.busy_until = done;
        self.running_handler = Some(msg);
        eff.push(ProcEffect::HandlerWake { when: done });
    }

    /// A handler finished executing: apply its semantics, ack, publish.
    pub fn handler_done(&mut self, now: Cycle, stats: &mut Stats) -> Vec<ProcEffect> {
        let mut eff = Vec::new();
        self.handler_done_into(now, stats, &mut eff);
        eff
    }

    /// Allocation-free form of [`Self::handler_done`]: appends to `eff`.
    pub fn handler_done_into(&mut self, now: Cycle, stats: &mut Stats, eff: &mut Vec<ProcEffect>) {
        let msg = self
            .running_handler
            .take()
            .expect("handler_done without handler");
        stats.handlers_run += 1;
        let ppn = self.cfg.procs_per_node;
        match msg.handler {
            HandlerKind::FetchAdd {
                ctr,
                operand,
                publish,
            } => {
                let idx = ctr as usize;
                if self.service_counters.len() <= idx {
                    self.service_counters.resize(idx + 1, 0);
                }
                let old = self.service_counters[idx];
                let new = old.wrapping_add(operand);
                self.service_counters[idx] = new;
                // Ack with the pre-add value (fetch-and-add semantics).
                self.served_set(msg.requester, msg.req, old);
                self.send_home(
                    msg.requester.node(ppn),
                    Payload::ActMsgAck {
                        req: msg.req,
                        result: old,
                    },
                    eff,
                );
                if let Some(p) = publish {
                    let fire = p.when_count.is_none_or(|c| c == new);
                    if fire {
                        if p.reset {
                            self.service_counters[idx] = 0;
                        }
                        let value = p.value.unwrap_or(new);
                        self.start_injected_store(p.addr, value, now, stats, eff);
                    }
                }
            }
            HandlerKind::LockAcquire { lock } => {
                // A retransmitted acquire whose original is still queued,
                // or one that was granted while this duplicate sat in the
                // handler queue, must not take a second ticket (the
                // invocation cost was still paid — that is the
                // interference the paper describes).
                const SEQ_MASK: u64 = (1 << 48) - 1;
                let already_served = self
                    .served_get(msg.requester)
                    .is_some_and(|(r, _)| (r.0 & SEQ_MASK) >= (msg.req.0 & SEQ_MASK));
                let st = self.lock_srv_mut(lock);
                let duplicate = already_served || st.waiting.values().any(|&(_, r)| r == msg.req);
                if !duplicate {
                    let t = st.next_ticket;
                    st.next_ticket += 1;
                    if t == st.now_serving {
                        // Uncontended: grant immediately.
                        self.served_set(msg.requester, msg.req, t);
                        self.send_home(
                            msg.requester.node(ppn),
                            Payload::ActMsgAck {
                                req: msg.req,
                                result: t,
                            },
                            eff,
                        );
                    } else {
                        // Defer the ack: it will be sent as the grant.
                        st.waiting.insert(t, (msg.requester, msg.req));
                    }
                }
            }
            HandlerKind::LockRelease { lock } => {
                let st = self.lock_srv_mut(lock);
                st.now_serving += 1;
                let serving = st.now_serving;
                let granted = st.waiting.remove(&serving);
                self.served_set(msg.requester, msg.req, serving);
                self.send_home(
                    msg.requester.node(ppn),
                    Payload::ActMsgAck {
                        req: msg.req,
                        result: serving,
                    },
                    eff,
                );
                if let Some((w, wreq)) = granted {
                    self.served_set(w, wreq, serving);
                    self.send_home(
                        w.node(ppn),
                        Payload::ActMsgAck {
                            req: wreq,
                            result: serving,
                        },
                        eff,
                    );
                }
            }
        }
        self.start_next_handler(now, stats, eff);
    }

    fn start_injected_store(
        &mut self,
        addr: Addr,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        // MSHR merge: wait for any in-flight transaction on this block.
        if self.outstanding.contains(&self.caches.l2_block(addr).0) {
            self.deferred_injected.push((addr, value));
            return;
        }
        match self.caches.probe_store(addr, value) {
            Probe::Miss => {
                let req = self.alloc_req_raw();
                let block = self.caches.l2_block(addr);
                self.injected.push((req, addr, value));
                self.send_block_req(
                    block,
                    Payload::GetX {
                        req,
                        requester: self.id,
                        block,
                    },
                    eff,
                );
            }
            Probe::L1 { state, .. } | Probe::L2 { state, .. } => {
                if state.can_write() {
                    // probe_store already performed the write.
                    self.after_injected_write(addr, value, now, stats, eff);
                } else {
                    let req = self.alloc_req_raw();
                    let block = self.caches.l2_block(addr);
                    self.injected.push((req, addr, value));
                    self.send_block_req(
                        block,
                        Payload::Upgrade {
                            req,
                            requester: self.id,
                            block,
                        },
                        eff,
                    );
                }
            }
        }
    }

    /// A fine-grained word update arrived at this node and the machine
    /// applied it to our caches; re-check a matching spin.
    pub fn word_update(
        &mut self,
        addr: Addr,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
    ) -> Vec<ProcEffect> {
        let mut eff = Vec::new();
        self.word_update_into(addr, value, now, stats, &mut eff);
        eff
    }

    /// Allocation-free form of [`Self::word_update`]: appends to `eff`.
    pub fn word_update_into(
        &mut self,
        addr: Addr,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
        eff: &mut Vec<ProcEffect>,
    ) {
        self.caches.apply_word_update(addr, value);
        if let KState::Spinning { addr: sa, pred } = self.kstate {
            if sa == addr && pred.eval(value) {
                self.finish_local(
                    Outcome::SpinDone(value),
                    now + self.cfg.l1.hit_latency,
                    stats,
                    eff,
                );
            }
        }
    }

    /// Home-mediated lock state snapshot: (next_ticket, now_serving,
    /// waiting tickets) — diagnostics/tests.
    pub fn lock_srv_state(&self, lock: u16) -> Option<(Word, Word, Vec<Word>)> {
        self.lock_srv
            .iter()
            .find(|(l, _)| *l == lock)
            .map(|(_, s)| {
                (
                    s.next_ticket,
                    s.now_serving,
                    s.waiting.keys().copied().collect(),
                )
            })
    }

    /// Debug rendering of the kernel state (diagnostics).
    pub fn kstate_debug(&self) -> String {
        format!(
            "{:?} busy={}..{}",
            self.kstate, self.busy_from, self.busy_until
        )
    }

    /// Whether the kernel is currently sleeping on a spin (tests).
    pub fn is_spinning(&self) -> bool {
        matches!(self.kstate, KState::Spinning { .. })
    }

    /// Whether the kernel has finished (tests).
    pub fn is_finished(&self) -> bool {
        matches!(self.kstate, KState::Finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::SystemConfig;

    fn proc0() -> Processor {
        Processor::new(ProcId(0), SystemConfig::with_procs(4))
    }

    fn addr_on(node: u16, off: u64) -> Addr {
        Addr::on_node(NodeId(node), off)
    }

    fn data16(vals: &[(usize, Word)]) -> amo_types::BlockData {
        let mut d = amo_types::BlockData::zeroed(16);
        for &(i, v) in vals {
            d.set_word(i, v);
        }
        d
    }

    #[test]
    fn load_miss_sends_gets_and_completes_on_data() {
        let mut p = proc0();
        let mut s = Stats::new();
        let a = addr_on(1, 0x100);
        let outcomes: std::rc::Rc<std::cell::RefCell<Vec<Outcome>>> = Default::default();
        let oc = outcomes.clone();
        let mut first = true;
        p.load_kernel(Box::new(move |last: Option<Outcome>| {
            if let Some(o) = last {
                oc.borrow_mut().push(o);
            }
            if first {
                first = false;
                Op::Load { addr: a }
            } else {
                Op::Done
            }
        }));
        let eff = p.step(0, &mut s);
        let req = match &eff[..] {
            [ProcEffect::Send {
                dst,
                payload: Payload::GetS { req, .. },
            }] => {
                assert_eq!(*dst, NodeId(1));
                *req
            }
            other => panic!("unexpected {other:?}"),
        };
        let block = a.block(128);
        let eff = p.handle(
            Payload::DataS {
                req,
                block,
                data: data16(&[(0, 42)]),
            },
            500,
            &mut s,
        );
        // word 0x100/128: 0x100 & 127 = 0 → word 0 = 42.
        assert!(matches!(eff[..], [ProcEffect::Wake { when: 510 }]));
        let eff = p.step(510, &mut s);
        assert!(matches!(eff[..], [ProcEffect::Finished { when: 510 }]));
        assert_eq!(outcomes.borrow()[0], Outcome::Value(42));
    }

    #[test]
    fn llsc_success_on_owned_line() {
        let mut p = proc0();
        let mut s = Stats::new();
        let a = addr_on(1, 0x80);
        let mut step_n = 0;
        p.load_kernel(Box::new(move |_l: Option<Outcome>| {
            step_n += 1;
            match step_n {
                1 => Op::LoadLinked { addr: a },
                2 => Op::StoreConditional { addr: a, value: 7 },
                _ => Op::Done,
            }
        }));
        // LL misses → GetX (load-linked fetches with write intent).
        let eff = p.step(0, &mut s);
        let req = eff
            .iter()
            .find_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::GetX { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .expect("GetX sent");
        p.handle(
            Payload::DataX {
                req,
                block: a.block(128),
                data: data16(&[]),
            },
            100,
            &mut s,
        );
        // SC on the Exclusive line succeeds locally, no traffic.
        let eff = p.step(110, &mut s);
        assert!(
            !eff.iter().any(|e| matches!(e, ProcEffect::Send { .. })),
            "local SC must not send: {eff:?}"
        );
        assert_eq!(s.sc_successes, 1);
        assert_eq!(p.caches().state_of(a), Some(LineState::Modified));
        // SC completes after the l1 hit plus the pair overhead.
        let done = 110 + p.cfg.l1.hit_latency + p.cfg.llsc_pair_overhead;
        let eff = p.step(done, &mut s);
        assert!(matches!(eff[..], [ProcEffect::Finished { .. }]));
    }

    #[test]
    fn invalidation_between_ll_and_sc_fails_the_sc() {
        let mut p = proc0();
        let mut s = Stats::new();
        let a = addr_on(1, 0x80);
        let mut step_n = 0;
        let results: std::rc::Rc<std::cell::RefCell<Vec<Outcome>>> = Default::default();
        let rc = results.clone();
        p.load_kernel(Box::new(move |l: Option<Outcome>| {
            if let Some(o) = l {
                rc.borrow_mut().push(o);
            }
            step_n += 1;
            match step_n {
                1 => Op::LoadLinked { addr: a },
                2 => Op::Delay { cycles: 100 }, // exceed the residence window
                3 => Op::StoreConditional { addr: a, value: 7 },
                _ => Op::Done,
            }
        }));
        let eff = p.step(0, &mut s);
        let req = eff
            .iter()
            .find_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::GetX { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .expect("GetX");
        p.handle(
            Payload::DataX {
                req,
                block: a.block(128),
                data: data16(&[]),
            },
            100,
            &mut s,
        );
        // A probe inside the minimum-residence window is deferred...
        let eff = p.handle(
            Payload::Intervention {
                kind: InterventionKind::Exclusive,
                block: a.block(128),
            },
            105,
            &mut s,
        );
        let (payload, when) = match &eff[..] {
            [ProcEffect::Defer { payload, when }] => (payload.clone(), *when),
            other => panic!("expected deferral, got {other:?}"),
        };
        assert_eq!(when, 100 + p.cfg.min_residence + p.cfg.llsc_pair_overhead);
        // ...and steals the line (clearing the reservation) once
        // re-delivered after the window.
        let eff = p.handle(payload, when, &mut s);
        assert!(eff.iter().any(|e| matches!(
            e,
            ProcEffect::Send {
                payload: Payload::InterventionReply { .. },
                ..
            }
        )));
        // The SC (issued after the 100-cycle delay) now fails locally.
        p.step(110, &mut s); // completes the LL local op, starts Delay
        let _ = p.step(210, &mut s); // SC issues and fails
        assert_eq!(s.sc_failures, 1);
        let _ = p.step(212, &mut s);
        assert_eq!(*results.borrow().last().unwrap(), Outcome::ScResult(false));
    }

    #[test]
    fn spin_sleeps_then_wakes_on_word_update() {
        let mut p = proc0();
        let mut s = Stats::new();
        let a = addr_on(1, 0x80);
        let mut step_n = 0;
        p.load_kernel(Box::new(move |_l: Option<Outcome>| {
            step_n += 1;
            match step_n {
                1 => Op::SpinUntil {
                    addr: a,
                    pred: SpinPred::Eq(4),
                },
                _ => Op::Done,
            }
        }));
        let eff = p.step(0, &mut s);
        let req = eff
            .iter()
            .find_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::GetS { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .expect("GetS");
        // Fill with 0: predicate unsatisfied → sleep, no effects.
        let eff = p.handle(
            Payload::DataS {
                req,
                block: a.block(128),
                data: data16(&[]),
            },
            100,
            &mut s,
        );
        assert!(eff.is_empty());
        assert!(p.is_spinning());
        // Update to 3: still asleep.
        assert!(p.word_update(a, 3, 200, &mut s).is_empty());
        // Update to 4: wake.
        let eff = p.word_update(a, 4, 300, &mut s);
        assert!(matches!(eff[..], [ProcEffect::Wake { when: 302 }]));
        let eff = p.step(302, &mut s);
        assert!(matches!(eff[..], [ProcEffect::Finished { .. }]));
    }

    #[test]
    fn spin_wakes_on_invalidation_with_reload() {
        let mut p = proc0();
        let mut s = Stats::new();
        let a = addr_on(1, 0x80);
        let mut step_n = 0;
        p.load_kernel(Box::new(move |_l: Option<Outcome>| {
            step_n += 1;
            match step_n {
                1 => Op::SpinUntil {
                    addr: a,
                    pred: SpinPred::Ge(1),
                },
                _ => Op::Done,
            }
        }));
        let eff = p.step(0, &mut s);
        let req0 = eff
            .iter()
            .find_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::GetS { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .unwrap();
        p.handle(
            Payload::DataS {
                req: req0,
                block: a.block(128),
                data: data16(&[]),
            },
            100,
            &mut s,
        );
        assert!(p.is_spinning());
        // Writer invalidates: we ack and immediately reload.
        let eff = p.handle(
            Payload::Inv {
                block: a.block(128),
            },
            200,
            &mut s,
        );
        let req1 = eff
            .iter()
            .find_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::GetS { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .expect("spin reload GetS");
        assert_ne!(req0, req1);
        assert_eq!(s.spin_reloads, 1);
        // Reload returns the written value: spin completes.
        let eff = p.handle(
            Payload::DataS {
                req: req1,
                block: a.block(128),
                data: data16(&[(0, 1)]),
            },
            400,
            &mut s,
        );
        assert!(matches!(eff[..], [ProcEffect::Wake { .. }]));
    }

    #[test]
    fn handler_executes_with_occupancy_and_acks() {
        let mut p = proc0(); // P0 on node 0 is the handler target
        let mut s = Stats::new();
        let h = HandlerKind::FetchAdd {
            ctr: 0,
            operand: 1,
            publish: None,
        };
        let eff = p.handle(
            Payload::ActiveMsg {
                req: ReqId(99),
                requester: ProcId(3),
                target_proc: ProcId(0),
                handler: Box::new(h),
                attempt: 0,
            },
            1000,
            &mut s,
        );
        // invoke 350 + handler 50 = done at 1400.
        assert!(matches!(eff[..], [ProcEffect::HandlerWake { when: 1400 }]));
        let eff = p.handler_done(1400, &mut s);
        match &eff[..] {
            [ProcEffect::Send {
                dst,
                payload: Payload::ActMsgAck { req, result },
            }] => {
                assert_eq!(*dst, NodeId(1)); // P3 lives on node 1
                assert_eq!(*req, ReqId(99));
                assert_eq!(*result, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.handlers_run, 1);
        // Duplicate (retransmitted) request is re-acked without re-running.
        let eff = p.handle(
            Payload::ActiveMsg {
                req: ReqId(99),
                requester: ProcId(3),
                target_proc: ProcId(0),
                handler: Box::new(h),
                attempt: 1,
            },
            2000,
            &mut s,
        );
        assert!(matches!(
            eff[..],
            [ProcEffect::Send {
                payload: Payload::ActMsgAck { result: 0, .. },
                ..
            }]
        ));
        assert_eq!(s.handlers_run, 1, "handler must not re-run");
    }

    #[test]
    fn handler_queue_overflow_drops() {
        let mut cfg = SystemConfig::with_procs(4);
        cfg.actmsg.queue_cap = 1;
        let mut p = Processor::new(ProcId(0), cfg);
        let mut s = Stats::new();
        let h = HandlerKind::FetchAdd {
            ctr: 0,
            operand: 1,
            publish: None,
        };
        for i in 0..3u64 {
            p.handle(
                Payload::ActiveMsg {
                    req: ReqId(i),
                    requester: ProcId(i as u16 + 1),
                    target_proc: ProcId(0),
                    handler: Box::new(h),
                    attempt: 0,
                },
                100,
                &mut s,
            );
        }
        // First started immediately, second queued, third dropped.
        assert_eq!(s.actmsg_drops, 1);
    }

    #[test]
    fn publish_fires_only_at_count() {
        let mut p = proc0();
        let mut s = Stats::new();
        let spin = addr_on(0, 0x200);
        let h = HandlerKind::FetchAdd {
            ctr: 0,
            operand: 1,
            publish: Some(amo_types::Publish {
                addr: spin,
                when_count: Some(2),
                value: Some(77),
                reset: true,
            }),
        };
        // First message: count 1, no publish.
        p.handle(
            Payload::ActiveMsg {
                req: ReqId(1),
                requester: ProcId(2),
                target_proc: ProcId(0),
                handler: Box::new(h),
                attempt: 0,
            },
            0,
            &mut s,
        );
        let eff = p.handler_done(660, &mut s);
        assert!(
            !eff.iter().any(|e| matches!(
                e,
                ProcEffect::Send {
                    payload: Payload::GetX { .. },
                    ..
                }
            )),
            "no publish at count 1"
        );
        // Second: count 2 → publish store (miss → GetX).
        p.handle(
            Payload::ActiveMsg {
                req: ReqId(2),
                requester: ProcId(3),
                target_proc: ProcId(0),
                handler: Box::new(h),
                attempt: 0,
            },
            700,
            &mut s,
        );
        let eff = p.handler_done(1360, &mut s);
        let req = eff
            .iter()
            .find_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::GetX { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .expect("publish store issued");
        // Complete the injected store.
        let eff = p.handle(
            Payload::DataX {
                req,
                block: spin.block(128),
                data: data16(&[]),
            },
            1500,
            &mut s,
        );
        assert!(eff.is_empty());
        assert_eq!(p.caches().state_of(spin), Some(LineState::Modified));
    }

    #[test]
    fn actmsg_timeout_retransmits_same_req() {
        let mut p = proc0();
        let mut s = Stats::new();
        p.load_kernel(Box::new(move |_l: Option<Outcome>| Op::ActiveMsg {
            home: NodeId(1),
            handler: HandlerKind::FetchAdd {
                ctr: 0,
                operand: 1,
                publish: None,
            },
        }));
        let eff = p.step(0, &mut s);
        let (req, when) = match &eff[..] {
            [ProcEffect::Send {
                payload: Payload::ActiveMsg { req, .. },
                ..
            }, ProcEffect::TimeoutAt { req: r2, when, .. }] => {
                assert_eq!(req, r2);
                (*req, *when)
            }
            other => panic!("unexpected {other:?}"),
        };
        let eff = p.timeout(req, TimerKind::Retry, when, &mut s);
        assert!(eff.iter().any(|e| matches!(
            e,
            ProcEffect::Send {
                payload: Payload::ActiveMsg { attempt: 1, .. },
                ..
            }
        )));
        assert_eq!(s.actmsg_retransmissions, 1);
        // Ack resolves it; later timers are ignored.
        p.handle(Payload::ActMsgAck { req, result: 5 }, 9000, &mut s);
        assert!(p.timeout(req, TimerKind::Retry, 12000, &mut s).is_empty());
    }

    #[test]
    fn retry_backoff_schedule_is_pinned() {
        // Figure 5 baseline re-validation: the retransmission backoff
        // doubles per attempt up to 16x the base timeout, plus a
        // deterministic per-request jitter below half the backoff. The
        // exact schedule is pinned so a change to the backoff policy
        // (which shifts every baseline's retransmission counts) cannot
        // land silently.
        let req = ReqId((3 << 48) | 1);
        let delays: Vec<Cycle> = (0..7)
            .map(|a| Processor::retry_delay(req, a, 1_000))
            .collect();
        assert_eq!(
            delays,
            vec![1_428, 2_419, 5_530, 11_413, 21_965, 16_964, 18_079]
        );
        for (a, &d) in delays.iter().enumerate() {
            let backoff = 1_000u64 << (a as u32).min(4);
            assert!(
                d >= backoff && d < backoff + backoff / 2,
                "attempt {a}: {d}"
            );
        }
        // Jitter decorrelates distinct requests at the same attempt.
        assert_ne!(
            Processor::retry_delay(ReqId((3 << 48) | 2), 1, 1_000),
            Processor::retry_delay(req, 1, 1_000),
        );
    }

    #[test]
    fn lock_handlers_grant_in_fifo_order() {
        let mut p = proc0();
        let mut s = Stats::new();
        let acquire = HandlerKind::LockAcquire { lock: 0 };
        let release = HandlerKind::LockRelease { lock: 0 };
        let msg = |req: u64, from: u16, h| Payload::ActiveMsg {
            req: ReqId(((from as u64) << 48) | req),
            requester: ProcId(from),
            target_proc: ProcId(0),
            handler: Box::new(h),
            attempt: 0,
        };
        // P1 acquires: immediate grant (ticket 0 == serving 0).
        p.handle(msg(1, 1, acquire), 0, &mut s);
        let eff = p.handler_done(400, &mut s);
        assert!(
            eff.iter().any(|e| matches!(
                e,
                ProcEffect::Send {
                    payload: Payload::ActMsgAck { result: 0, .. },
                    ..
                }
            )),
            "first acquire granted immediately: {eff:?}"
        );
        // P2 and P3 queue up: no acks yet.
        p.handle(msg(1, 2, acquire), 500, &mut s);
        let eff = p.handler_done(900, &mut s);
        assert!(
            !eff.iter().any(|e| matches!(e, ProcEffect::Send { .. })),
            "{eff:?}"
        );
        p.handle(msg(1, 3, acquire), 1000, &mut s);
        let eff = p.handler_done(1400, &mut s);
        assert!(!eff.iter().any(|e| matches!(e, ProcEffect::Send { .. })));
        // P1 releases: the releaser is acked and P2 (ticket 1) granted.
        p.handle(msg(2, 1, release), 1500, &mut s);
        let eff = p.handler_done(1900, &mut s);
        let acks: Vec<u16> = eff
            .iter()
            .filter_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::ActMsgAck { req, .. },
                    ..
                } => Some((req.0 >> 48) as u16),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![1, 2], "releaser ack + FIFO grant to P2");
        assert_eq!(p.lock_srv_state(0), Some((3, 1, vec![2])));
    }

    /// Regression: a stale (older-sequence) duplicate of an acquire that
    /// was already served must not take a phantom ticket — that bug
    /// starved whole lock queues.
    #[test]
    fn stale_duplicate_acquire_takes_no_phantom_ticket() {
        let mut p = proc0();
        let mut s = Stats::new();
        let acquire = HandlerKind::LockAcquire { lock: 0 };
        let req_a = ReqId((1u64 << 48) | 5);
        let req_b = ReqId((1u64 << 48) | 6);
        // P1 acquires (granted), then sends a newer message (its
        // release, modeled here as another handler), updating the dedup
        // slot...
        p.handle(
            Payload::ActiveMsg {
                req: req_a,
                requester: ProcId(1),
                target_proc: ProcId(0),
                handler: Box::new(acquire),
                attempt: 0,
            },
            0,
            &mut s,
        );
        p.handler_done(400, &mut s);
        p.handle(
            Payload::ActiveMsg {
                req: req_b,
                requester: ProcId(1),
                target_proc: ProcId(0),
                handler: Box::new(HandlerKind::LockRelease { lock: 0 }),
                attempt: 0,
            },
            500,
            &mut s,
        );
        p.handler_done(900, &mut s);
        let before = p.lock_srv_state(0).unwrap();
        // ...then a stale retransmission of the old acquire crawls in.
        let eff = p.handle(
            Payload::ActiveMsg {
                req: req_a,
                requester: ProcId(1),
                target_proc: ProcId(0),
                handler: Box::new(acquire),
                attempt: 3,
            },
            2000,
            &mut s,
        );
        assert!(eff.is_empty(), "stale duplicate must be dropped: {eff:?}");
        assert_eq!(p.lock_srv_state(0).unwrap(), before, "no phantom ticket");
    }

    /// Regression: handler storms must not starve the home processor's
    /// own kernel forever — the scheduler inserts yield gaps.
    #[test]
    fn handler_storm_yields_to_the_kernel() {
        let mut p = proc0();
        let mut s = Stats::new();
        let issued = std::rc::Rc::new(std::cell::Cell::new(false));
        let flag = issued.clone();
        p.load_kernel(Box::new(move |_l: Option<Outcome>| {
            flag.set(true);
            Op::Done
        }));
        // Saturate the handler queue and keep it saturated past several
        // service windows.
        let h = HandlerKind::FetchAdd {
            ctr: 0,
            operand: 1,
            publish: None,
        };
        let mut now = 0u64;
        let mut wake_at = None;
        for i in 0..32u64 {
            p.handle(
                Payload::ActiveMsg {
                    req: ReqId(((2 + (i % 8)) << 48) | i),
                    requester: ProcId((2 + (i % 8)) as u16),
                    target_proc: ProcId(0),
                    handler: Box::new(h),
                    attempt: 0,
                },
                now,
                &mut s,
            );
            // Drive handler completions as the machine would.
            let eff = p.handler_done(now + 400, &mut s);
            for e in &eff {
                if let ProcEffect::HandlerWake { when } = e {
                    now = *when;
                }
            }
            // Step the kernel whenever the machine would wake it.
            let eff = p.step(now, &mut s);
            for e in &eff {
                if let ProcEffect::Wake { when } = e {
                    wake_at = Some(*when);
                }
            }
            if let Some(w) = wake_at {
                if w <= now {
                    p.step(w, &mut s);
                }
            }
            if issued.get() {
                break;
            }
        }
        // The deterministic yield (every 8 handlers) guarantees the
        // kernel got CPU time within a few windows.
        let eff = p.step(now + 1_000_000, &mut s);
        let _ = eff;
        assert!(
            issued.get() || {
                // One final step after all handlers drain must run it.
                p.step(now + 2_000_000, &mut s);
                issued.get()
            },
            "kernel starved by handler storm"
        );
    }

    #[test]
    fn intervention_returns_dirty_data() {
        let mut p = proc0();
        let mut s = Stats::new();
        let a = addr_on(1, 0x80);
        let mut n = 0;
        p.load_kernel(Box::new(move |_l: Option<Outcome>| {
            n += 1;
            if n == 1 {
                Op::Store { addr: a, value: 9 }
            } else {
                Op::Done
            }
        }));
        let eff = p.step(0, &mut s);
        let req = eff
            .iter()
            .find_map(|e| match e {
                ProcEffect::Send {
                    payload: Payload::GetX { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .unwrap();
        p.handle(
            Payload::DataX {
                req,
                block: a.block(128),
                data: data16(&[]),
            },
            100,
            &mut s,
        );
        let eff = p.handle(
            Payload::Intervention {
                kind: InterventionKind::Exclusive,
                block: a.block(128),
            },
            200,
            &mut s,
        );
        match &eff[..] {
            [ProcEffect::Send {
                payload:
                    Payload::InterventionReply {
                        resp: InterventionResp::Dirty(d),
                        ..
                    },
                ..
            }] => {
                assert_eq!(d.word(0), 9);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.caches().state_of(a), None);
    }
}
