//! The processor model.
//!
//! Processors do not execute MIPS binaries; they run *kernels* — explicit
//! state machines (implementations of [`Kernel`]) that issue the memory
//! and synchronization operations a compiled synchronization routine
//! would. The paper's benchmarks are pure synchronization loops, so this
//! captures exactly what its experiments measure: every coherence
//! transaction, every AMO/MAO/active-message exchange, every spin.
//!
//! Key behaviours modelled here:
//!
//! * two-level cache access with miss transactions through the home
//!   directory (GetS / GetX / Upgrade / writeback);
//! * MIPS-style LL/SC with a single reservation cleared by invalidations;
//! * processor-side atomic read-modify-write (the "Atomic" baseline);
//! * **event-driven spinning**: a spinning processor sleeps on its cached
//!   copy and is woken by an invalidation (→ reload, the conventional
//!   wake-up storm) or by a pushed word update (→ immediate re-check, the
//!   AMO path);
//! * active-message handler execution on the home processor, with
//!   invocation overhead, queueing, at-most-once dedup, and the resulting
//!   interference with the processor's own work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod proc;

pub use kernel::{Kernel, Op, Outcome, SeqKernel};
pub use proc::{ProcEffect, ProcFault, Processor, TimerKind};
