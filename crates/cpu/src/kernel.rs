//! The kernel interface: what synchronization algorithms look like to a
//! processor.

use amo_types::{Addr, AmoKind, Cycle, HandlerKind, NodeId, SpinPred, Word};

/// One operation a kernel asks its processor to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Coherent load; completes with [`Outcome::Value`].
    Load {
        /// Word to read.
        addr: Addr,
    },
    /// Coherent store; completes with [`Outcome::Stored`].
    Store {
        /// Word to write.
        addr: Addr,
        /// Value.
        value: Word,
    },
    /// Load-linked: a load that establishes the reservation.
    LoadLinked {
        /// Word to read.
        addr: Addr,
    },
    /// Store-conditional; completes with [`Outcome::ScResult`].
    StoreConditional {
        /// Word to write.
        addr: Addr,
        /// Value.
        value: Word,
    },
    /// Processor-side atomic read-modify-write (the "Atomic" baseline);
    /// completes with [`Outcome::Value`] carrying the old value.
    AtomicRmw {
        /// Operation.
        kind: AmoKind,
        /// Word to modify.
        addr: Addr,
        /// Operand.
        operand: Word,
    },
    /// Active memory operation shipped to the home AMU; completes with
    /// [`Outcome::Value`] carrying the old value.
    Amo {
        /// Operation.
        kind: AmoKind,
        /// Word to modify (home node executes).
        addr: Addr,
        /// Operand.
        operand: Word,
        /// Delayed-put test value.
        test: Option<Word>,
    },
    /// Uncached memory-side atomic (MAO baseline); completes with
    /// [`Outcome::Value`].
    Mao {
        /// Operation.
        kind: AmoKind,
        /// Word to modify.
        addr: Addr,
        /// Operand.
        operand: Word,
    },
    /// Uncached remote load (MAO-style spinning); [`Outcome::Value`].
    UncachedLoad {
        /// Word to read.
        addr: Addr,
    },
    /// Uncached remote store; [`Outcome::Stored`].
    UncachedStore {
        /// Word to write.
        addr: Addr,
        /// Value.
        value: Word,
    },
    /// Send an active message to (the first processor of) `home` and wait
    /// for the ack; completes with [`Outcome::Acked`] carrying the
    /// handler's result. Retransmitted on timeout.
    ActiveMsg {
        /// Node whose processor runs the handler.
        home: NodeId,
        /// Handler to run.
        handler: HandlerKind,
    },
    /// Spin until the coherently-cached word satisfies the predicate;
    /// completes with [`Outcome::SpinDone`]. The processor sleeps on its
    /// cached copy between wake-ups.
    SpinUntil {
        /// Word to watch.
        addr: Addr,
        /// Completion predicate.
        pred: SpinPred,
    },
    /// Local computation for `cycles`; completes with [`Outcome::Delayed`].
    Delay {
        /// Busy time.
        cycles: Cycle,
    },
    /// Zero-cost measurement marker: the machine records (processor, id,
    /// cycle). Completes immediately with [`Outcome::Delayed`]. Workloads
    /// use marks to timestamp episode boundaries (barrier entry/exit,
    /// lock acquire/release).
    Mark {
        /// Marker id, chosen by the workload.
        id: u32,
    },
    /// The kernel is finished.
    Done,
}

/// Completion information handed to [`Kernel::next`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A load/atomic/AMO/MAO completed with this (old) value.
    Value(Word),
    /// A store completed.
    Stored,
    /// A store-conditional succeeded (`true`) or failed (`false`).
    ScResult(bool),
    /// A spin completed; the watched word's satisfying value.
    SpinDone(Word),
    /// An active message was acknowledged with this handler result.
    Acked(Word),
    /// A delay elapsed.
    Delayed,
}

impl Outcome {
    /// The value carried, if any (panics otherwise — kernel logic bugs
    /// should fail loudly).
    pub fn value(self) -> Word {
        match self {
            Outcome::Value(v) | Outcome::SpinDone(v) | Outcome::Acked(v) => v,
            other => panic!("outcome {other:?} carries no value"),
        }
    }

    /// The SC result (panics if this wasn't an SC completion).
    pub fn sc_ok(self) -> bool {
        match self {
            Outcome::ScResult(ok) => ok,
            other => panic!("outcome {other:?} is not an SC result"),
        }
    }
}

/// A synchronization algorithm instance bound to one processor.
///
/// The processor calls [`Kernel::next`] with the outcome of the previous
/// operation (`None` on the first call) and performs the returned
/// operation. Returning [`Op::Done`] ends the kernel; the machine records
/// the completion time.
pub trait Kernel {
    /// Produce the next operation.
    fn next(&mut self, last: Option<Outcome>) -> Op;
}

/// Blanket implementation so closures can serve as throwaway kernels in
/// tests: the closure *is* the state machine.
impl<F: FnMut(Option<Outcome>) -> Op> Kernel for F {
    fn next(&mut self, last: Option<Outcome>) -> Op {
        self(last)
    }
}

/// Run a list of kernels back to back on one processor.
///
/// Each phase sees a fresh `None` first call; its [`Op::Done`] hands
/// control to the next phase within the same dispatch, so no cycles are
/// lost at the boundary. Useful for composing benchmark phases — e.g. a
/// contended lock phase followed by a barrier — without writing a
/// bespoke product state machine.
///
/// ```
/// use amo_cpu::{Kernel, Op, Outcome, SeqKernel};
///
/// let phase = |n: u64| {
///     let mut fired = false;
///     move |_last: Option<Outcome>| {
///         if fired {
///             Op::Done
///         } else {
///             fired = true;
///             Op::Delay { cycles: n }
///         }
///     }
/// };
/// let mut seq = SeqKernel::new(vec![Box::new(phase(10)), Box::new(phase(20))]);
/// assert_eq!(seq.next(None), Op::Delay { cycles: 10 });
/// assert_eq!(seq.next(Some(Outcome::Delayed)), Op::Delay { cycles: 20 });
/// assert_eq!(seq.next(Some(Outcome::Delayed)), Op::Done);
/// ```
pub struct SeqKernel {
    phases: Vec<Box<dyn Kernel>>,
    at: usize,
    fresh: bool,
}

impl SeqKernel {
    /// Compose `phases`, run in order.
    pub fn new(phases: Vec<Box<dyn Kernel>>) -> Self {
        SeqKernel {
            phases,
            at: 0,
            fresh: true,
        }
    }
}

impl Kernel for SeqKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        while self.at < self.phases.len() {
            let arg = if self.fresh { None } else { last.take() };
            self.fresh = false;
            let op = self.phases[self.at].next(arg);
            if !matches!(op, Op::Done) {
                return op;
            }
            self.at += 1;
            self.fresh = true;
        }
        Op::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_value_extraction() {
        assert_eq!(Outcome::Value(5).value(), 5);
        assert_eq!(Outcome::SpinDone(7).value(), 7);
        assert_eq!(Outcome::Acked(9).value(), 9);
        assert!(Outcome::ScResult(true).sc_ok());
        assert!(!Outcome::ScResult(false).sc_ok());
    }

    #[test]
    #[should_panic(expected = "carries no value")]
    fn stored_has_no_value() {
        Outcome::Stored.value();
    }

    #[test]
    fn closures_are_kernels() {
        let mut calls = 0;
        let mut k = |_last: Option<Outcome>| {
            calls += 1;
            Op::Done
        };
        assert_eq!(Kernel::next(&mut k, None), Op::Done);
        let _ = k;
        assert_eq!(calls, 1);
    }

    #[test]
    fn seq_hands_each_phase_a_fresh_first_call() {
        // Each phase asserts its first call carries None, then issues
        // one op and finishes.
        let phase = |cycles: u64| {
            let mut step = 0u32;
            move |last: Option<Outcome>| {
                step += 1;
                match step {
                    1 => {
                        assert!(last.is_none(), "phase must start fresh");
                        Op::Delay { cycles }
                    }
                    _ => {
                        assert_eq!(last, Some(Outcome::Delayed));
                        Op::Done
                    }
                }
            }
        };
        let mut seq = SeqKernel::new(vec![
            Box::new(phase(1)),
            Box::new(phase(2)),
            Box::new(phase(3)),
        ]);
        assert_eq!(seq.next(None), Op::Delay { cycles: 1 });
        assert_eq!(seq.next(Some(Outcome::Delayed)), Op::Delay { cycles: 2 });
        assert_eq!(seq.next(Some(Outcome::Delayed)), Op::Delay { cycles: 3 });
        assert_eq!(seq.next(Some(Outcome::Delayed)), Op::Done);
        assert_eq!(seq.next(None), Op::Done, "exhausted seq stays done");
    }

    #[test]
    fn empty_seq_is_immediately_done() {
        let mut seq = SeqKernel::new(Vec::new());
        assert_eq!(seq.next(None), Op::Done);
    }
}
