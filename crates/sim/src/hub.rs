//! One node's hub: directory controller, memory controller (DRAM timing +
//! backing store), Active Memory Unit, and remote access cache.

use amo_amu::Amu;
use amo_cache::Rac;
use amo_directory::Directory;
use amo_dram::{DramTimer, MemoryStore};
use amo_types::{Cycle, NodeId, SystemConfig};

/// Everything that lives on one node besides its processors.
pub struct Hub {
    /// This hub's node.
    pub node: NodeId,
    /// Directory controller for locally-homed blocks.
    pub directory: Directory,
    /// Active Memory Unit.
    pub amu: Amu,
    /// DRAM timing model.
    pub dram: DramTimer,
    /// Backing store of local memory values.
    pub memory: MemoryStore,
    /// Remote access cache: sink for pushed word updates.
    pub rac: Rac,
    /// Directory service pipeline: busy until this cycle.
    pub dir_free: Cycle,
}

impl Hub {
    /// Build the hub for `node`.
    pub fn new(node: NodeId, cfg: &SystemConfig) -> Self {
        Hub {
            node,
            directory: Directory::new(node, cfg.procs_per_node)
                .with_dup_guard(cfg.faults.delivery_enabled()),
            amu: Amu::new(
                cfg.amu.cache_words,
                cfg.amu.op_hub_cycles * cfg.hub_cycle,
                cfg.amu.queue_cap,
                cfg.l2.line_bytes,
            )
            .with_dedup(if cfg.faults.delivery_enabled() {
                cfg.faults.dedup_window
            } else {
                0
            }),
            dram: DramTimer::new(
                cfg.dram_channels,
                cfg.dram_latency,
                cfg.dram_occupancy,
                cfg.l2.line_bytes,
            ),
            memory: MemoryStore::new(),
            rac: Rac::new(64),
            dir_free: 0,
        }
    }

    /// Occupancy (in CPU cycles) of one directory message service.
    pub fn dir_occupancy(cfg: &SystemConfig) -> Cycle {
        cfg.dir_occupancy_hub_cycles * cfg.hub_cycle
    }
}
