//! The machine: the complete simulated CC-NUMA multiprocessor.
//!
//! A [`Machine`] assembles processors ([`amo_cpu::Processor`]), hubs
//! (directory + memory controller + DRAM + AMU + RAC, one per node), and
//! the fat-tree fabric, and drives them with a deterministic
//! discrete-event loop. Workloads install a [`amo_cpu::Kernel`] on each
//! processor and call [`Machine::run`]; the result carries timing,
//! per-marker timestamps, and the machine-wide [`amo_types::Stats`].
//!
//! The event graph mirrors the paper's hardware:
//!
//! ```text
//! processor ──bus──► local hub ──fabric──► home hub
//!                                           ├─ directory (serialized, occupancy)
//!                                           ├─ DRAM (channels, 60 cycles)
//!                                           ├─ AMU (queue + 8-word cache, 2-hub-cycle ops)
//!                                           └─ RAC (word-update sink)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hub;
pub mod machine;

pub use amo_engine::QueueKind;
pub use error::{DiagBundle, NodeDepths, SimError, SimErrorKind};
pub use machine::{Machine, RunResult, EVENT_SIZE};
