//! Typed simulation errors and the diagnostic bundle attached to them.
//!
//! A [`crate::Machine`] never panics on a modelled fault (exhausted link
//! replay budget, starved retry loop, protocol violation, watchdog
//! trip): it stops the event loop and surfaces a [`SimError`] carrying
//! enough state — the stall report, per-node queue depths, the tail of
//! the ring trace — to diagnose the run post-mortem.

use amo_amu::AmuError;
use amo_obs::TraceBuf;
use amo_types::{Cycle, NodeId, ProcId};

/// Queue-depth snapshot of one node, taken at abort time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeDepths {
    /// Requests queued at the directory controller.
    pub dir_queue: u32,
    /// Operations queued at the AMU.
    pub amu_queue: u32,
    /// Outstanding cache misses across the node's processors.
    pub outstanding_misses: u32,
}

/// Diagnostics harvested when the machine aborts.
#[derive(Clone, Debug, Default)]
pub struct DiagBundle {
    /// [`crate::Machine::stall_report`] at the moment of the abort.
    pub stall_report: String,
    /// Per-node queue depths, indexed by node id.
    pub queue_depths: Vec<NodeDepths>,
    /// The last events recorded by the attached tracer (`None` with the
    /// default `NopTracer`).
    pub trace: Option<TraceBuf>,
    /// Events dispatched before the abort.
    pub events_processed: u64,
    /// Rendered critical-path stage breakdown of the failed run,
    /// attached by the runner when the trace ring is complete (no
    /// dropped events) and the DAG analyzable. `None` when untraced,
    /// when the ring wrapped, or when the analyzer's typed
    /// `IncompleteDag` refusal fired — a partial attribution would
    /// mis-blame stages.
    pub critpath: Option<String>,
    /// For `RequestTimedOut` aborts: the full end-to-end retransmission
    /// schedule the requester executed before giving up — attempt count
    /// plus the per-attempt backoff delay in cycles — so a timeout
    /// counterexample is self-describing without re-deriving the backoff
    /// policy.
    pub retx_schedule: Option<String>,
    /// For `MonitorViolation` aborts: the monitor's full account of the
    /// violated invariant with the witnessing values.
    pub violation: Option<String>,
}

/// Why a run aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimErrorKind {
    /// A packet exhausted the link replay budget
    /// (`FaultConfig::max_link_retries`).
    LinkFailed {
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Replay attempts consumed.
        attempts: u32,
    },
    /// An active message exhausted its retransmission budget.
    ActMsgStarved {
        /// The starved requester.
        proc: ProcId,
        /// Retries attempted.
        attempts: u32,
    },
    /// An AMO/MAO was NACKed by the home AMU past
    /// `AmuConfig::max_retries`.
    AmuStarved {
        /// The starved requester.
        proc: ProcId,
        /// Retries attempted.
        attempts: u32,
    },
    /// An AMU received a value it cannot correlate with a pending
    /// operation — a protocol bug, not a recoverable fault.
    AmuProtocol {
        /// The AMU's node.
        node: NodeId,
        /// The unit's own diagnosis.
        err: AmuError,
    },
    /// A hub or directory received a payload it has no handler for.
    UnexpectedPayload {
        /// Which dispatcher rejected it (`"hub"` or `"directory"`).
        at: &'static str,
        /// The receiving node.
        node: NodeId,
    },
    /// The watchdog saw events flowing but no kernel progress (no
    /// operation retired, no handler run) for a full window — livelock.
    NoProgress {
        /// The configured watchdog window, in cycles.
        window: Cycle,
        /// Cycle of the last observed progress.
        last_progress_at: Cycle,
    },
    /// The event queue drained with kernels unfinished while the
    /// watchdog was armed — deadlock (nothing left that could wake
    /// them).
    Deadlock {
        /// Kernels that never reached `Op::Done`.
        unfinished: u32,
    },
    /// An outstanding request exhausted its end-to-end retransmission
    /// budget (`FaultConfig::max_e2e_retries`) under delivery faults —
    /// every copy of the request or its reply kept vanishing.
    RequestTimedOut {
        /// The requester that gave up.
        proc: ProcId,
        /// End-to-end retransmissions attempted.
        attempts: u32,
    },
    /// An online protocol monitor (see `amo-verify`) observed a
    /// semantic-invariant violation in the trace stream. The full
    /// account lives in [`DiagBundle::violation`].
    MonitorViolation {
        /// Stable name of the monitor that fired.
        monitor: &'static str,
    },
}

impl std::fmt::Display for SimErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimErrorKind::LinkFailed { src, dst, attempts } => write!(
                f,
                "link {src}->{dst} failed after {attempts} replay attempts"
            ),
            SimErrorKind::ActMsgStarved { proc, attempts } => write!(
                f,
                "active message from {proc} starved after {attempts} retransmissions"
            ),
            SimErrorKind::AmuStarved { proc, attempts } => {
                write!(f, "AMU request from {proc} starved after {attempts} NACKs")
            }
            SimErrorKind::AmuProtocol { node, err } => {
                write!(f, "AMU protocol violation at {node}: {err}")
            }
            SimErrorKind::UnexpectedPayload { at, node } => {
                write!(f, "unexpected payload at {at} of {node}")
            }
            SimErrorKind::NoProgress {
                window,
                last_progress_at,
            } => write!(
                f,
                "no progress for {window} cycles (last progress at {last_progress_at}) — livelock"
            ),
            SimErrorKind::Deadlock { unfinished } => {
                write!(
                    f,
                    "event queue drained with {unfinished} kernels unfinished — deadlock"
                )
            }
            SimErrorKind::RequestTimedOut { proc, attempts } => write!(
                f,
                "request from {proc} timed out end-to-end after {attempts} retransmissions"
            ),
            SimErrorKind::MonitorViolation { monitor } => {
                write!(f, "protocol monitor '{monitor}' detected a violation")
            }
        }
    }
}

/// A typed, diagnosable abort of a [`crate::Machine`] run.
#[derive(Clone, Debug)]
pub struct SimError {
    /// What went wrong.
    pub kind: SimErrorKind,
    /// Cycle at which the fault was detected.
    pub at: Cycle,
    /// State harvested at the abort.
    pub bundle: DiagBundle,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: {}", self.at, self.kind)
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_diagnosis() {
        let e = SimError {
            kind: SimErrorKind::LinkFailed {
                src: NodeId(1),
                dst: NodeId(3),
                attempts: 8,
            },
            at: 12_345,
            bundle: DiagBundle::default(),
        };
        let s = e.to_string();
        assert!(s.contains("cycle 12345"), "{s}");
        assert!(s.contains("8 replay attempts"), "{s}");
        let w = SimErrorKind::NoProgress {
            window: 1_000,
            last_progress_at: 42,
        }
        .to_string();
        assert!(w.contains("livelock"), "{w}");
        assert!(SimErrorKind::Deadlock { unfinished: 3 }
            .to_string()
            .contains("deadlock"));
    }
}
