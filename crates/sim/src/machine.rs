//! The machine: event loop and component glue.

use crate::error::{DiagBundle, NodeDepths, SimError, SimErrorKind};
use crate::hub::Hub;
use amo_amu::AmuEffect;
use amo_cpu::{Kernel, ProcEffect, ProcFault, Processor, TimerKind};
use amo_directory::{DirAction, DirRequest};
use amo_engine::{Clock, EventQueue, QueueKind};
use amo_faults::FaultPlan;
use amo_noc::fabric::NodeTraffic;
use amo_noc::{Delivery, Fabric};
use amo_obs::hostprof::{HostProf, HostProfReport, NopHostProf, Scope};
use amo_obs::timeseries::{NodeSample, Tick, TimeSeries};
use amo_obs::{NopTracer, TraceBuf, TraceEvent, TraceKind, Tracer};
use amo_types::{
    Addr, BlockAddr, Cycle, MsgClass, MsgEndpoint, NodeId, Payload, ProcId, ReqId, SharedTape,
    Stats, SystemConfig, Word,
};

/// Declares the event enum together with a fieldless mirror enum whose
/// discriminants give every variant a dense index, so `Event::COUNT`,
/// `Event::NAMES`, and `Event::index` all derive from the one variant
/// list — adding a variant can never desynchronize the counters.
macro_rules! define_events {
    (
        $(#[$em:meta])*
        enum $ename:ident / $kname:ident {
            $( $(#[$vm:meta])* $vname:ident ( $($vty:ty),* $(,)? ) ),+ $(,)?
        }
    ) => {
        $(#[$em])*
        enum $ename { $( $(#[$vm])* $vname ( $($vty),* ) ),+ }

        #[derive(Clone, Copy)]
        enum $kname { $( $vname ),+ }

        impl $ename {
            /// Number of event variants.
            const COUNT: usize = [$( $kname::$vname ),+].len();
            /// Variant names, in declaration order.
            const NAMES: [&'static str; Self::COUNT] = [$( stringify!($vname) ),+];
            /// Dense index of this event's variant.
            #[inline]
            fn index(&self) -> usize {
                (match self { $( Self::$vname(..) => $kname::$vname ),+ }) as usize
            }
        }
    };
}

define_events! {
    /// Everything that can happen. Events are moved (never cloned) from
    /// the queue through dispatch; payloads ride along by value.
    #[derive(Debug)]
    enum Event / EventKind {
        /// Call `Processor::step`.
        ProcWake(ProcId),
        /// Call `Processor::handler_done`.
        ProcHandlerDone(ProcId),
        /// Call `Processor::timeout`.
        ProcTimeout(ProcId, ReqId, TimerKind),
        /// Apply a word update at a processor (bus latency included).
        ProcWordUpdate(ProcId, Addr, Word),
        /// A message arrived at a hub's network interface.
        ToHub(NodeId, Payload),
        /// A directory-bound message cleared the service pipeline.
        DirProcess(NodeId, Payload),
        /// A DRAM block read completed for the directory.
        DramDone(NodeId, BlockAddr),
        /// The AMU function unit becomes free.
        AmuWake(NodeId),
        /// An uncached memory word read completed for the AMU.
        AmuMemValue(NodeId, u64, Addr),
        /// An AMU reply is ready to inject into the fabric.
        AmuSend(NodeId, ProcId, Payload),
        /// A message is delivered to a processor (bus latency included).
        ToProc(ProcId, Payload),
    }
}

/// Size of one queued event in bytes. The event type itself is private
/// (its variants are the machine's internals); the size is exported so
/// the layout-guard tests can pin the hot-path memory budget — every
/// queue push/pop memcpys exactly this many bytes.
pub const EVENT_SIZE: usize = std::mem::size_of::<Event>();

/// Result of [`Machine::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Cycle of the last processed event.
    pub end: Cycle,
    /// True if every installed kernel reached `Op::Done`.
    pub all_finished: bool,
    /// Per-processor completion times.
    pub finished: Vec<Option<Cycle>>,
    /// Events processed.
    pub events: u64,
    /// True if the run stopped at the cycle limit.
    pub hit_limit: bool,
    /// The typed fault that aborted the run, if one did. `None` means
    /// the run ended normally (drained queue or cycle limit).
    pub error: Option<SimError>,
}

impl RunResult {
    /// Latest kernel completion time (panics if any kernel is unfinished).
    pub fn last_finish(&self) -> Cycle {
        self.finished
            .iter()
            .map(|f| f.expect("kernel did not finish"))
            .max()
            .expect("at least one kernel")
    }

    /// Earliest kernel completion time.
    pub fn first_finish(&self) -> Cycle {
        self.finished
            .iter()
            .map(|f| f.expect("kernel did not finish"))
            .min()
            .expect("at least one kernel")
    }
}

/// The simulated multiprocessor.
///
/// ```
/// use amo_sim::Machine;
/// use amo_cpu::{Kernel, Op, Outcome};
/// use amo_types::{Addr, NodeId, ProcId, SystemConfig};
///
/// // One processor stores 7 to a remote word, another reads it back.
/// struct Put(bool);
/// impl Kernel for Put {
///     fn next(&mut self, _l: Option<Outcome>) -> Op {
///         if self.0 { return Op::Done; }
///         self.0 = true;
///         Op::Store { addr: Addr::on_node(NodeId(1), 0x100), value: 7 }
///     }
/// }
///
/// let mut m = Machine::new(SystemConfig::with_procs(4));
/// m.install_kernel(ProcId(0), Box::new(Put(false)), 0);
/// let result = m.run(1_000_000);
/// assert!(result.all_finished);
/// assert!(m.stats().total_msgs() > 0);
/// ```
pub struct Machine<T: Tracer = NopTracer, P: HostProf = NopHostProf> {
    cfg: SystemConfig,
    clock: Clock,
    queue: EventQueue<Event>,
    fabric: Fabric,
    procs: Vec<Processor>,
    hubs: Vec<Hub>,
    stats: Stats,
    marks: Vec<(ProcId, u32, Cycle)>,
    finished: Vec<Option<Cycle>>,
    installed: Vec<bool>,
    trace: Option<Vec<String>>,
    event_counts: [u64; Event::COUNT],
    /// Same-cycle dispatch batch: events drained from the queue but not
    /// yet dispatched, in *reverse* `(time, seq)` order so dispatch pops
    /// from the back. One queue drain (a single calendar bitmap scan)
    /// serves every event at the current cycle. Normally empty between
    /// `run` calls; non-empty only if a run aborted on a fault mid-batch,
    /// in which case the remainder is dispatched first on resume —
    /// exactly where per-event popping would have left them.
    batch: Vec<Event>,
    /// Firing time of the events in `batch`.
    batch_when: Cycle,
    /// Batched same-cycle dispatch switch (on by default). The forced
    /// per-event path exists for differential determinism testing; see
    /// [`Machine::set_batched_dispatch`].
    batched: bool,
    /// Reusable effect buffers: the dispatch hot path hands one to each
    /// component `*_into` call and returns it after draining, so steady
    /// state event processing performs no heap allocation. Pools (not
    /// single buffers) because effect processing nests: an AMU effect
    /// can produce directory actions whose processing produces further
    /// AMU effects while the outer buffer is still being drained.
    proc_eff_pool: Vec<Vec<ProcEffect>>,
    amu_eff_pool: Vec<Vec<AmuEffect>>,
    dir_act_pool: Vec<Vec<DirAction>>,
    /// The instrumentation switch. With the default [`NopTracer`] every
    /// hook (`if T::ENABLED { ... }`) is compile-time dead code; see
    /// `amo-obs` for the contract. [`Machine::with_tracer`] swaps in a
    /// recording implementation.
    tracer: T,
    /// The host-profiling switch: the same compile-time pattern as the
    /// tracer, but attributing the simulator's *own* wall-clock and
    /// allocations (`if P::ENABLED { self.prof.enter(..) }`). The
    /// default [`NopHostProf`] folds every hook away;
    /// [`Machine::with_parts`] swaps in `amo_obs::HostProfiler`.
    prof: P,
    /// Time-series sampling cadence; 0 until enabled.
    sample_interval: Cycle,
    /// Next sampling boundary (`Cycle::MAX` = sampling off, so the run
    /// loop's check is a single always-false compare by default).
    next_sample: Cycle,
    timeseries: Option<TimeSeries>,
    /// The fault oracle (shared in spirit with the fabric's copy; used
    /// here for AMU brown-out windows).
    faults: FaultPlan,
    /// First typed fault raised during dispatch; the run loop stops on
    /// it at the next event boundary.
    pending_fault: Option<(SimErrorKind, Cycle)>,
    /// Rendered retransmission schedule for a pending
    /// `RequestTimedOut`, attached to the bundle by `make_error`.
    pending_retx: Option<String>,
    /// Full detail of a pending `MonitorViolation`, attached to the
    /// bundle by `make_error`.
    pending_violation: Option<String>,
    /// True once a schedule tape was attached (the explorer drives the
    /// delivery layer and retry jitter; see
    /// [`Machine::set_schedule_tape`]).
    taped: bool,
    /// Reusable drain buffers for the AMU apply log and directory
    /// reclaim log (traced builds only; stay empty under `NopTracer`).
    apply_buf: Vec<(ReqId, ProcId, Addr, Word)>,
    reclaim_buf: Vec<(BlockAddr, bool)>,
    /// Watchdog no-progress window; 0 = watchdog off.
    watchdog_window: Cycle,
    /// Progress metric value at the last observed change.
    wd_last_progress: u64,
    /// Cycle of the last observed progress change.
    wd_last_progress_at: Cycle,
}

/// Upper bound on concurrently pending events, from the config: every
/// processor can hold its outstanding-miss limit in flight (each miss is
/// at most one queued event at a time), plus per-node slack for AMU
/// queues and update fanout.
/// Causal flow id carried by a payload's request tag (0 = none).
#[inline]
fn flow_of(payload: &Payload) -> u64 {
    payload.req().map_or(0, |r| r.flow())
}

fn queue_capacity(cfg: &SystemConfig) -> usize {
    cfg.num_procs as usize * cfg.max_outstanding_misses
        + cfg.num_nodes() as usize * cfg.amu.queue_cap.min(64)
}

impl Machine {
    /// Build a machine per `cfg` (validated).
    pub fn new(cfg: SystemConfig) -> Self {
        Self::new_with_queue(cfg, QueueKind::Calendar)
    }

    /// Build a machine with an explicit future-event-list implementation
    /// (the heap variant exists for differential testing and perf
    /// baselines; results are bit-identical either way).
    pub fn new_with_queue(cfg: SystemConfig, kind: QueueKind) -> Self {
        Machine::with_tracer(cfg, kind, NopTracer)
    }
}

impl<T: Tracer> Machine<T> {
    /// Build a machine that records a cycle-stamped event trace through
    /// `tracer` (e.g. `amo_obs::RingTracer`). Processor op-span emission
    /// is switched on here so issue→completion spans reach the trace;
    /// the plain constructors leave it off.
    pub fn with_tracer(cfg: SystemConfig, kind: QueueKind, tracer: T) -> Self {
        Machine::with_parts(cfg, kind, tracer, NopHostProf)
    }
}

impl<T: Tracer, P: HostProf> Machine<T, P> {
    /// Build a machine with both instrumentation switches explicit: a
    /// tracer for simulated-time observability and a host profiler for
    /// wall-clock/allocation attribution (`amo_obs::HostProfiler`).
    /// Either can be the zero-sized nop.
    pub fn with_parts(cfg: SystemConfig, kind: QueueKind, tracer: T, prof: P) -> Self {
        cfg.validate();
        let nodes = cfg.num_nodes();
        let mut procs: Vec<Processor> = (0..cfg.num_procs)
            .map(|i| Processor::new(ProcId(i), cfg))
            .collect();
        if T::ENABLED {
            for p in &mut procs {
                p.set_op_tracing(true);
            }
        }
        let mut hubs: Vec<Hub> = (0..nodes).map(|n| Hub::new(NodeId(n), &cfg)).collect();
        if T::ENABLED {
            // Protocol-monitor observability: record true AMU applies
            // and directory idle reclaims so the trace stream carries
            // the semantic events the monitors check.
            for h in &mut hubs {
                h.amu.set_log_applies(true);
                h.directory.set_log_reclaims(true);
            }
        }
        Machine {
            fabric: Fabric::with_faults(nodes, cfg.network, FaultPlan::new(cfg.faults)),
            procs,
            hubs,
            clock: Clock::new(),
            queue: EventQueue::with_capacity_and_kind(queue_capacity(&cfg), kind),
            stats: Stats::new(),
            marks: Vec::new(),
            finished: vec![None; cfg.num_procs as usize],
            installed: vec![false; cfg.num_procs as usize],
            trace: None,
            event_counts: [0; Event::COUNT],
            batch: Vec::new(),
            batch_when: 0,
            batched: std::env::var_os("AMO_DISPATCH_PER_EVENT").is_none(),
            proc_eff_pool: Vec::new(),
            amu_eff_pool: Vec::new(),
            dir_act_pool: Vec::new(),
            tracer,
            prof,
            sample_interval: 0,
            next_sample: Cycle::MAX,
            timeseries: None,
            faults: FaultPlan::new(cfg.faults),
            pending_fault: None,
            pending_retx: None,
            pending_violation: None,
            taped: false,
            apply_buf: Vec::new(),
            reclaim_buf: Vec::new(),
            watchdog_window: 0,
            wd_last_progress: 0,
            wd_last_progress_at: 0,
            cfg,
        }
    }

    /// Arm the progress watchdog: abort with
    /// [`SimErrorKind::NoProgress`] if `window` cycles pass with events
    /// still flowing but nothing retiring (no kernel operation
    /// completes, no handler runs), and with
    /// [`SimErrorKind::Deadlock`] if the event queue drains with
    /// kernels unfinished. Off by default — legitimate open-ended runs
    /// (e.g. inspecting a stalled kernel via
    /// [`stall_report`](Self::stall_report)) stay non-fatal.
    pub fn enable_watchdog(&mut self, window: Cycle) {
        assert!(window > 0, "watchdog window must be positive");
        self.watchdog_window = window;
    }

    /// Switch batched same-cycle dispatch on or off (on by default;
    /// `AMO_DISPATCH_PER_EVENT=1` in the environment turns it off at
    /// construction). The per-event path exists purely as a differential
    /// oracle: results are bit-identical either way, and the machine
    /// determinism tests enforce that. Call before [`run`](Self::run).
    pub fn set_batched_dispatch(&mut self, batched: bool) {
        assert!(self.batch.is_empty(), "cannot switch mid-batch");
        self.batched = batched;
    }

    /// Mutable access to the attached tracer (e.g. to read drop counts).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Mutable access to the attached host profiler (e.g. to `reset()`
    /// it between a warm-up run and the steady-state run it profiles).
    pub fn profiler_mut(&mut self) -> &mut P {
        &mut self.prof
    }

    /// Drain the accumulated host profile, if the profiler keeps one
    /// (`None` for [`NopHostProf`]).
    pub fn take_hostprof(&mut self) -> Option<HostProfReport> {
        self.prof.take_report()
    }

    /// Clear the recorded `Op::Mark` history, retaining the buffer's
    /// capacity. Used between a warm-up run and a profiled steady-state
    /// run so the mark sink doesn't regrow (and re-allocate) from
    /// scratch.
    pub fn clear_marks(&mut self) {
        self.marks.clear();
    }

    /// Attach a schedule tape: every delivery-layer choice (reorder
    /// skew, duplication) and every retry-jitter draw is resolved by
    /// `tape` instead of the fault plan's keyed hash, making the
    /// interleaving an explicit, enumerable input. Used by the
    /// `amo-verify` schedule explorer; see `amo_types::tape`. Call
    /// before [`run`](Self::run).
    pub fn set_schedule_tape(&mut self, tape: SharedTape) {
        self.fabric.set_schedule_tape(tape.clone());
        for p in &mut self.procs {
            p.set_schedule_tape(tape.clone());
        }
        self.taped = true;
    }

    /// Test-only planted bug for the `amo-verify` explorer: make every
    /// AMU's dedup-suppressed replay *log* an apply record as if it had
    /// executed twice. Protocol state is untouched — only the
    /// observation stream lies — so the at-most-once monitor must catch
    /// it from the trace alone.
    pub fn plant_amu_double_apply(&mut self) {
        for h in &mut self.hubs {
            h.amu.plant_double_apply();
        }
    }

    /// Drain the recorded event trace, if the tracer keeps one (`None`
    /// for [`NopTracer`]).
    pub fn take_trace_buf(&mut self) -> Option<TraceBuf> {
        self.tracer.take_buf()
    }

    /// Sample per-node occupancy (directory queue, AMU queue, link
    /// backlogs, outstanding misses) every `interval` cycles during
    /// [`run`](Self::run). The sampler piggybacks on event dispatch: the
    /// first event at or past a boundary takes the sample, so a quiet
    /// stretch of simulated time yields one catch-up tick stamped at the
    /// latest boundary. Works with any tracer, including `NopTracer`.
    pub fn enable_sampling(&mut self, interval: Cycle) {
        assert!(interval > 0, "sampling interval must be positive");
        self.sample_interval = interval;
        self.next_sample = interval;
        self.timeseries = Some(TimeSeries::new(interval, self.cfg.num_nodes() as usize));
    }

    /// The sampled time series so far, if sampling was enabled.
    pub fn timeseries(&self) -> Option<&TimeSeries> {
        self.timeseries.as_ref()
    }

    /// Take ownership of the sampled time series (disables further
    /// sampling).
    pub fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.next_sample = Cycle::MAX;
        self.timeseries.take()
    }

    fn sample_now(&mut self, when: Cycle) {
        let interval = self.sample_interval;
        let boundary = (when / interval) * interval;
        let mut per_node = Vec::with_capacity(self.hubs.len());
        for (n, hub) in self.hubs.iter().enumerate() {
            let node = NodeId(n as u16);
            let misses: usize = node
                .procs(self.cfg.procs_per_node)
                .map(|p| self.procs[p.index()].outstanding_misses())
                .sum();
            per_node.push(NodeSample {
                dir_queue: hub.directory.queued_requests() as u32,
                amu_queue: hub.amu.queue_len() as u32,
                egress_backlog: self.fabric.egress_backlog(node, when).min(u32::MAX as u64) as u32,
                ingress_backlog: self.fabric.ingress_backlog(node, when).min(u32::MAX as u64)
                    as u32,
                outstanding_misses: misses as u32,
            });
        }
        if let Some(ts) = self.timeseries.as_mut() {
            ts.push(Tick {
                when: boundary,
                events_queued: self.queue.len() as u64,
                per_node,
            });
        }
        self.next_sample = boundary + interval;
    }

    /// Dispatched-event histogram, by `Event` variant order (diagnostic:
    /// spotting event storms).
    pub fn event_histogram(&self) -> Vec<(&'static str, u64)> {
        Event::NAMES
            .iter()
            .zip(self.event_counts)
            .map(|(&name, count)| (name, count))
            .collect()
    }

    /// Enable event tracing (debugging aid; every dispatched event is
    /// recorded as a line).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Recorded trace lines, if tracing was enabled.
    pub fn trace(&self) -> &[String] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Machine-wide statistics (valid after [`Self::run`]).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Recorded `Op::Mark` timestamps, in event order.
    pub fn marks(&self) -> &[(ProcId, u32, Cycle)] {
        &self.marks
    }

    /// A node's memory backing store (for asserting final values).
    pub fn memory(&self, node: NodeId) -> &amo_dram::MemoryStore {
        &self.hubs[node.index()].memory
    }

    /// Read-only access to a processor (diagnostics/tests).
    pub fn processor(&self, p: ProcId) -> &Processor {
        &self.procs[p.index()]
    }

    /// Human-readable report of unfinished kernels and their states —
    /// the first thing to look at when a custom kernel stalls.
    pub fn stall_report(&self) -> String {
        let mut out = String::new();
        for (i, (p, inst)) in self.procs.iter().zip(&self.installed).enumerate() {
            if *inst && p.finished_at().is_none() {
                out.push_str(&format!("P{i}: {}\n", p.kstate_debug()));
            }
        }
        if out.is_empty() {
            out.push_str("all kernels finished\n");
        }
        out
    }

    /// Per-node fabric traffic.
    pub fn node_traffic(&self, node: NodeId) -> NodeTraffic {
        self.fabric.node_traffic(node)
    }

    /// Pre-initialize a word of home memory before the run (program
    /// initialization, e.g. an array lock's first granted slot).
    pub fn init_word(&mut self, addr: Addr, value: Word) {
        self.hubs[addr.home().index()]
            .memory
            .write_word(addr, value);
    }

    /// Install `kernel` on processor `p`, starting at cycle `start`
    /// (arrival skew goes here).
    pub fn install_kernel(&mut self, p: ProcId, kernel: Box<dyn Kernel>, start: Cycle) {
        self.procs[p.index()].load_kernel(kernel);
        self.installed[p.index()] = true;
        self.queue.schedule(start, Event::ProcWake(p));
    }

    /// Run until the event queue drains, `max_cycles` passes, or a
    /// typed fault aborts the run (reported in [`RunResult::error`],
    /// never a panic). Returns timing and completion information.
    pub fn run(&mut self, max_cycles: Cycle) -> RunResult {
        if P::ENABLED {
            self.prof.enter(Scope::Run);
        }
        let res = self.run_inner(max_cycles);
        if P::ENABLED {
            self.prof.exit(Scope::Run);
        }
        res
    }

    fn run_inner(&mut self, max_cycles: Cycle) -> RunResult {
        let mut events = 0u64;
        let mut hit_limit = false;
        // Outer loop refills the same-cycle batch; the inner loop
        // dispatches it back-to-front (the batch is stored reversed).
        // Events scheduled during the batch — even at the current time —
        // get later sequence numbers and drain in a later batch, so the
        // dispatch order is bit-identical to per-event popping.
        'run: loop {
            if self.batch.is_empty() {
                if P::ENABLED {
                    self.prof.enter(Scope::Drain);
                }
                let refilled = match self.queue.peek_time() {
                    None => None,
                    Some(next) if next > max_cycles => {
                        hit_limit = true;
                        None
                    }
                    Some(next) => {
                        if self.batched {
                            self.queue.pop_batch_into(&mut self.batch);
                            self.batch.reverse();
                        } else {
                            // Forced per-event path: a one-event
                            // "batch", kept for differential determinism
                            // testing against the batched drain.
                            let (_, ev) = self.queue.pop().expect("peeked event");
                            self.batch.push(ev);
                        }
                        Some(next)
                    }
                };
                if P::ENABLED {
                    self.prof.exit(Scope::Drain);
                }
                let Some(next) = refilled else {
                    break;
                };
                self.batch_when = next;
                self.clock.advance_to(next);
                if next >= self.next_sample {
                    if P::ENABLED {
                        self.prof.enter(Scope::Sample);
                    }
                    self.sample_now(next);
                    if P::ENABLED {
                        self.prof.exit(Scope::Sample);
                    }
                }
            }
            let when = self.batch_when;
            while let Some(ev) = self.batch.pop() {
                events += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.push(format!("{when}: {ev:?}"));
                }
                let idx = ev.index();
                self.event_counts[idx] += 1;
                if P::ENABLED {
                    self.prof.enter(Scope::dispatch(idx));
                }
                self.dispatch(ev, when);
                if P::ENABLED {
                    self.prof.exit(Scope::dispatch(idx));
                }
                if T::ENABLED {
                    if let Some(v) = self.tracer.take_violation() {
                        self.pending_violation = Some(v.detail);
                        self.pending_fault.get_or_insert((
                            SimErrorKind::MonitorViolation { monitor: v.monitor },
                            v.at,
                        ));
                    }
                }
                if self.pending_fault.is_some() || self.fabric.has_failure() {
                    if let Some(f) = self.fabric.take_failure() {
                        self.pending_fault.get_or_insert((
                            SimErrorKind::LinkFailed {
                                src: f.src,
                                dst: f.dst,
                                attempts: f.attempts,
                            },
                            f.at,
                        ));
                    }
                    break 'run;
                }
                if self.watchdog_window > 0 {
                    let progress = self.progress_metric();
                    if progress != self.wd_last_progress {
                        self.wd_last_progress = progress;
                        self.wd_last_progress_at = when;
                    } else if when - self.wd_last_progress_at >= self.watchdog_window {
                        self.pending_fault = Some((
                            SimErrorKind::NoProgress {
                                window: self.watchdog_window,
                                last_progress_at: self.wd_last_progress_at,
                            },
                            when,
                        ));
                        break 'run;
                    }
                }
            }
        }
        self.collect_cache_stats();
        let mut finished: Vec<Option<Cycle>> = Vec::with_capacity(self.procs.len());
        finished.extend(
            self.procs
                .iter()
                .zip(&self.installed)
                .filter(|(_, inst)| **inst)
                .map(|(p, _)| p.finished_at()),
        );
        let all_finished = finished.iter().all(|f| f.is_some());
        if self.watchdog_window > 0 && self.pending_fault.is_none() && !hit_limit && !all_finished {
            let unfinished = finished.iter().filter(|f| f.is_none()).count() as u32;
            self.pending_fault = Some((SimErrorKind::Deadlock { unfinished }, self.clock.now()));
        }
        let error = self
            .pending_fault
            .take()
            .map(|(kind, at)| self.make_error(kind, at, events));
        RunResult {
            end: self.clock.now(),
            all_finished,
            finished,
            events,
            hit_limit,
            error,
        }
    }

    /// Like [`run`](Self::run), but folds the typed fault into the
    /// return value: `Err` on an aborted run, `Ok` otherwise.
    pub fn try_run(&mut self, max_cycles: Cycle) -> Result<RunResult, Box<SimError>> {
        let mut res = self.run(max_cycles);
        match res.error.take() {
            Some(e) => Err(Box::new(e)),
            None => Ok(res),
        }
    }

    /// Monotone per-run progress indicator the watchdog watches: kernel
    /// operations retired plus active-message handlers run. Delays,
    /// spins, and in-flight coherence traffic do not count — a machine
    /// that only shuffles messages is not making progress.
    fn progress_metric(&self) -> u64 {
        self.stats.op_lat_cnt.iter().sum::<u64>() + self.stats.handlers_run
    }

    /// Harvest the diagnostic bundle for an abort at `at`.
    fn make_error(&mut self, kind: SimErrorKind, at: Cycle, events: u64) -> SimError {
        if T::ENABLED {
            self.tracer
                .record(TraceEvent::instant(TraceKind::Fault, 0, self.clock.now()).args(at, 0));
        }
        let mut queue_depths = Vec::with_capacity(self.hubs.len());
        for (n, hub) in self.hubs.iter().enumerate() {
            let node = NodeId(n as u16);
            let misses: usize = node
                .procs(self.cfg.procs_per_node)
                .map(|p| self.procs[p.index()].outstanding_misses())
                .sum();
            queue_depths.push(NodeDepths {
                dir_queue: hub.directory.queued_requests() as u32,
                amu_queue: hub.amu.queue_len() as u32,
                outstanding_misses: misses as u32,
            });
        }
        SimError {
            kind,
            at,
            bundle: DiagBundle {
                stall_report: self.stall_report(),
                queue_depths,
                trace: self.tracer.take_buf(),
                events_processed: events,
                critpath: None,
                retx_schedule: self.pending_retx.take(),
                violation: self.pending_violation.take(),
            },
        }
    }

    fn collect_cache_stats(&mut self) {
        let (mut h1, mut m1, mut h2, mut m2) = (0, 0, 0, 0);
        for p in &self.procs {
            let (a, b, c, d) = p.caches().hit_stats();
            h1 += a;
            m1 += b;
            h2 += c;
            m2 += d;
        }
        self.stats.l1_hits = h1;
        self.stats.l1_misses = m1;
        self.stats.l2_hits = h2;
        self.stats.l2_misses = m2;
    }

    fn node_of(&self, p: ProcId) -> NodeId {
        p.node(self.cfg.procs_per_node)
    }

    fn dispatch(&mut self, ev: Event, now: Cycle) {
        if !T::ENABLED {
            return self.dispatch_inner(ev, now);
        }
        // Directory transactions retire deep inside the dispatch of the
        // node-bearing events below; `record_op`-style hooks can't see
        // them, so detect retirement by the stats delta and stamp an
        // instant (with the node's remaining open-transaction count).
        let ev_node = match &ev {
            Event::ToHub(n, _)
            | Event::DirProcess(n, _)
            | Event::DramDone(n, _)
            | Event::AmuWake(n)
            | Event::AmuMemValue(n, _, _)
            | Event::AmuSend(n, _, _) => Some(*n),
            _ => None,
        };
        let txn_before = self.stats.dir_transactions;
        self.dispatch_inner(ev, now);
        if P::ENABLED {
            self.prof.enter(Scope::TracerHooks);
        }
        if let Some(node) = ev_node {
            let retired = self.stats.dir_transactions - txn_before;
            if retired > 0 {
                let open = self.hubs[node.index()].directory.open_transactions() as u64;
                for _ in 0..retired {
                    self.tracer.record(
                        TraceEvent::instant(TraceKind::DirTxnEnd, node.0, now).args(open, 0),
                    );
                }
            }
            // Drain the semantic protocol events the node's components
            // logged during this dispatch: true AMU applies (never
            // dedup replays) and directory idle reclaims. These feed
            // the `amo-verify` monitors.
            let mut applies = std::mem::take(&mut self.apply_buf);
            self.hubs[node.index()].amu.drain_applies_into(&mut applies);
            for (req, proc, addr, pre) in applies.drain(..) {
                self.tracer.record(
                    TraceEvent::instant(TraceKind::AmuApply, node.0, now)
                        .on_proc(proc.0)
                        .args(addr.0, pre)
                        .flow(req.flow()),
                );
            }
            self.apply_buf = applies;
            let mut reclaims = std::mem::take(&mut self.reclaim_buf);
            self.hubs[node.index()]
                .directory
                .drain_reclaims_into(&mut reclaims);
            for (block, idle) in reclaims.drain(..) {
                self.tracer.record(
                    TraceEvent::instant(TraceKind::DirReclaim, node.0, now)
                        .args(block.0, idle as u64),
                );
            }
            self.reclaim_buf = reclaims;
        }
        if P::ENABLED {
            self.prof.exit(Scope::TracerHooks);
        }
    }

    fn dispatch_inner(&mut self, ev: Event, now: Cycle) {
        match ev {
            Event::ProcWake(p) => {
                let mut eff = self.proc_eff_pool.pop().unwrap_or_default();
                self.procs[p.index()].step_into(now, &mut self.stats, &mut eff);
                self.run_proc_effects(p, &mut eff, now);
                self.proc_eff_pool.push(eff);
            }
            Event::ProcHandlerDone(p) => {
                let mut eff = self.proc_eff_pool.pop().unwrap_or_default();
                self.procs[p.index()].handler_done_into(now, &mut self.stats, &mut eff);
                self.run_proc_effects(p, &mut eff, now);
                self.proc_eff_pool.push(eff);
                // The kernel may have been blocked behind the handler.
                self.queue.schedule(now, Event::ProcWake(p));
            }
            Event::ProcTimeout(p, req, kind) => {
                let fired_before = self.stats.e2e_timeouts;
                let mut eff = self.proc_eff_pool.pop().unwrap_or_default();
                self.procs[p.index()].timeout_into(req, kind, now, &mut self.stats, &mut eff);
                if T::ENABLED && self.stats.e2e_timeouts > fired_before {
                    let attempt = match kind {
                        TimerKind::E2e { attempt } => attempt as u64,
                        TimerKind::Retry => 0,
                    };
                    self.tracer.record(
                        TraceEvent::instant(TraceKind::E2eTimeout, self.node_of(p).0, now)
                            .on_proc(p.0)
                            .args(p.0 as u64, attempt)
                            .flow(req.flow()),
                    );
                }
                self.run_proc_effects(p, &mut eff, now);
                self.proc_eff_pool.push(eff);
            }
            Event::ProcWordUpdate(p, addr, value) => {
                if T::ENABLED {
                    self.tracer.record(
                        TraceEvent::instant(TraceKind::ProcRecv, self.node_of(p).0, now)
                            .on_proc(p.0)
                            .class(MsgClass::WordUpdate.index()),
                    );
                }
                let mut eff = self.proc_eff_pool.pop().unwrap_or_default();
                self.procs[p.index()].word_update_into(addr, value, now, &mut self.stats, &mut eff);
                self.run_proc_effects(p, &mut eff, now);
                self.proc_eff_pool.push(eff);
            }
            Event::ToHub(node, payload) => {
                if T::ENABLED {
                    self.tracer.record(
                        TraceEvent::instant(TraceKind::MsgRecv, node.0, now)
                            .class(payload.class().index())
                            .flow(flow_of(&payload)),
                    );
                }
                self.hub_receive(node, payload, now)
            }
            Event::DirProcess(node, payload) => self.dir_process(node, payload, now),
            Event::DramDone(node, block) => {
                let words = self.cfg.l2.line_words();
                let data = self.hubs[node.index()].memory.read_block(block, words);
                let mut actions = self.dir_act_pool.pop().unwrap_or_default();
                if P::ENABLED {
                    self.prof.enter(Scope::DirProtocol);
                }
                self.hubs[node.index()].directory.dram_done_into(
                    block,
                    data,
                    &mut self.stats,
                    &mut actions,
                );
                if P::ENABLED {
                    self.prof.exit(Scope::DirProtocol);
                }
                self.run_dir_actions(node, &mut actions, now);
                self.dir_act_pool.push(actions);
            }
            Event::AmuWake(node) => {
                let mut eff = self.amu_eff_pool.pop().unwrap_or_default();
                if P::ENABLED {
                    self.prof.enter(Scope::AmuExec);
                }
                self.hubs[node.index()]
                    .amu
                    .advance_into(now, &mut self.stats, &mut eff);
                if P::ENABLED {
                    self.prof.exit(Scope::AmuExec);
                }
                self.run_amu_effects(node, &mut eff, now);
                self.amu_eff_pool.push(eff);
            }
            Event::AmuMemValue(node, token, addr) => {
                if P::ENABLED {
                    self.prof.enter(Scope::AmuExec);
                }
                let value = self.hubs[node.index()].memory.read_word(addr);
                let mut eff = self.amu_eff_pool.pop().unwrap_or_default();
                if let Err(err) = self.hubs[node.index()].amu.mem_value_into(
                    token,
                    value,
                    now,
                    &mut self.stats,
                    &mut eff,
                ) {
                    self.pending_fault
                        .get_or_insert((SimErrorKind::AmuProtocol { node, err }, now));
                }
                if P::ENABLED {
                    self.prof.exit(Scope::AmuExec);
                }
                self.run_amu_effects(node, &mut eff, now);
                self.amu_eff_pool.push(eff);
            }
            Event::AmuSend(node, proc, payload) => {
                self.send_to_proc(node, proc, payload, now);
            }
            Event::ToProc(p, payload) => {
                if T::ENABLED {
                    self.tracer.record(
                        TraceEvent::instant(TraceKind::ProcRecv, self.node_of(p).0, now)
                            .on_proc(p.0)
                            .class(payload.class().index())
                            .flow(flow_of(&payload)),
                    );
                }
                let mut eff = self.proc_eff_pool.pop().unwrap_or_default();
                self.procs[p.index()].handle_into(payload, now, &mut self.stats, &mut eff);
                self.run_proc_effects(p, &mut eff, now);
                self.proc_eff_pool.push(eff);
            }
        }
    }

    /// Dispatch one operation to a node's AMU, or NACK it back to the
    /// requester when the unit cannot take it: the dispatch queue is
    /// full, or the node is inside an injected brown-out window. The
    /// requester backs off and resends the same request (same `ReqId`),
    /// so no operation is ever lost — only delayed.
    fn submit_amu(
        &mut self,
        node: NodeId,
        req: ReqId,
        requester: ProcId,
        class: MsgClass,
        op: amo_amu::AmuOp,
        now: Cycle,
    ) {
        let browned = self.faults.brownouts_enabled() && self.faults.amu_browned_out(node.0, now);
        let ok = !browned && {
            let mut eff = self.amu_eff_pool.pop().unwrap_or_default();
            if P::ENABLED {
                self.prof.enter(Scope::AmuExec);
            }
            let ok = self.hubs[node.index()]
                .amu
                .submit_into(op, now, &mut self.stats, &mut eff);
            if P::ENABLED {
                self.prof.exit(Scope::AmuExec);
            }
            self.run_amu_effects(node, &mut eff, now);
            self.amu_eff_pool.push(eff);
            ok
        };
        if !ok {
            if browned {
                self.stats.amu_brownout_nacks += 1;
            } else {
                self.stats.amu_nacks += 1;
            }
            if T::ENABLED {
                self.tracer.record(
                    TraceEvent::instant(TraceKind::AmuNack, node.0, now)
                        .args(requester.0 as u64, browned as u64)
                        .flow(req.flow()),
                );
            }
            self.send_to_proc(node, requester, Payload::AmuNack { req, class }, now);
        }
    }

    /// Route a message that just arrived at a hub's network interface.
    fn hub_receive(&mut self, node: NodeId, payload: Payload, now: Cycle) {
        let class = payload.class();
        match payload {
            // Directory-bound traffic goes through the service pipeline.
            Payload::GetS { .. }
            | Payload::GetX { .. }
            | Payload::Upgrade { .. }
            | Payload::Writeback { .. }
            | Payload::InvAck { .. }
            | Payload::InterventionReply { .. } => {
                let occ = Hub::dir_occupancy(&self.cfg);
                let hub = &mut self.hubs[node.index()];
                let start = now.max(hub.dir_free);
                hub.dir_free = start + occ;
                if T::ENABLED {
                    self.tracer.record(
                        TraceEvent::span(TraceKind::DirService, node.0, start, start + occ)
                            .class(payload.class().index())
                            .flow(flow_of(&payload)),
                    );
                }
                self.queue
                    .schedule(start + occ, Event::DirProcess(node, payload));
            }
            // AMU-bound traffic.
            Payload::AmoReq {
                req,
                requester,
                kind,
                addr,
                operand,
                test,
            } => {
                let op = amo_amu::AmuOp::Amo {
                    req,
                    requester,
                    kind,
                    addr,
                    operand,
                    test,
                };
                self.submit_amu(node, req, requester, class, op, now);
            }
            Payload::MaoReq {
                req,
                requester,
                kind,
                addr,
                operand,
            } => {
                let op = amo_amu::AmuOp::Mao {
                    req,
                    requester,
                    kind,
                    addr,
                    operand,
                };
                self.submit_amu(node, req, requester, class, op, now);
            }
            Payload::UncachedRead {
                req,
                requester,
                addr,
            } => {
                let op = amo_amu::AmuOp::UncachedRead {
                    req,
                    requester,
                    addr,
                };
                self.submit_amu(node, req, requester, class, op, now);
            }
            Payload::UncachedWrite {
                req,
                requester,
                addr,
                value,
            } => {
                let op = amo_amu::AmuOp::UncachedWrite {
                    req,
                    requester,
                    addr,
                    value,
                };
                self.submit_amu(node, req, requester, class, op, now);
            }
            // Processor-bound traffic crossing this hub.
            Payload::ActiveMsg { target_proc, .. } => {
                assert_eq!(self.node_of(target_proc), node, "active message misrouted");
                self.queue.schedule(
                    now + self.cfg.bus_latency,
                    Event::ToProc(target_proc, payload),
                );
            }
            Payload::ActMsgAck { req, .. } => {
                // The requester's id is encoded in the high bits of the
                // request tag it allocated.
                let proc = ProcId((req.0 >> 48) as u16);
                assert_eq!(self.node_of(proc), node, "ack misrouted");
                self.queue
                    .schedule(now + self.cfg.bus_latency, Event::ToProc(proc, payload));
            }
            // Fine-grained update fanout landing on this node.
            Payload::WordUpdate { addr, value } => {
                self.hubs[node.index()].rac.push_update(addr, value);
                for p in node.procs(self.cfg.procs_per_node) {
                    self.queue.schedule(
                        now + self.cfg.bus_latency,
                        Event::ProcWordUpdate(p, addr, value),
                    );
                }
            }
            _ => {
                self.pending_fault
                    .get_or_insert((SimErrorKind::UnexpectedPayload { at: "hub", node }, now));
            }
        }
    }

    /// A directory-bound message cleared the occupancy pipeline.
    fn dir_process(&mut self, node: NodeId, payload: Payload, now: Cycle) {
        let mut actions = self.dir_act_pool.pop().unwrap_or_default();
        if P::ENABLED {
            self.prof.enter(Scope::DirProtocol);
        }
        let hub = &mut self.hubs[node.index()];
        match payload {
            Payload::GetS {
                req,
                requester,
                block,
            } => hub.directory.request_into(
                block,
                DirRequest::GetS { req, requester },
                &mut self.stats,
                &mut actions,
            ),
            Payload::GetX {
                req,
                requester,
                block,
            } => hub.directory.request_into(
                block,
                DirRequest::GetX { req, requester },
                &mut self.stats,
                &mut actions,
            ),
            Payload::Upgrade {
                req,
                requester,
                block,
            } => hub.directory.request_into(
                block,
                DirRequest::Upgrade { req, requester },
                &mut self.stats,
                &mut actions,
            ),
            Payload::Writeback {
                requester,
                block,
                data,
            } => {
                hub.directory
                    .writeback_into(block, requester, data, &mut self.stats, &mut actions)
            }
            Payload::InvAck { block, from } => {
                hub.directory
                    .inv_ack_into(block, from, &mut self.stats, &mut actions)
            }
            Payload::InterventionReply { block, from, resp } => hub
                .directory
                .intervention_reply_into(block, from, resp, &mut self.stats, &mut actions),
            _ => {
                self.pending_fault.get_or_insert((
                    SimErrorKind::UnexpectedPayload {
                        at: "directory",
                        node,
                    },
                    now,
                ));
            }
        }
        if P::ENABLED {
            self.prof.exit(Scope::DirProtocol);
        }
        self.run_dir_actions(node, &mut actions, now);
        self.dir_act_pool.push(actions);
    }

    fn run_dir_actions(&mut self, node: NodeId, actions: &mut Vec<DirAction>, now: Cycle) {
        if P::ENABLED {
            self.prof.enter(Scope::DirProtocol);
        }
        for action in actions.drain(..) {
            match action {
                DirAction::ToProc { proc, payload } => {
                    self.send_to_proc(node, proc, payload, now);
                }
                DirAction::WordUpdateToNode {
                    node: dst,
                    addr,
                    value,
                    flow,
                } => {
                    let payload = Payload::WordUpdate { addr, value };
                    let retx = if T::ENABLED {
                        (
                            self.stats.link_retransmissions,
                            self.stats.link_replay_cycles,
                        )
                    } else {
                        (0, 0)
                    };
                    if P::ENABLED {
                        self.prof.enter(Scope::NocSend);
                    }
                    let arrival = self.fabric.send(
                        now,
                        node,
                        dst,
                        &payload,
                        MsgEndpoint::Hub,
                        &mut self.stats,
                    );
                    if P::ENABLED {
                        self.prof.exit(Scope::NocSend);
                    }
                    if T::ENABLED {
                        self.trace_link_retry(node, now, retx);
                        let bytes = payload.size_bytes(&self.cfg.network);
                        self.tracer.record(
                            TraceEvent::span(TraceKind::MsgSend, node.0, now, arrival)
                                .class(payload.class().index())
                                .args(
                                    dst.0 as u64,
                                    self.fabric.zero_load_latency(node, dst, bytes),
                                )
                                .flow(flow),
                        );
                    }
                    self.queue.schedule(arrival, Event::ToHub(dst, payload));
                }
                DirAction::ReadDram { block } => {
                    let done = self.hubs[node.index()].dram.access(now, block);
                    self.queue.schedule(done, Event::DramDone(node, block));
                }
                DirAction::WriteDramWord { addr, value } => {
                    let hub = &mut self.hubs[node.index()];
                    hub.memory.write_word(addr, value);
                    hub.dram.access(now, addr.block(self.cfg.l2.line_bytes));
                }
                DirAction::WriteDramBlock { block, data } => {
                    let hub = &mut self.hubs[node.index()];
                    hub.memory.write_block(block, &data);
                    hub.dram.access(now, block);
                }
                DirAction::FlushAmu { block } => {
                    let dirty = self.hubs[node.index()].amu.flush_block(block);
                    for (addr, value) in dirty {
                        self.hubs[node.index()].memory.write_word(addr, value);
                    }
                }
                DirAction::FineValue { token, addr, value } => {
                    let mut eff = self.amu_eff_pool.pop().unwrap_or_default();
                    if P::ENABLED {
                        self.prof.enter(Scope::AmuExec);
                    }
                    if let Err(err) = self.hubs[node.index()].amu.fine_value_into(
                        token,
                        addr,
                        value,
                        now,
                        &mut self.stats,
                        &mut eff,
                    ) {
                        self.pending_fault
                            .get_or_insert((SimErrorKind::AmuProtocol { node, err }, now));
                    }
                    if P::ENABLED {
                        self.prof.exit(Scope::AmuExec);
                    }
                    self.run_amu_effects(node, &mut eff, now);
                    self.amu_eff_pool.push(eff);
                }
            }
        }
        if P::ENABLED {
            self.prof.exit(Scope::DirProtocol);
        }
    }

    fn run_amu_effects(&mut self, node: NodeId, effects: &mut Vec<AmuEffect>, now: Cycle) {
        if P::ENABLED {
            self.prof.enter(Scope::AmuExec);
        }
        for eff in effects.drain(..) {
            match eff {
                AmuEffect::ReplyAt {
                    when,
                    proc,
                    payload,
                } => {
                    if T::ENABLED {
                        let depth = self.hubs[node.index()].amu.queue_len() as u64;
                        self.tracer.record(
                            TraceEvent::span(TraceKind::AmuOp, node.0, now, when)
                                .on_proc(proc.0)
                                .class(payload.class().index())
                                .args(depth, 0)
                                .flow(flow_of(&payload)),
                        );
                    }
                    self.queue
                        .schedule(when, Event::AmuSend(node, proc, payload));
                }
                AmuEffect::FineGet { token, addr, .. } => {
                    let block = addr.block(self.cfg.l2.line_bytes);
                    let mut actions = self.dir_act_pool.pop().unwrap_or_default();
                    self.hubs[node.index()].directory.request_into(
                        block,
                        DirRequest::FineGet { token, addr },
                        &mut self.stats,
                        &mut actions,
                    );
                    self.run_dir_actions(node, &mut actions, now);
                    self.dir_act_pool.push(actions);
                }
                AmuEffect::FinePut { addr, value, flow } => {
                    let block = addr.block(self.cfg.l2.line_bytes);
                    let mut actions = self.dir_act_pool.pop().unwrap_or_default();
                    self.hubs[node.index()].directory.request_into(
                        block,
                        DirRequest::FinePut { addr, value, flow },
                        &mut self.stats,
                        &mut actions,
                    );
                    self.run_dir_actions(node, &mut actions, now);
                    self.dir_act_pool.push(actions);
                }
                AmuEffect::FineComplete { block, put, flow } => {
                    let mut actions = self.dir_act_pool.pop().unwrap_or_default();
                    self.hubs[node.index()].directory.fine_complete_into(
                        block,
                        put,
                        flow,
                        &mut self.stats,
                        &mut actions,
                    );
                    self.run_dir_actions(node, &mut actions, now);
                    self.dir_act_pool.push(actions);
                }
                AmuEffect::ReadMemWord { token, addr } => {
                    let done = self.hubs[node.index()]
                        .dram
                        .access(now, addr.block(self.cfg.l2.line_bytes));
                    self.queue
                        .schedule(done, Event::AmuMemValue(node, token, addr));
                }
                AmuEffect::WriteMemWord { addr, value } => {
                    let hub = &mut self.hubs[node.index()];
                    hub.memory.write_word(addr, value);
                    hub.dram.access(now, addr.block(self.cfg.l2.line_bytes));
                }
                AmuEffect::WakeAt { when } => {
                    self.queue.schedule(when, Event::AmuWake(node));
                }
            }
        }
        if P::ENABLED {
            self.prof.exit(Scope::AmuExec);
        }
    }

    /// Emit a [`TraceKind::LinkRetry`] instant if the send that just
    /// completed consumed link replays, detected by the counter delta
    /// against `before` = `(link_retransmissions, link_replay_cycles)`
    /// sampled before the send. Traced-build only.
    fn trace_link_retry(&mut self, node: NodeId, now: Cycle, before: (u64, u64)) {
        let retx = self.stats.link_retransmissions - before.0;
        if retx > 0 {
            let cycles = self.stats.link_replay_cycles - before.1;
            self.tracer
                .record(TraceEvent::instant(TraceKind::LinkRetry, node.0, now).args(retx, cycles));
        }
    }

    /// Send a hub-originated message to a processor: fabric to its node,
    /// then the bus.
    fn send_to_proc(&mut self, from: NodeId, proc: ProcId, payload: Payload, now: Cycle) {
        let dst = self.node_of(proc);
        let retx = if T::ENABLED {
            (
                self.stats.link_retransmissions,
                self.stats.link_replay_cycles,
            )
        } else {
            (0, 0)
        };
        if P::ENABLED {
            self.prof.enter(Scope::NocSend);
        }
        let delivery =
            self.fabric
                .send_delivery(now, from, dst, &payload, MsgEndpoint::Proc, &mut self.stats);
        if P::ENABLED {
            self.prof.exit(Scope::NocSend);
        }
        let arrival = delivery.primary();
        if T::ENABLED {
            self.trace_link_retry(from, now, retx);
            let bytes = payload.size_bytes(&self.cfg.network);
            self.tracer.record(
                TraceEvent::span(TraceKind::MsgSend, from.0, now, arrival)
                    .class(payload.class().index())
                    .args(
                        dst.0 as u64,
                        self.fabric.zero_load_latency(from, dst, bytes),
                    )
                    .flow(flow_of(&payload)),
            );
        }
        match delivery {
            Delivery::One(arrival) => {
                self.queue
                    .schedule(arrival + self.cfg.bus_latency, Event::ToProc(proc, payload));
            }
            Delivery::Dropped(arrival) => {
                if T::ENABLED {
                    self.tracer.record(
                        TraceEvent::instant(TraceKind::MsgDrop, dst.0, arrival)
                            .class(payload.class().index())
                            .args(from.0 as u64, 0)
                            .flow(flow_of(&payload)),
                    );
                }
            }
            Delivery::Dup(first, second) => {
                if T::ENABLED {
                    self.tracer.record(
                        TraceEvent::instant(TraceKind::MsgDup, dst.0, second)
                            .class(payload.class().index())
                            .args(from.0 as u64, 0)
                            .flow(flow_of(&payload)),
                    );
                }
                self.queue.schedule(
                    first + self.cfg.bus_latency,
                    Event::ToProc(proc, payload.clone()),
                );
                self.queue
                    .schedule(second + self.cfg.bus_latency, Event::ToProc(proc, payload));
            }
        }
    }

    fn run_proc_effects(&mut self, p: ProcId, effects: &mut Vec<ProcEffect>, now: Cycle) {
        let src = self.node_of(p);
        for eff in effects.drain(..) {
            match eff {
                ProcEffect::Send { dst, payload } => {
                    let t = now + self.cfg.bus_latency;
                    let retx = if T::ENABLED {
                        (
                            self.stats.link_retransmissions,
                            self.stats.link_replay_cycles,
                        )
                    } else {
                        (0, 0)
                    };
                    if P::ENABLED {
                        self.prof.enter(Scope::NocSend);
                    }
                    let delivery = self.fabric.send_delivery(
                        t,
                        src,
                        dst,
                        &payload,
                        MsgEndpoint::Proc,
                        &mut self.stats,
                    );
                    if P::ENABLED {
                        self.prof.exit(Scope::NocSend);
                    }
                    let arrival = delivery.primary();
                    if T::ENABLED {
                        self.trace_link_retry(src, t, retx);
                        let bytes = payload.size_bytes(&self.cfg.network);
                        self.tracer.record(
                            TraceEvent::span(TraceKind::MsgSend, src.0, t, arrival)
                                .on_proc(p.0)
                                .class(payload.class().index())
                                .args(dst.0 as u64, self.fabric.zero_load_latency(src, dst, bytes))
                                .flow(flow_of(&payload))
                                .parent(self.procs[p.index()].flow_parent(&payload)),
                        );
                    }
                    match delivery {
                        Delivery::One(arrival) => {
                            self.queue.schedule(arrival, Event::ToHub(dst, payload));
                        }
                        Delivery::Dropped(arrival) => {
                            if T::ENABLED {
                                self.tracer.record(
                                    TraceEvent::instant(TraceKind::MsgDrop, dst.0, arrival)
                                        .class(payload.class().index())
                                        .args(src.0 as u64, 0)
                                        .flow(flow_of(&payload)),
                                );
                            }
                        }
                        Delivery::Dup(first, second) => {
                            if T::ENABLED {
                                self.tracer.record(
                                    TraceEvent::instant(TraceKind::MsgDup, dst.0, second)
                                        .class(payload.class().index())
                                        .args(src.0 as u64, 0)
                                        .flow(flow_of(&payload)),
                                );
                            }
                            self.queue
                                .schedule(first, Event::ToHub(dst, payload.clone()));
                            self.queue.schedule(second, Event::ToHub(dst, payload));
                        }
                    }
                }
                ProcEffect::Wake { when } => {
                    self.queue.schedule(when, Event::ProcWake(p));
                }
                ProcEffect::HandlerWake { when } => {
                    self.queue.schedule(when, Event::ProcHandlerDone(p));
                }
                ProcEffect::TimeoutAt { req, when, kind } => {
                    self.queue.schedule(when, Event::ProcTimeout(p, req, kind));
                }
                ProcEffect::Finished { when } => {
                    if T::ENABLED {
                        self.tracer.record(
                            TraceEvent::instant(TraceKind::KernelDone, src.0, when).on_proc(p.0),
                        );
                    }
                    self.finished[p.index()] = Some(when);
                }
                ProcEffect::Mark { id, when } => {
                    if T::ENABLED {
                        self.tracer.record(
                            TraceEvent::instant(TraceKind::Mark, src.0, when)
                                .on_proc(p.0)
                                .args(id as u64, 0),
                        );
                    }
                    self.marks.push((p, id, when));
                }
                ProcEffect::Defer { payload, when } => {
                    self.queue.schedule(when, Event::ToProc(p, payload));
                }
                ProcEffect::Fault { kind, when } => {
                    let kind = match kind {
                        ProcFault::ActMsgStarved { attempts } => {
                            SimErrorKind::ActMsgStarved { proc: p, attempts }
                        }
                        ProcFault::AmuStarved { attempts } => {
                            SimErrorKind::AmuStarved { proc: p, attempts }
                        }
                        ProcFault::RequestTimedOut { req, attempts } => {
                            // Satellite diagnosability: a timeout
                            // counterexample carries the exact backoff
                            // schedule the requester executed, so nobody
                            // has to re-derive the policy from config.
                            let timeout = self.cfg.faults.e2e_timeout;
                            let delays = Processor::e2e_retx_schedule(req, attempts, timeout);
                            let mut s = format!(
                                "req {:#x} from {p}: {attempts} e2e retransmissions \
                                 (timeout base {timeout}); per-attempt backoff cycles: ",
                                req.0
                            );
                            for (i, d) in delays.iter().enumerate() {
                                if i > 0 {
                                    s.push_str(", ");
                                }
                                s.push_str(&d.to_string());
                            }
                            if self.taped {
                                s.push_str(" (hashed-mode schedule; run was tape-driven)");
                            }
                            self.pending_retx = Some(s);
                            SimErrorKind::RequestTimedOut { proc: p, attempts }
                        }
                    };
                    self.pending_fault.get_or_insert((kind, when));
                }
                ProcEffect::OpDone {
                    class,
                    start,
                    end,
                    flow,
                } => {
                    // Only emitted when op tracing is on (see
                    // `with_tracer`), but keep the arm unconditional so
                    // the match stays exhaustive.
                    if T::ENABLED {
                        self.tracer.record(
                            TraceEvent::span(TraceKind::OpComplete, src.0, start, end)
                                .on_proc(p.0)
                                .class(class.index())
                                .flow(flow),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_cpu::{Op, Outcome};
    use amo_types::{AmoKind, SpinPred};

    fn var(node: u16, off: u64) -> Addr {
        Addr::on_node(NodeId(node), off)
    }

    /// Simple scripted kernel: runs a fixed list of ops, records outcomes.
    struct Script {
        ops: Vec<Op>,
        at: usize,
        outcomes: std::rc::Rc<std::cell::RefCell<Vec<Outcome>>>,
    }

    impl Script {
        fn new(ops: Vec<Op>) -> (Self, std::rc::Rc<std::cell::RefCell<Vec<Outcome>>>) {
            let outcomes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            (
                Script {
                    ops,
                    at: 0,
                    outcomes: outcomes.clone(),
                },
                outcomes,
            )
        }
    }

    impl Kernel for Script {
        fn next(&mut self, last: Option<Outcome>) -> Op {
            if let Some(o) = last {
                self.outcomes.borrow_mut().push(o);
            }
            let op = self.ops.get(self.at).copied().unwrap_or(Op::Done);
            self.at += 1;
            op
        }
    }

    #[test]
    fn traced_run_records_events_and_samples() {
        use amo_obs::{RingTracer, TraceKind};
        let mut m = Machine::with_tracer(
            SystemConfig::with_procs(4),
            QueueKind::Calendar,
            RingTracer::new(1 << 16),
        );
        m.enable_sampling(100);
        let a = var(1, 0x100);
        let (w, _) = Script::new(vec![Op::Store { addr: a, value: 7 }]);
        m.install_kernel(ProcId(0), Box::new(w), 0);
        let (r, _) = Script::new(vec![Op::Delay { cycles: 2_000 }, Op::Load { addr: a }]);
        m.install_kernel(ProcId(3), Box::new(r), 0);
        let res = m.run(1_000_000);
        assert!(res.all_finished);
        let buf = m.take_trace_buf().expect("ring tracer keeps a buffer");
        assert_eq!(buf.dropped, 0);
        let kinds: Vec<TraceKind> = buf.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::MsgSend));
        assert!(kinds.contains(&TraceKind::MsgRecv));
        assert!(kinds.contains(&TraceKind::DirService));
        assert!(kinds.contains(&TraceKind::DirTxnEnd));
        assert!(kinds.contains(&TraceKind::OpComplete));
        assert!(kinds.contains(&TraceKind::KernelDone));
        let ts = m.take_timeseries().expect("sampling was enabled");
        assert!(!ts.ticks.is_empty());
        assert!(ts.ticks.windows(2).all(|w| w[0].when < w[1].when));
    }

    #[test]
    fn traced_and_plain_runs_produce_identical_stats() {
        use amo_obs::RingTracer;
        fn drive<T: amo_obs::Tracer>(mut m: Machine<T>) -> (Cycle, String) {
            for p in 0..8u16 {
                let a = var(p % 2, 0x40 * (p as u64 + 1));
                let (k, _) = Script::new(vec![
                    Op::Store {
                        addr: a,
                        value: p as u64,
                    };
                    3
                ]);
                m.install_kernel(ProcId(p), Box::new(k), 0);
            }
            let res = m.run(1_000_000);
            assert!(res.all_finished);
            (res.end, format!("{:?}", m.stats()))
        }
        let plain = drive(Machine::new(SystemConfig::with_procs(8)));
        let traced = drive(Machine::with_tracer(
            SystemConfig::with_procs(8),
            QueueKind::Calendar,
            RingTracer::new(1 << 12),
        ));
        assert_eq!(plain, traced, "tracing must not perturb timing");
    }

    #[test]
    fn dispatch_scope_names_match_event_names() {
        // The hostprof dispatch scopes are declared in amo-obs, blind to
        // this crate's private Event enum; this pins the correspondence
        // (count, order, and names) so neither side can drift.
        assert_eq!(amo_obs::hostprof::DISPATCH_SCOPES, Event::COUNT);
        for (i, name) in Event::NAMES.iter().enumerate() {
            assert_eq!(
                Scope::dispatch(i).name(),
                format!("dispatch:{name}"),
                "dispatch scope {i} does not match event variant {name}"
            );
        }
    }

    #[test]
    fn profiled_and_plain_runs_produce_identical_machines() {
        use amo_obs::hostprof::HostProfiler;
        fn drive<P: HostProf>(
            mut m: Machine<NopTracer, P>,
        ) -> (Cycle, u64, String, Machine<NopTracer, P>) {
            for p in 0..8u16 {
                let a = var(p % 2, 0x40 * (p as u64 + 1));
                let (k, _) = Script::new(vec![
                    Op::AtomicRmw {
                        kind: AmoKind::FetchAdd,
                        addr: a,
                        operand: 1,
                    };
                    3
                ]);
                m.install_kernel(ProcId(p), Box::new(k), 0);
            }
            let res = m.run(1_000_000);
            assert!(res.all_finished);
            let stats = format!("{:?}", m.stats());
            (res.end, res.events, stats, m)
        }
        let (pe, pn, ps, _) = drive(Machine::new(SystemConfig::with_procs(8)));
        let (qe, qn, qs, mut m) = drive(Machine::with_parts(
            SystemConfig::with_procs(8),
            QueueKind::Calendar,
            NopTracer,
            HostProfiler::new(),
        ));
        assert_eq!((pe, pn, ps), (qe, qn, qs), "profiling must be passive");
        let report = m.take_hostprof().expect("profiler keeps a report");
        // Every dispatched event was wrapped in exactly one dispatch
        // scope entry.
        let dispatch_count: u64 = report
            .scopes
            .iter()
            .filter(|s| s.scope.is_dispatch())
            .map(|s| s.count)
            .sum();
        assert_eq!(dispatch_count, qn, "one dispatch scope entry per event");
        // The run scope is the single root, and self-times telescope to
        // the profiled wall-clock within rounding.
        let run = report
            .scopes
            .iter()
            .find(|s| s.scope == Scope::Run)
            .expect("run scope present");
        assert_eq!(run.count, 1);
        assert_eq!(report.wall_ns, run.total_ns);
        let self_sum: u64 = report
            .scopes
            .iter()
            .map(amo_obs::hostprof::ScopeReport::self_ns)
            .sum();
        let tolerance = (report.wall_ns / 1000).max(10_000);
        assert!(
            self_sum.abs_diff(report.wall_ns) <= tolerance,
            "self-time sum {self_sum} vs wall {}",
            report.wall_ns
        );
    }

    #[test]
    fn store_then_remote_load_sees_value() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let a = var(1, 0x100);
        let (w, _) = Script::new(vec![Op::Store { addr: a, value: 42 }]);
        m.install_kernel(ProcId(0), Box::new(w), 0);
        let (r, out) = Script::new(vec![Op::Delay { cycles: 5_000 }, Op::Load { addr: a }]);
        m.install_kernel(ProcId(3), Box::new(r), 0);
        let res = m.run(1_000_000);
        assert!(res.all_finished, "finished: {:?}", res.finished);
        assert_eq!(out.borrow()[1], Outcome::Value(42));
        // The store's dirty block is fetched from P0 via an intervention.
        assert_eq!(m.stats().interventions_sent, 1);
    }

    #[test]
    fn two_writers_serialize_through_home() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let a = var(0, 0x100);
        for p in [0u16, 1, 2, 3] {
            let (k, _) = Script::new(vec![Op::AtomicRmw {
                kind: AmoKind::FetchAdd,
                addr: a,
                operand: 1,
            }]);
            m.install_kernel(ProcId(p), Box::new(k), 0);
        }
        let res = m.run(1_000_000);
        assert!(res.all_finished);
        // All four increments are visible in home memory after the dust
        // settles? The final value lives in the last owner's cache; memory
        // holds the value as of the last ownership transfer (3 increments).
        // Force visibility through stats instead: four atomic ops ran.
        assert_eq!(m.stats().atomic_ops, 4);
    }

    #[test]
    fn spin_wakes_via_invalidate_and_reload() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let flag = var(0, 0x200);
        let (spinner, out) = Script::new(vec![Op::SpinUntil {
            addr: flag,
            pred: SpinPred::Eq(1),
        }]);
        m.install_kernel(ProcId(2), Box::new(spinner), 0);
        let (setter, _) = Script::new(vec![
            Op::Delay { cycles: 10_000 },
            Op::Store {
                addr: flag,
                value: 1,
            },
        ]);
        m.install_kernel(ProcId(1), Box::new(setter), 0);
        let res = m.run(1_000_000);
        assert!(res.all_finished);
        assert_eq!(out.borrow()[0], Outcome::SpinDone(1));
        assert!(
            m.stats().spin_reloads >= 1,
            "spinner reloaded after invalidation"
        );
        assert!(m.stats().invalidations_sent >= 1);
    }

    #[test]
    fn amo_inc_counts_all_processors_and_pushes_update() {
        let cfg = SystemConfig::with_procs(4);
        let mut m = Machine::new(cfg);
        let ctr = var(0, 0x300);
        for p in 0..4u16 {
            // Every processor: amo.inc with test 4, then spin on the
            // counter — the naive AMO barrier (paper Fig. 3(c)).
            let (k, _) = Script::new(vec![
                Op::Amo {
                    kind: AmoKind::Inc,
                    addr: ctr,
                    operand: 0,
                    test: Some(4),
                },
                Op::SpinUntil {
                    addr: ctr,
                    pred: SpinPred::Eq(4),
                },
            ]);
            m.install_kernel(ProcId(p), Box::new(k), (p as u64) * 50);
        }
        let res = m.run(2_000_000);
        assert!(res.all_finished, "finished: {:?}", res.finished);
        assert_eq!(m.stats().amo_ops, 4);
        assert_eq!(m.stats().puts, 1, "exactly one delayed put at count 4");
        assert_eq!(m.memory(NodeId(0)).read_word(ctr), 4);
        // No invalidation storm: the AMO path never invalidates spinners.
        assert_eq!(m.stats().invalidations_sent, 0);
    }

    #[test]
    fn mao_fetchadd_accumulates_in_memory() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let ctr = var(1, 0x400);
        for p in 0..4u16 {
            let (k, _) = Script::new(vec![Op::Mao {
                kind: AmoKind::FetchAdd,
                addr: ctr,
                operand: 10,
            }]);
            m.install_kernel(ProcId(p), Box::new(k), 0);
        }
        let res = m.run(1_000_000);
        assert!(res.all_finished);
        assert_eq!(m.memory(NodeId(1)).read_word(ctr), 40);
        assert_eq!(m.stats().mao_ops, 4);
    }

    #[test]
    fn active_message_barrier_publish_wakes_spinners() {
        let cfg = SystemConfig::with_procs(4);
        let mut m = Machine::new(cfg);
        let home = NodeId(0);
        let spin = var(0, 0x500);
        for p in 0..4u16 {
            let (k, _) = Script::new(vec![
                Op::ActiveMsg {
                    home,
                    handler: amo_types::HandlerKind::FetchAdd {
                        ctr: 0,
                        operand: 1,
                        publish: Some(amo_types::Publish {
                            addr: spin,
                            when_count: Some(4),
                            value: Some(1),
                            reset: true,
                        }),
                    },
                },
                Op::SpinUntil {
                    addr: spin,
                    pred: SpinPred::Eq(1),
                },
            ]);
            m.install_kernel(ProcId(p), Box::new(k), (p as u64) * 100);
        }
        let res = m.run(5_000_000);
        assert!(res.all_finished, "finished: {:?}", res.finished);
        assert_eq!(m.stats().handlers_run, 4);
        // The publish value reaches home memory via the spinners'
        // intervention-triggered writeback of P0's dirty line.
        assert_eq!(m.memory(home).read_word(spin), 1);
    }

    #[test]
    fn marks_record_timestamps() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let (k, _) = Script::new(vec![
            Op::Mark { id: 7 },
            Op::Delay { cycles: 100 },
            Op::Mark { id: 8 },
        ]);
        m.install_kernel(ProcId(0), Box::new(k), 50);
        let res = m.run(10_000);
        assert!(res.all_finished);
        let marks = m.marks();
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0], (ProcId(0), 7, 50));
        assert_eq!(marks[1].1, 8);
        assert_eq!(marks[1].2, 150);
    }

    #[test]
    fn stall_report_names_stuck_processors() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        // A spinner nobody will ever wake.
        let (k, _) = Script::new(vec![Op::SpinUntil {
            addr: var(0, 0x100),
            pred: SpinPred::Eq(1),
        }]);
        m.install_kernel(ProcId(2), Box::new(k), 0);
        let res = m.run(1_000_000);
        assert!(!res.all_finished);
        let report = m.stall_report();
        assert!(report.contains("P2"), "{report}");
        assert!(report.contains("Spinning"), "{report}");
        // A finished machine reports cleanly.
        let mut m2 = Machine::new(SystemConfig::with_procs(4));
        let (k, _) = Script::new(vec![Op::Delay { cycles: 5 }]);
        m2.install_kernel(ProcId(0), Box::new(k), 0);
        assert!(m2.run(1_000).all_finished);
        assert!(m2.stall_report().contains("all kernels finished"));
    }

    #[test]
    fn init_word_preloads_memory() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let a = var(1, 0x800);
        m.init_word(a, 99);
        let (k, out) = Script::new(vec![Op::Load { addr: a }]);
        m.install_kernel(ProcId(0), Box::new(k), 0);
        assert!(m.run(1_000_000).all_finished);
        assert_eq!(out.borrow()[0], Outcome::Value(99));
    }

    #[test]
    fn event_histogram_accounts_every_event() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let (k, _) = Script::new(vec![
            Op::Load {
                addr: var(1, 0x100),
            },
            Op::Amo {
                kind: AmoKind::Inc,
                addr: var(0, 0x200),
                operand: 0,
                test: None,
            },
        ]);
        m.install_kernel(ProcId(0), Box::new(k), 0);
        let res = m.run(1_000_000);
        assert!(res.all_finished);
        let total: u64 = m.event_histogram().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, res.events);
        let hist = m.event_histogram();
        let get = |name: &str| hist.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(get("ToProc") >= 2, "a data reply and an AMO reply arrived");
        assert!(get("DramDone") >= 1);
        assert!(get("AmuWake") >= 1);
    }

    #[test]
    fn uncached_ops_roundtrip_through_home_memory() {
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let a = var(1, 0x8000_0000);
        let (w, _) = Script::new(vec![Op::UncachedStore { addr: a, value: 5 }]);
        let (r, out) = Script::new(vec![
            Op::Delay { cycles: 5_000 },
            Op::UncachedLoad { addr: a },
        ]);
        m.install_kernel(ProcId(0), Box::new(w), 0);
        m.install_kernel(ProcId(2), Box::new(r), 0);
        assert!(m.run(1_000_000).all_finished);
        assert_eq!(out.borrow()[1], Outcome::Value(5));
        assert_eq!(m.memory(NodeId(1)).read_word(a), 5);
    }

    #[test]
    fn probe_inside_residence_window_is_deferred_not_lost() {
        // Two writers fight over one word; the minimum-residence deferral
        // must delay interventions, never drop them: both finish and both
        // increments land.
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let a = var(0, 0x700);
        for p in [0u16, 1] {
            let (k, _) = Script::new(vec![
                Op::AtomicRmw {
                    kind: AmoKind::FetchAdd,
                    addr: a,
                    operand: 1,
                },
                Op::AtomicRmw {
                    kind: AmoKind::FetchAdd,
                    addr: a,
                    operand: 1,
                },
            ]);
            m.install_kernel(ProcId(p), Box::new(k), 0);
        }
        let res = m.run(1_000_000);
        assert!(res.all_finished);
        // Flush the final owner's dirty line by reading with a third
        // processor through an atomic (exclusive grant).
        let (k, out) = Script::new(vec![Op::AtomicRmw {
            kind: AmoKind::FetchAdd,
            addr: a,
            operand: 0,
        }]);
        m.install_kernel(ProcId(3), Box::new(k), res.end + 1);
        assert!(m.run(2_000_000).all_finished);
        assert_eq!(out.borrow()[0], Outcome::Value(4), "no increment lost");
    }

    #[test]
    fn op_latencies_are_recorded() {
        use amo_types::stats::OpClass;
        let mut m = Machine::new(SystemConfig::with_procs(4));
        let a = var(1, 0x900);
        let (k, _) = Script::new(vec![
            Op::Load { addr: a },
            Op::Amo {
                kind: AmoKind::Inc,
                addr: a,
                operand: 0,
                test: None,
            },
            Op::Delay { cycles: 100 },
        ]);
        m.install_kernel(ProcId(0), Box::new(k), 0);
        assert!(m.run(1_000_000).all_finished);
        let s = m.stats();
        assert_eq!(s.op_lat_cnt[OpClass::Load.index()], 1);
        assert_eq!(s.op_lat_cnt[OpClass::Amo.index()], 1);
        assert_eq!(s.op_lat_cnt[OpClass::Atomic.index()], 0);
        // A remote load miss costs hundreds of cycles; the recorded mean
        // must be in that range, and delays are not recorded.
        let load = s.mean_op_latency(OpClass::Load).unwrap();
        assert!(load > 100.0 && load < 2_000.0, "load latency {load}");
        assert!(s.mean_op_latency(OpClass::Spin).is_none());
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut m = Machine::new(SystemConfig::with_procs(8));
            let a = var(0, 0x600);
            for p in 0..8u16 {
                let (k, _) = Script::new(vec![
                    Op::AtomicRmw {
                        kind: AmoKind::FetchAdd,
                        addr: a,
                        operand: 1,
                    },
                    Op::Amo {
                        kind: AmoKind::Inc,
                        addr: var(1, 0x700),
                        operand: 0,
                        test: None,
                    },
                ]);
                m.install_kernel(ProcId(p), Box::new(k), (p as u64) * 13);
            }
            let res = m.run(10_000_000);
            assert!(res.all_finished);
            (
                res.last_finish(),
                m.stats().total_msgs(),
                m.stats().byte_hops,
            )
        };
        assert_eq!(run(), run());
    }

    /// Every processor fires `rounds` back-to-back MAO fetch-adds at one
    /// home counter: sustained AMU traffic, so queue overflow, link
    /// errors, and brown-out windows all get plenty of chances to bite.
    fn hammer_amo(cfg: SystemConfig, procs: u16, rounds: usize) -> (Machine, RunResult) {
        let mut m = Machine::new(cfg);
        let ctr = var(0, 0x300);
        for p in 0..procs {
            let (k, _) = Script::new(vec![
                Op::Mao {
                    kind: AmoKind::FetchAdd,
                    addr: ctr,
                    operand: 1,
                };
                rounds
            ]);
            m.install_kernel(ProcId(p), Box::new(k), (p as u64) * 31);
        }
        let res = m.run(100_000_000);
        (m, res)
    }

    #[test]
    fn zero_rate_fault_plan_is_timing_identical() {
        // A fault config with a seed but every rate at zero must not
        // perturb a single cycle or counter relative to the unfaulted
        // engine.
        let drive = |cfg: SystemConfig| {
            let (m, res) = hammer_amo(cfg, 8, 6);
            assert!(res.all_finished);
            assert!(res.error.is_none());
            (res.end, res.finished, m.stats().to_json())
        };
        let plain = drive(SystemConfig::with_procs(8));
        let mut cfg = SystemConfig::with_procs(8);
        cfg.faults.seed = 0xDEAD_BEEF;
        let zeroed = drive(cfg);
        assert_eq!(plain, zeroed, "zero-rate fault plan perturbed the run");
    }

    #[test]
    fn faulty_links_retry_and_complete() {
        let mut cfg = SystemConfig::with_procs(8);
        cfg.faults.link_error_ppm = 100_000; // 10% per traversal
        cfg.faults.jitter_max = 8;
        cfg.faults.seed = 7;
        let (m, res) = hammer_amo(cfg, 8, 6);
        assert!(res.all_finished, "faulty run must still complete");
        assert!(res.error.is_none());
        let s = m.stats();
        assert!(s.link_crc_errors > 0, "2% over a barrier hits some sends");
        assert_eq!(s.link_crc_errors, s.link_retransmissions);
        assert!(s.link_jitter_cycles > 0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let drive = || {
            let mut cfg = SystemConfig::with_procs(8);
            cfg.faults.link_error_ppm = 100_000;
            cfg.faults.jitter_max = 16;
            cfg.faults.seed = 99;
            cfg.faults.amu_brownout_period = 2_000;
            cfg.faults.amu_brownout_len = 400;
            let (m, res) = hammer_amo(cfg, 8, 6);
            assert!(res.all_finished);
            (res.end, res.finished, m.stats().to_json())
        };
        assert_eq!(drive(), drive(), "same fault seed must replay exactly");
    }

    #[test]
    fn amu_queue_overflow_nacks_and_recovers() {
        // One-deep dispatch queue and eight contenders: overflow NACKs
        // must delay, never lose, requests — and every NACK must be
        // matched by a recorded retry.
        let mut cfg = SystemConfig::with_procs(8);
        cfg.amu.queue_cap = 1;
        let (m, res) = hammer_amo(cfg, 8, 4);
        assert!(res.all_finished, "NACK/backoff must recover");
        assert!(res.error.is_none());
        let s = m.stats();
        assert!(s.amu_nacks > 0, "a 1-deep queue under 8 procs overflows");
        assert_eq!(s.amu_nack_retries, s.amu_nacks + s.amu_brownout_nacks);
        assert_eq!(m.memory(NodeId(0)).read_word(var(0, 0x300)), 32);
    }

    #[test]
    fn amu_brownouts_nack_and_recover() {
        let mut cfg = SystemConfig::with_procs(8);
        cfg.faults.amu_brownout_period = 1_000;
        cfg.faults.amu_brownout_len = 300;
        cfg.faults.seed = 3;
        let (m, res) = hammer_amo(cfg, 8, 20);
        assert!(res.all_finished, "brown-outs must only delay the run");
        let s = m.stats();
        assert!(s.amu_brownout_nacks > 0, "quarter-duty brown-out hits");
        assert_eq!(s.amu_nack_retries, s.amu_nacks + s.amu_brownout_nacks);
    }

    #[test]
    fn exhausted_link_budget_is_a_typed_error() {
        let mut cfg = SystemConfig::with_procs(4);
        cfg.faults.link_error_ppm = 1_000_000; // every traversal corrupts
        cfg.faults.max_link_retries = 2;
        let mut m = Machine::new(cfg);
        let (k, _) = Script::new(vec![Op::Store {
            addr: var(1, 0x100),
            value: 1,
        }]);
        m.install_kernel(ProcId(0), Box::new(k), 0);
        let err = m.try_run(1_000_000).unwrap_err();
        assert!(
            matches!(err.kind, SimErrorKind::LinkFailed { attempts: 2, .. }),
            "{err}"
        );
        assert!(!err.bundle.stall_report.is_empty());
        assert_eq!(err.bundle.queue_depths.len(), 2);
    }

    #[test]
    fn watchdog_flags_livelock_as_no_progress() {
        // Events keep flowing (a delay chain) but nothing ever retires:
        // the watchdog must convert the spin into a typed error instead
        // of burning cycles to the limit.
        let mut m = Machine::new(SystemConfig::with_procs(4));
        m.enable_watchdog(50_000);
        let (k, _) = Script::new(vec![Op::Delay { cycles: 10_000 }; 100]);
        m.install_kernel(ProcId(0), Box::new(k), 0);
        let res = m.run(100_000_000);
        let err = res.error.expect("watchdog must trip");
        assert!(
            matches!(err.kind, SimErrorKind::NoProgress { window: 50_000, .. }),
            "{err}"
        );
        assert!(
            err.bundle.stall_report.contains("P0"),
            "{}",
            err.bundle.stall_report
        );
        assert!(err.bundle.events_processed > 0);
    }

    #[test]
    fn watchdog_flags_drained_queue_as_deadlock() {
        // A spinner nobody wakes: the queue drains with the kernel
        // unfinished. Without the watchdog that is a quiet non-finish;
        // with it, a typed deadlock report.
        let mut m = Machine::new(SystemConfig::with_procs(4));
        m.enable_watchdog(1_000_000);
        let (k, _) = Script::new(vec![Op::SpinUntil {
            addr: var(0, 0x100),
            pred: SpinPred::Eq(1),
        }]);
        m.install_kernel(ProcId(2), Box::new(k), 0);
        let err = m.try_run(10_000_000).unwrap_err();
        assert!(
            matches!(err.kind, SimErrorKind::Deadlock { unfinished: 1 }),
            "{err}"
        );
        assert!(err.bundle.stall_report.contains("Spinning"));
    }

    #[test]
    fn traced_abort_attaches_ring_tail() {
        use amo_obs::RingTracer;
        let mut cfg = SystemConfig::with_procs(4);
        cfg.faults.link_error_ppm = 1_000_000;
        cfg.faults.max_link_retries = 1;
        let mut m = Machine::with_tracer(cfg, QueueKind::Calendar, RingTracer::new(256));
        let (k, _) = Script::new(vec![Op::Store {
            addr: var(1, 0x100),
            value: 1,
        }]);
        m.install_kernel(ProcId(0), Box::new(k), 0);
        let err = m.try_run(1_000_000).unwrap_err();
        let buf = err.bundle.trace.as_ref().expect("ring tail attached");
        assert!(buf.events.iter().any(|e| e.kind == TraceKind::Fault));
        assert!(buf.events.iter().any(|e| e.kind == TraceKind::LinkRetry));
    }

    #[test]
    fn calendar_and_heap_queues_give_identical_machines() {
        // The engine swap must be invisible: every timing and every
        // counter agrees between the calendar queue and the reference
        // heap at the same seed/skew.
        let run = |kind: QueueKind| {
            let mut m = Machine::new_with_queue(SystemConfig::with_procs(8), kind);
            let a = var(0, 0x600);
            for p in 0..8u16 {
                let (k, _) = Script::new(vec![
                    Op::AtomicRmw {
                        kind: AmoKind::FetchAdd,
                        addr: a,
                        operand: 1,
                    },
                    Op::Amo {
                        kind: AmoKind::Inc,
                        addr: var(1, 0x700),
                        operand: 0,
                        test: Some(8),
                    },
                    Op::SpinUntil {
                        addr: var(1, 0x700),
                        pred: SpinPred::Eq(8),
                    },
                ]);
                m.install_kernel(ProcId(p), Box::new(k), (p as u64) * 37);
            }
            let res = m.run(10_000_000);
            assert!(res.all_finished);
            (
                res.finished.clone(),
                res.events,
                m.stats().clone(),
                m.event_histogram(),
            )
        };
        let cal = run(QueueKind::Calendar);
        let heap = run(QueueKind::Heap);
        assert_eq!(cal.0, heap.0, "completion times differ");
        assert_eq!(cal.1, heap.1, "event counts differ");
        assert_eq!(cal.3, heap.3, "event histograms differ");
        assert_eq!(
            format!("{:?}", cal.2),
            format!("{:?}", heap.2),
            "stats differ"
        );
    }

    #[test]
    fn batched_and_per_event_dispatch_give_identical_machines() {
        // Batched same-cycle dispatch must be invisible: the forced
        // per-event path is the oracle, and every completion time,
        // counter, and event tally must agree with it — for both queue
        // implementations.
        let run = |kind: QueueKind, batched: bool| {
            let mut m = Machine::new_with_queue(SystemConfig::with_procs(8), kind);
            m.set_batched_dispatch(batched);
            let a = var(0, 0x600);
            for p in 0..8u16 {
                let (k, _) = Script::new(vec![
                    Op::AtomicRmw {
                        kind: AmoKind::FetchAdd,
                        addr: a,
                        operand: 1,
                    },
                    Op::Amo {
                        kind: AmoKind::Inc,
                        addr: var(1, 0x700),
                        operand: 0,
                        test: Some(8),
                    },
                    Op::SpinUntil {
                        addr: var(1, 0x700),
                        pred: SpinPred::Eq(8),
                    },
                ]);
                m.install_kernel(ProcId(p), Box::new(k), (p as u64) * 37);
            }
            let res = m.run(10_000_000);
            assert!(res.all_finished);
            (
                res.finished.clone(),
                res.events,
                format!("{:?}", m.stats()),
                m.event_histogram(),
            )
        };
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            let batched = run(kind, true);
            let per_event = run(kind, false);
            assert_eq!(batched.0, per_event.0, "{kind:?}: completion times differ");
            assert_eq!(batched.1, per_event.1, "{kind:?}: event counts differ");
            assert_eq!(batched.3, per_event.3, "{kind:?}: event histograms differ");
            assert_eq!(batched.2, per_event.2, "{kind:?}: stats differ");
        }
    }
}
