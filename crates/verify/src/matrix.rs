//! Verification matrices (`amo-verify-matrix-v1`) through the
//! campaign result cache.
//!
//! A matrix is a declarative list of [`VerifyModel`] cells — the
//! committed `specs/verify-matrix.json` covers {AMO, MAO, LL/SC} ×
//! {barrier, ticket lock} small models. Each cell's exploration is
//! content-addressed exactly like a campaign run: the cell key is the
//! stable hash of the model's canonical document plus the search
//! limits, and the finished [`ExploreReport`] summary is stored as an
//! `amo-verify-cell-v1` blob in the shared
//! [`ResultCache`]. A warm re-run of a matrix
//! explores nothing.

use crate::explore::{explore, ExploreLimits, ExploreReport};
use crate::model::{VerifyModel, VerifyWorkload};
use amo_campaign::ResultCache;
use amo_types::jsonv::Json;
use amo_types::seed::stable_hash128;
use amo_types::{Cycle, JsonWriter};

/// Schema tag of a matrix spec.
pub const MATRIX_SCHEMA: &str = "amo-verify-matrix-v1";
/// Schema tag of a cached cell summary.
pub const CELL_SCHEMA: &str = "amo-verify-cell-v1";
/// Blob kind cells are cached under.
pub const CACHE_KIND: &str = "verify";

/// One matrix cell: a model and its search limits.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// The model to explore.
    pub model: VerifyModel,
    /// Search bounds for this cell.
    pub limits: ExploreLimits,
}

impl MatrixCell {
    /// The cell's content address: model canonical doc + limits.
    pub fn key(&self) -> (u64, u64) {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("model");
        w.raw_val(&self.model.canonical_doc());
        w.kv_u64("max_runs", self.limits.max_runs);
        w.kv_u64(
            "max_counterexamples",
            self.limits.max_counterexamples as u64,
        );
        w.kv_u64("max_shrink_probes", self.limits.max_shrink_probes as u64);
        w.end_obj();
        stable_hash128(w.finish().as_bytes())
    }

    /// Human-readable cell label for reports.
    pub fn label(&self) -> String {
        format!(
            "{} {} x{}",
            self.model.mech.label(),
            self.model.workload.tag(),
            self.model.procs
        )
    }
}

/// A parsed verification matrix.
#[derive(Clone, Debug)]
pub struct VerifyMatrix {
    /// Cells, in spec order.
    pub cells: Vec<MatrixCell>,
}

impl VerifyMatrix {
    /// Parse an `amo-verify-matrix-v1` spec. Top-level `max_runs` /
    /// `max_choice_points` apply to every cell unless the cell
    /// overrides them.
    pub fn from_json(doc: &str) -> Result<VerifyMatrix, String> {
        let v = Json::parse(doc).map_err(|e| format!("matrix: {e}"))?;
        match v.get("schema").and_then(|s| s.as_str()) {
            Some(MATRIX_SCHEMA) => {}
            other => {
                return Err(format!(
                    "matrix: bad schema {other:?}, want {MATRIX_SCHEMA:?}"
                ))
            }
        }
        let top_runs = v.get("max_runs").and_then(|n| n.as_u64());
        let top_horizon = v.get("max_choice_points").and_then(|n| n.as_u64());
        let cells = v
            .get("cells")
            .and_then(|c| c.as_arr())
            .ok_or("matrix: missing cells")?;
        let mut out = Vec::with_capacity(cells.len());
        for (i, c) in cells.iter().enumerate() {
            out.push(parse_cell(c, top_runs, top_horizon).map_err(|e| format!("cell {i}: {e}"))?);
        }
        Ok(VerifyMatrix { cells: out })
    }
}

fn parse_cell(
    c: &Json,
    top_runs: Option<u64>,
    top_horizon: Option<u64>,
) -> Result<MatrixCell, String> {
    let num = |k: &str| c.get(k).and_then(|n| n.as_u64());
    let mech = crate::doc::parse_mech(
        c.get("mech")
            .and_then(|s| s.as_str())
            .ok_or("missing mech")?,
    )?;
    let procs = num("procs").ok_or("missing procs")? as u16;
    let workload = match c.get("workload").and_then(|s| s.as_str()) {
        Some("barrier") => VerifyWorkload::Barrier {
            episodes: num("episodes").unwrap_or(2) as u32,
        },
        Some("ticket-lock") => VerifyWorkload::TicketLock {
            rounds: num("rounds").unwrap_or(1) as u32,
        },
        other => return Err(format!("unknown workload {other:?}")),
    };
    let mut model = VerifyModel::new(mech, workload, procs);
    if let Some(n) = num("skew_choices") {
        model.skew_choices = n as u16;
    }
    if let Some(n) = num("skew_step") {
        model.skew_step = n as Cycle;
    }
    if let Some(n) = num("reorder_window") {
        model.reorder_window = n as Cycle;
    }
    if let Some(n) = num("max_choice_points").or(top_horizon) {
        model.max_choice_points = n as u32;
    }
    if let Some(n) = num("watchdog") {
        model.watchdog = n as Cycle;
    }
    let mut limits = ExploreLimits::default();
    if let Some(n) = num("max_runs").or(top_runs) {
        limits.max_runs = n;
    }
    Ok(MatrixCell { model, limits })
}

/// One cell's result, possibly served from the cache.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Cell label (`"AMO barrier x4"`).
    pub label: String,
    /// Schedules executed (or recorded, when cached).
    pub schedules: u64,
    /// Distinct outcome fingerprints.
    pub distinct: u64,
    /// Violating schedule classes found.
    pub violations: u64,
    /// True if the search hit its run bound.
    pub truncated: bool,
    /// True if the summary came from the result cache.
    pub cached: bool,
}

fn cell_summary_json(r: &ExploreReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", CELL_SCHEMA);
    w.kv_u64("schedules", r.schedules);
    w.kv_u64("distinct", r.distinct);
    w.kv_u64("violations", r.violations());
    w.key("truncated");
    w.bool_val(r.truncated);
    w.end_obj();
    w.finish()
}

fn parse_cell_summary(doc: &str) -> Option<(u64, u64, u64, bool)> {
    let v = Json::parse(doc).ok()?;
    if v.get("schema")?.as_str()? != CELL_SCHEMA {
        return None;
    }
    Some((
        v.get("schedules")?.as_u64()?,
        v.get("distinct")?.as_u64()?,
        v.get("violations")?.as_u64()?,
        v.get("truncated")?.as_bool()?,
    ))
}

/// Run every cell of a matrix, serving warm cells from `cache` and
/// storing cold ones into it. Cells run in spec order; the report is
/// deterministic either way because explorations are.
pub fn run_matrix(matrix: &VerifyMatrix, cache: Option<&ResultCache>) -> Vec<CellOutcome> {
    matrix
        .cells
        .iter()
        .map(|cell| {
            let key = cell.key();
            if let Some(c) = cache {
                if let Some((schedules, distinct, violations, truncated)) = c
                    .get_blob(CACHE_KIND, key)
                    .as_deref()
                    .and_then(parse_cell_summary)
                {
                    return CellOutcome {
                        label: cell.label(),
                        schedules,
                        distinct,
                        violations,
                        truncated,
                        cached: true,
                    };
                }
            }
            let report = explore(&cell.model, &cell.limits);
            if let Some(c) = cache {
                // Cache-store failures degrade to a cold cell next time.
                let _ = c.put_blob(CACHE_KIND, key, &cell_summary_json(&report));
            }
            CellOutcome {
                label: cell.label(),
                schedules: report.schedules,
                distinct: report.distinct,
                violations: report.violations(),
                truncated: report.truncated,
                cached: false,
            }
        })
        .collect()
}

/// Render matrix outcomes as the `verify` binary's JSON report. The
/// top-level `"violations"` field is the total across cells — CI greps
/// it for `"violations": 0`.
pub fn render_matrix_report(outcomes: &[CellOutcome]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", "amo-verify-report-v1");
    w.kv_u64("cells", outcomes.len() as u64);
    w.kv_u64(
        "violations",
        outcomes.iter().map(|o| o.violations).sum::<u64>(),
    );
    w.key("results");
    w.begin_arr();
    for o in outcomes {
        w.begin_obj();
        w.kv_str("cell", &o.label);
        w.kv_u64("schedules", o.schedules);
        w.kv_u64("distinct", o.distinct);
        w.kv_u64("violations", o.violations);
        w.key("truncated");
        w.bool_val(o.truncated);
        w.key("cached");
        w.bool_val(o.cached);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}
