//! `amo-verify`: online protocol monitors and a bounded schedule
//! explorer with replayable counterexamples.
//!
//! Simulation gives determinism; determinism alone does not give
//! *coverage* — the keyed-hash fault oracle executes one interleaving
//! per seed. This crate closes the gap from both ends:
//!
//! * [`monitor`] — online checkers over the trace/effect stream
//!   (mutual exclusion, ticket-FIFO order, barrier-epoch separation,
//!   at-most-once AMU application, directory slab sanity). Monitors
//!   are pure observers riding the existing `Tracer` hooks: a
//!   monitored run is timing-identical to an unmonitored one, and the
//!   default `NopTracer` build compiles every hook away.
//! * [`explore`] — a bounded DFS over **choice tapes**
//!   (`amo_types::tape`): every implicit delivery/retry decision
//!   becomes an explicit, enumerable choice, so the explorer
//!   systematically visits arrival skews, reorder permutations, and
//!   duplication/jitter picks, deduping on outcome fingerprints.
//! * [`doc`] — violating tapes shrink to minimal reproducers and
//!   serialize as fingerprint-checked `amo-schedule-v1` documents the
//!   `verify` binary replays to the identical typed error.
//! * [`matrix`] — declarative verification matrices cached through
//!   the campaign's content-addressed result store.
//!
//! See DESIGN.md §12 for the monitor catalog, choice-tape semantics,
//! and the soundness boundary of the exploration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doc;
pub mod explore;
pub mod matrix;
pub mod model;
pub mod monitor;

pub use doc::{ScheduleDoc, SCHEDULE_SCHEMA};
pub use explore::{explore, Counterexample, ExploreLimits, ExploreReport};
pub use matrix::{render_matrix_report, run_matrix, CellOutcome, MatrixCell, VerifyMatrix};
pub use model::{Outcome, VerifyModel, VerifyWorkload};
pub use monitor::{
    AtMostOnce, BarrierEpoch, DirSanity, Monitor, MonitorTracer, MutualExclusion, TicketFifo,
};
