//! The bounded schedule explorer.
//!
//! Systematic enumeration over the choice tape: run the empty prefix,
//! read back the branching structure the run consumed (every choice
//! with its arity), and for every position at or past the forced
//! prefix push one new prefix per untaken alternative. Each complete
//! tape is visited exactly once; the DFS order is a pure function of
//! the model, so two explorations are byte-identical.
//!
//! Two prunings bound the search (both documented in DESIGN.md §12):
//!
//! * **Horizon** — the tape stops branching after
//!   `max_choice_points` consumed choices (arity collapses to 1), so
//!   the frontier is finite even on long runs.
//! * **Outcome dedup** — a run whose outcome fingerprint (end cycle,
//!   outcome kind, full mark history) was already seen does not expand
//!   its alternatives, in the spirit of sleep sets: schedules that
//!   produced an already-explored observable state rarely lead
//!   anywhere new. This trades completeness for tractability; every
//!   run still passes through the full monitor stack, so pruning never
//!   hides a violation on an executed schedule.
//!
//! A violating run is reported as a [`Counterexample`] and **shrunk**:
//! greedily minimize each tape position (smallest alternative that
//! still reproduces the same monitor + failure kind), then trim
//! trailing zeros. The result replays as an `amo-schedule-v1`
//! document (see [`crate::doc`]).

use crate::model::VerifyModel;
use amo_types::FxHashSet;

/// Search bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Stop after this many executed schedules (the report is marked
    /// truncated).
    pub max_runs: u64,
    /// Stop collecting counterexamples after this many distinct
    /// (monitor, kind) classes.
    pub max_counterexamples: usize,
    /// Probe budget for shrinking each counterexample.
    pub max_shrink_probes: u32,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_runs: 20_000,
            max_counterexamples: 4,
            max_shrink_probes: 64,
        }
    }
}

/// One violating schedule, as found and as shrunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Firing monitor (`"at-most-once"`, …).
    pub monitor: String,
    /// Typed failure discriminant (`"MonitorViolation"`, …).
    pub kind: String,
    /// Violation detail with witnesses.
    pub detail: String,
    /// The tape that provoked the violation, as executed.
    pub tape: Vec<u16>,
    /// The shrunk (minimal) tape: still reproduces the same monitor
    /// and kind.
    pub minimal: Vec<u16>,
    /// Probes the shrinker spent.
    pub shrink_probes: u32,
}

/// What an exploration did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct outcome fingerprints among them.
    pub distinct: u64,
    /// Runs whose alternatives were not expanded because their outcome
    /// fingerprint was already seen.
    pub pruned: u64,
    /// True if `max_runs` cut the search short.
    pub truncated: bool,
    /// Violations found, first per (monitor, kind) class, each shrunk.
    pub counterexamples: Vec<Counterexample>,
}

impl ExploreReport {
    /// Number of violating schedule classes found.
    pub fn violations(&self) -> u64 {
        self.counterexamples.len() as u64
    }
}

/// Run the bounded exploration of `model` under `limits`.
/// Deterministic: same inputs, same report, field for field.
pub fn explore(model: &VerifyModel, limits: &ExploreLimits) -> ExploreReport {
    let mut report = ExploreReport {
        schedules: 0,
        distinct: 0,
        pruned: 0,
        truncated: false,
        counterexamples: Vec::new(),
    };
    let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
    let mut stack: Vec<Vec<u16>> = vec![Vec::new()];

    while let Some(prefix) = stack.pop() {
        if report.schedules >= limits.max_runs {
            report.truncated = true;
            break;
        }
        let out = model.run_once(&prefix);
        report.schedules += 1;

        if let Some(kind) = out.kind {
            let monitor = out.monitor.unwrap_or("");
            let known = report
                .counterexamples
                .iter()
                .any(|c| c.monitor == monitor && c.kind == kind);
            if !known && report.counterexamples.len() < limits.max_counterexamples {
                let tape = out.chosen();
                let (minimal, shrink_probes) =
                    shrink(model, &tape, kind, out.monitor, limits.max_shrink_probes);
                report.counterexamples.push(Counterexample {
                    monitor: monitor.to_string(),
                    kind: kind.to_string(),
                    detail: out.detail.clone().unwrap_or_default(),
                    tape,
                    minimal,
                    shrink_probes,
                });
            }
        }

        if seen.insert(out.fingerprint) {
            report.distinct += 1;
            // Expand every untaken alternative at or past the forced
            // prefix. Pushed deepest-position-first so the DFS pops
            // shallow deviations first — purely cosmetic; any fixed
            // order enumerates the same set.
            let chosen = out.chosen();
            for i in prefix.len()..out.log.len() {
                for alt in (out.log[i].chosen + 1)..out.log[i].arity {
                    let mut next = chosen[..i].to_vec();
                    next.push(alt);
                    stack.push(next);
                }
            }
        } else {
            report.pruned += 1;
        }
    }
    report
}

/// Greedily minimize a violating tape: for each position, take the
/// smallest alternative that still reproduces the same monitor and
/// failure kind; then drop trailing zeros (the tape's default beyond
/// the prefix is 0, so they carry no information).
fn shrink(
    model: &VerifyModel,
    tape: &[u16],
    kind: &'static str,
    monitor: Option<&'static str>,
    max_probes: u32,
) -> (Vec<u16>, u32) {
    let mut best = tape.to_vec();
    let mut probes = 0u32;
    for i in 0..best.len() {
        for v in 0..best[i] {
            if probes >= max_probes {
                break;
            }
            let mut candidate = best.clone();
            candidate[i] = v;
            probes += 1;
            let out = model.run_once(&candidate);
            if out.kind == Some(kind) && out.monitor == monitor {
                best[i] = v;
                break;
            }
        }
    }
    while best.last() == Some(&0) {
        best.pop();
    }
    (best, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::ScheduleDoc;
    use crate::model::VerifyWorkload;
    use amo_sync::Mechanism;

    fn lock_model() -> VerifyModel {
        // The pinned exhaustiveness workload from the issue: 2-proc AMO
        // ticket lock, arrival skew ∈ {0, 1} per proc, reorder window 2.
        VerifyModel::new(Mechanism::Amo, VerifyWorkload::TicketLock { rounds: 1 }, 2)
    }

    #[test]
    fn lock_exploration_counts_are_pinned_and_deterministic() {
        let report = explore(&lock_model(), &ExploreLimits::default());
        // Exact enumeration counts: any change to the simulator's
        // choice structure (new choice points, reordered consumption,
        // changed arities) shows up here before it silently shrinks or
        // inflates coverage.
        assert_eq!(report.schedules, 64);
        assert_eq!(report.distinct, 15);
        assert_eq!(report.pruned, 49);
        assert!(!report.truncated);
        assert_eq!(report.violations(), 0, "{:?}", report.counterexamples);
        // Byte-identical determinism: two explorations of the same
        // model agree field for field.
        let again = explore(&lock_model(), &ExploreLimits::default());
        assert_eq!(again, report);
    }

    #[test]
    fn barrier_exploration_finds_no_violations() {
        let model = VerifyModel::new(Mechanism::Amo, VerifyWorkload::Barrier { episodes: 2 }, 2);
        let report = explore(&model, &ExploreLimits::default());
        assert_eq!(report.schedules, 168);
        assert_eq!(report.distinct, 162);
        assert!(!report.truncated);
        assert_eq!(report.violations(), 0, "{:?}", report.counterexamples);
    }

    #[test]
    fn planted_double_apply_is_found_shrunk_and_replayable() {
        let mut model = lock_model();
        model.explore_dups = true;
        model.planted_double_apply = true;
        let report = explore(&model, &ExploreLimits::default());
        assert_eq!(report.violations(), 1, "{:?}", report.counterexamples);
        let cx = &report.counterexamples[0];
        assert_eq!(cx.monitor, "at-most-once");
        assert_eq!(cx.kind, "MonitorViolation");
        assert!(cx.detail.contains("applied twice"), "{}", cx.detail);
        // The shrunk tape is minimal: exactly the one duplication
        // choice that provokes the planted bug survives.
        assert!(cx.minimal.len() <= cx.tape.len());
        assert_eq!(
            cx.minimal.iter().filter(|&&v| v != 0).count(),
            1,
            "minimal tape {:?} should carry a single nonzero choice",
            cx.minimal
        );

        // The minimal tape round-trips through an amo-schedule-v1
        // document and replays to the identical typed violation.
        let out = model.run_once(&cx.minimal);
        assert_eq!(out.kind, Some("MonitorViolation"));
        let doc = ScheduleDoc::new(model, cx.minimal.clone(), &out);
        let back = ScheduleDoc::from_json(&doc.to_json()).expect("decodes");
        assert_eq!(back, doc);
        let replayed = back.replay().expect("reproduces the violation");
        assert_eq!(replayed.monitor, Some("at-most-once"));
        assert_eq!(replayed.fingerprint, out.fingerprint);
    }

    #[test]
    fn run_bound_truncates_and_reports_it() {
        let report = explore(
            &lock_model(),
            &ExploreLimits {
                max_runs: 5,
                ..ExploreLimits::default()
            },
        );
        assert_eq!(report.schedules, 5);
        assert!(report.truncated);
    }
}
