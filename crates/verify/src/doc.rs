//! Replayable schedule documents (`amo-schedule-v1`).
//!
//! A [`ScheduleDoc`] pins one schedule of one [`VerifyModel`]: the
//! full model description, the choice tape (values plus one tag
//! character per choice, so tapes are self-describing), the outcome
//! the schedule is expected to produce (`"ok"` or a typed failure
//! kind with the firing monitor), and a **config fingerprint** — the
//! model's content key, which folds in the complete machine
//! configuration and the campaign `CODE_FINGERPRINT`. Replaying a
//! document against a drifted simulator is refused loudly instead of
//! silently "reproducing" something else, exactly like the chaos
//! subsystem's `amo-fault-plan-v1`.

use crate::model::{Outcome, VerifyModel, VerifyWorkload};
use amo_sync::Mechanism;
use amo_types::jsonv::Json;
use amo_types::tape::ChoiceKind;
use amo_types::{Cycle, JsonWriter};

/// Schema tag of a serialized schedule.
pub const SCHEDULE_SCHEMA: &str = "amo-schedule-v1";

/// A replayable schedule: model + tape + expected outcome +
/// fingerprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleDoc {
    /// The model the tape drives.
    pub model: VerifyModel,
    /// Forced choice-tape prefix.
    pub tape: Vec<u16>,
    /// One [`ChoiceKind::tag`] character per tape entry (descriptive;
    /// replay is driven by the values).
    pub kinds: String,
    /// Expected outcome: `"ok"` or a failure-kind name.
    pub kind: String,
    /// Expected firing monitor; empty when `kind` is not a monitor
    /// violation.
    pub monitor: String,
    /// The model's content key (hex, 32 digits) at minting time.
    pub fingerprint: String,
}

impl ScheduleDoc {
    /// Build a document for `tape` against `model`, stamping the
    /// current fingerprint. `outcome` supplies the expected result and
    /// the per-choice kind tags.
    pub fn new(model: VerifyModel, tape: Vec<u16>, outcome: &Outcome) -> ScheduleDoc {
        let kinds = outcome
            .log
            .iter()
            .take(tape.len())
            .map(|c| c.kind.tag())
            .collect::<String>();
        let (a, b) = model.key();
        ScheduleDoc {
            model,
            tape,
            kinds,
            kind: outcome.kind_str().to_string(),
            monitor: outcome.monitor.unwrap_or("").to_string(),
            fingerprint: format!("{a:016x}{b:016x}"),
        }
    }

    /// The fingerprint this simulator computes for the document's
    /// model *now*.
    pub fn current_fingerprint(&self) -> String {
        let (a, b) = self.model.key();
        format!("{a:016x}{b:016x}")
    }

    /// `Err` describes the drift if the document was minted by a
    /// different simulator or machine configuration.
    pub fn check_fingerprint(&self) -> Result<(), String> {
        let now = self.current_fingerprint();
        if now == self.fingerprint {
            Ok(())
        } else {
            Err(format!(
                "schedule fingerprint mismatch: document was minted under {}, \
                 this simulator computes {} — the simulator or machine \
                 configuration has drifted and the schedule is not a valid \
                 reproducer here",
                self.fingerprint, now
            ))
        }
    }

    /// Re-execute the schedule. Fails if the fingerprint does not
    /// match or the run does not reproduce the documented outcome
    /// (same typed kind, same monitor).
    pub fn replay(&self) -> Result<Outcome, String> {
        self.check_fingerprint()?;
        let out = self.model.run_once(&self.tape);
        if out.kind_str() != self.kind {
            return Err(format!(
                "schedule replay diverged: expected outcome {:?}, got {:?} \
                 ({})",
                self.kind,
                out.kind_str(),
                out.detail.as_deref().unwrap_or("no detail")
            ));
        }
        let got_monitor = out.monitor.unwrap_or("");
        if got_monitor != self.monitor {
            return Err(format!(
                "schedule replay diverged: expected monitor {:?}, got {:?}",
                self.monitor, got_monitor
            ));
        }
        Ok(out)
    }

    /// Serialize as one `amo-schedule-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.kv_str("schema", SCHEDULE_SCHEMA);
        w.kv_str("fingerprint", &self.fingerprint);
        w.kv_str("kind", &self.kind);
        w.kv_str("monitor", &self.monitor);
        w.key("model");
        w.begin_obj();
        w.kv_str("mech", self.model.mech.label());
        w.kv_str("workload", self.model.workload.tag());
        match self.model.workload {
            VerifyWorkload::Barrier { episodes } => w.kv_u64("episodes", episodes as u64),
            VerifyWorkload::TicketLock { rounds } => w.kv_u64("rounds", rounds as u64),
        }
        w.kv_u64("procs", self.model.procs as u64);
        w.kv_u64("skew_choices", self.model.skew_choices as u64);
        w.kv_u64("skew_step", self.model.skew_step);
        w.kv_u64("reorder_window", self.model.reorder_window);
        w.key("explore_dups");
        w.bool_val(self.model.explore_dups);
        w.kv_u64("jitter_choices", self.model.jitter_choices as u64);
        w.kv_u64("max_choice_points", self.model.max_choice_points as u64);
        w.kv_u64("watchdog", self.model.watchdog);
        w.key("planted_double_apply");
        w.bool_val(self.model.planted_double_apply);
        w.end_obj();
        w.kv_str("tape_kinds", &self.kinds);
        w.key("tape");
        w.begin_arr();
        for &v in &self.tape {
            w.u64_val(v as u64);
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Decode an `amo-schedule-v1` document. Does **not** verify the
    /// fingerprint — call [`ScheduleDoc::check_fingerprint`] (or just
    /// [`ScheduleDoc::replay`], which does) before trusting it.
    pub fn from_json(doc: &str) -> Result<ScheduleDoc, String> {
        let v = Json::parse(doc).map_err(|e| format!("schedule: {e}"))?;
        match v.get("schema").and_then(|s| s.as_str()) {
            Some(SCHEDULE_SCHEMA) => {}
            other => {
                return Err(format!(
                    "schedule: bad schema {other:?}, want {SCHEDULE_SCHEMA:?}"
                ))
            }
        }
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(|s| s.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("schedule: missing {k}"))
        };
        let m = v.get("model").ok_or("schedule: missing model")?;
        let num = |k: &str| -> Result<u64, String> {
            m.get(k)
                .and_then(|n| n.as_u64())
                .ok_or_else(|| format!("schedule: missing model.{k}"))
        };
        let flag = |k: &str| -> Result<bool, String> {
            m.get(k)
                .and_then(|b| b.as_bool())
                .ok_or_else(|| format!("schedule: missing model.{k}"))
        };
        let mech = parse_mech(
            m.get("mech")
                .and_then(|s| s.as_str())
                .ok_or("schedule: missing model.mech")?,
        )?;
        let workload = match m.get("workload").and_then(|s| s.as_str()) {
            Some("barrier") => VerifyWorkload::Barrier {
                episodes: num("episodes")? as u32,
            },
            Some("ticket-lock") => VerifyWorkload::TicketLock {
                rounds: num("rounds")? as u32,
            },
            other => return Err(format!("schedule: unknown workload {other:?}")),
        };
        let model = VerifyModel {
            mech,
            workload,
            procs: num("procs")? as u16,
            skew_choices: num("skew_choices")? as u16,
            skew_step: num("skew_step")? as Cycle,
            reorder_window: num("reorder_window")? as Cycle,
            explore_dups: flag("explore_dups")?,
            jitter_choices: num("jitter_choices")? as u16,
            max_choice_points: num("max_choice_points")? as u32,
            watchdog: num("watchdog")? as Cycle,
            planted_double_apply: flag("planted_double_apply")?,
        };
        let tape = v
            .get("tape")
            .and_then(|t| t.as_arr())
            .ok_or("schedule: missing tape")?
            .iter()
            .map(|e| {
                e.as_u64()
                    .map(|n| n as u16)
                    .ok_or_else(|| "schedule: tape entries must be numbers".to_string())
            })
            .collect::<Result<Vec<u16>, String>>()?;
        Ok(ScheduleDoc {
            model,
            tape,
            kinds: str_field("tape_kinds")?,
            kind: str_field("kind")?,
            monitor: str_field("monitor")?,
            fingerprint: str_field("fingerprint")?,
        })
    }
}

/// Parse a mechanism table label (`"AMO"`, `"LL/SC"`, …).
pub fn parse_mech(s: &str) -> Result<Mechanism, String> {
    Mechanism::ALL
        .into_iter()
        .find(|m| m.label() == s)
        .ok_or_else(|| {
            let labels: Vec<&str> = Mechanism::ALL.iter().map(|m| m.label()).collect();
            format!(
                "schedule: unknown mechanism {s:?} (one of {})",
                labels.join(", ")
            )
        })
}

/// Tag-string → [`ChoiceKind`] sequence, for document readers that
/// want the decoded kinds (the inverse of [`ChoiceKind::tag`]).
pub fn parse_kinds(tags: &str) -> Result<Vec<ChoiceKind>, String> {
    tags.chars()
        .map(|c| match c {
            's' => Ok(ChoiceKind::ArrivalSkew),
            'r' => Ok(ChoiceKind::ReorderSkew),
            'd' => Ok(ChoiceKind::Duplicate),
            'j' => Ok(ChoiceKind::RetryJitter),
            other => Err(format!("schedule: unknown choice tag {other:?}")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VerifyModel {
        VerifyModel::new(Mechanism::Amo, VerifyWorkload::TicketLock { rounds: 1 }, 2)
    }

    #[test]
    fn documents_round_trip_and_pin_the_config() {
        let m = model();
        let out = m.run_once(&[1, 0, 2]);
        let doc = ScheduleDoc::new(m, vec![1, 0, 2], &out);
        let json = doc.to_json();
        let back = ScheduleDoc::from_json(&json).expect("decodes");
        assert_eq!(back, doc);
        assert_eq!(back.to_json(), json, "decode∘encode is identity");
        back.check_fingerprint().expect("fresh doc matches");

        let mut drifted = back.clone();
        drifted.model.procs = 4;
        let err = drifted.check_fingerprint().expect_err("drift detected");
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn replay_reproduces_the_documented_outcome() {
        let m = model();
        let out = m.run_once(&[1]);
        assert_eq!(out.kind, None);
        let doc = ScheduleDoc::new(m, vec![1], &out);
        let replayed = doc.replay().expect("replays clean");
        assert_eq!(replayed.fingerprint, out.fingerprint);
        assert_eq!(replayed.end, out.end);

        // A doc that *claims* a different outcome is caught.
        let mut lying = doc.clone();
        lying.kind = "MonitorViolation".to_string();
        lying.monitor = "at-most-once".to_string();
        let err = lying.replay().expect_err("divergence detected");
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn kinds_tags_round_trip() {
        let kinds = parse_kinds("srdj").expect("all tags known");
        assert_eq!(
            kinds,
            vec![
                ChoiceKind::ArrivalSkew,
                ChoiceKind::ReorderSkew,
                ChoiceKind::Duplicate,
                ChoiceKind::RetryJitter,
            ]
        );
        assert!(parse_kinds("x").is_err());
    }
}
