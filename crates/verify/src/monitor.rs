//! Online protocol monitors over the trace/effect stream.
//!
//! A [`Monitor`] is a small state machine fed every [`TraceEvent`] the
//! simulator records. It never touches simulation state — monitors are
//! pure observers, so a monitored run is timing-identical to an
//! unmonitored one (the passivity guarantee CI checks). When an event
//! contradicts a protocol invariant the monitor returns a detail
//! string; the [`MonitorTracer`] wraps it into a
//! [`Violation`] that the machine converts into a typed
//! `SimErrorKind::MonitorViolation` abort with the full diagnostic
//! bundle (critical path included) attached.
//!
//! The catalog (see DESIGN.md §12 for the soundness boundary of each):
//!
//! * [`MutualExclusion`] — at most one lock holder at a time, releases
//!   only by the holder (lock kernels' acquire/release marks).
//! * [`TicketFifo`] — lock acquisition order equals ticket-grant order
//!   (AMU fetch-add applies on the sequencer; AMO/MAO mechanisms only).
//! * [`BarrierEpoch`] — no processor exits barrier episode `e` before
//!   every participant has entered it.
//! * [`AtMostOnce`] — every request tag is applied by the AMU at most
//!   once, no matter how often delivery faults retransmit it.
//! * [`DirSanity`] — the directory never reclaims a slab entry that
//!   still has an open transaction or queued work.

use amo_obs::{RingTracer, TraceBuf, TraceEvent, TraceKind, Tracer, Violation};
use amo_types::FxHashSet;

/// One online protocol checker. `observe` sees every recorded event in
/// dispatch order and returns `Some(detail)` on the first event that
/// violates the monitored invariant.
pub trait Monitor {
    /// Stable monitor name (`"mutual-exclusion"`, …) — becomes the
    /// `monitor` field of the typed error and the schedule document.
    fn name(&self) -> &'static str;
    /// Feed one event; `Some` reports a violation with its witnesses.
    fn observe(&mut self, ev: &TraceEvent) -> Option<String>;
}

/// A [`Tracer`] that runs a monitor stack over every recorded event and
/// keeps the events in a bounded ring for the diagnostic bundle. The
/// first violation is latched; the machine polls it via
/// [`Tracer::take_violation`] after every dispatch and aborts the run.
pub struct MonitorTracer {
    ring: RingTracer,
    monitors: Vec<Box<dyn Monitor>>,
    violation: Option<Violation>,
}

impl MonitorTracer {
    /// Monitor stack over a ring of `cap` retained events.
    pub fn new(cap: usize, monitors: Vec<Box<dyn Monitor>>) -> Self {
        MonitorTracer {
            ring: RingTracer::new(cap),
            monitors,
            violation: None,
        }
    }
}

impl Tracer for MonitorTracer {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if self.violation.is_none() {
            for m in &mut self.monitors {
                if let Some(detail) = m.observe(&ev) {
                    self.violation = Some(Violation {
                        monitor: m.name(),
                        detail,
                        at: ev.when,
                    });
                    break;
                }
            }
        }
        self.ring.record(ev);
    }

    fn take_buf(&mut self) -> Option<TraceBuf> {
        self.ring.take_buf()
    }

    fn take_violation(&mut self) -> Option<Violation> {
        self.violation.take()
    }
}

/// Lock-kernel mark decoding: round `r` (1-based) acquires at mark `2r`
/// and releases at `2r + 1` (see `amo_sync::lock::acquire_mark`).
/// Barrier kernels use the same arithmetic for enter/exit, so mark
/// monitors are attached per workload, never both at once.
fn is_acquire_mark(id: u64) -> bool {
    id >= 2 && id.is_multiple_of(2)
}

fn is_release_mark(id: u64) -> bool {
    id >= 3 && id % 2 == 1
}

/// At most one processor holds the lock; only the holder releases it.
#[derive(Default)]
pub struct MutualExclusion {
    holder: Option<(u16, u64)>,
}

impl MutualExclusion {
    /// Fresh monitor (no holder).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Monitor for MutualExclusion {
    fn name(&self) -> &'static str {
        "mutual-exclusion"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Option<String> {
        if ev.kind != TraceKind::Mark {
            return None;
        }
        if is_acquire_mark(ev.a) {
            if let Some((holder, since)) = self.holder {
                return Some(format!(
                    "proc {} acquired the lock at cycle {} while proc {holder} \
                     has held it since cycle {since}",
                    ev.proc, ev.when
                ));
            }
            self.holder = Some((ev.proc, ev.when));
        } else if is_release_mark(ev.a) {
            match self.holder.take() {
                Some((holder, _)) if holder != ev.proc => {
                    return Some(format!(
                        "proc {} released the lock at cycle {} but proc {holder} \
                         holds it",
                        ev.proc, ev.when
                    ));
                }
                Some(_) => {}
                None => {
                    return Some(format!(
                        "proc {} released the lock at cycle {} but nobody holds it",
                        ev.proc, ev.when
                    ));
                }
            }
        }
        None
    }
}

/// Ticket locks grant in FIFO order: the `i`-th acquisition must come
/// from the processor whose fetch-add on the sequencer was applied
/// `i`-th. Watches `AmuApply` events on the sequencer address, so it is
/// only attached for mechanisms that route the fetch-add through the
/// AMU (AMO, MAO).
pub struct TicketFifo {
    ticket_addr: u64,
    grants: Vec<u16>,
    acquires: usize,
}

impl TicketFifo {
    /// Monitor FIFO order on the ticket sequencer at `ticket_addr`.
    pub fn new(ticket_addr: u64) -> Self {
        TicketFifo {
            ticket_addr,
            grants: Vec::new(),
            acquires: 0,
        }
    }
}

impl Monitor for TicketFifo {
    fn name(&self) -> &'static str {
        "ticket-fifo"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Option<String> {
        match ev.kind {
            TraceKind::AmuApply if ev.a == self.ticket_addr => {
                self.grants.push(ev.proc);
                None
            }
            TraceKind::Mark if is_acquire_mark(ev.a) => {
                let Some(&expected) = self.grants.get(self.acquires) else {
                    return Some(format!(
                        "proc {} acquired the lock at cycle {} before any \
                         unclaimed ticket was granted (acquisition #{})",
                        ev.proc,
                        ev.when,
                        self.acquires + 1
                    ));
                };
                self.acquires += 1;
                if expected != ev.proc {
                    return Some(format!(
                        "acquisition #{} at cycle {} went to proc {} but \
                         ticket #{0} was granted to proc {expected}: the \
                         ticket lock is not FIFO",
                        self.acquires, ev.when, ev.proc
                    ));
                }
                None
            }
            _ => None,
        }
    }
}

/// No processor exits barrier episode `e` before all `procs`
/// participants have entered it.
pub struct BarrierEpoch {
    procs: u64,
    /// Enter count per episode, indexed by `e - 1`.
    entered: Vec<u64>,
}

impl BarrierEpoch {
    /// Monitor a barrier over `procs` participants.
    pub fn new(procs: u16) -> Self {
        BarrierEpoch {
            procs: procs as u64,
            entered: Vec::new(),
        }
    }
}

impl Monitor for BarrierEpoch {
    fn name(&self) -> &'static str {
        "barrier-epoch"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Option<String> {
        if ev.kind != TraceKind::Mark {
            return None;
        }
        if is_acquire_mark(ev.a) {
            // Enter mark for episode `e = a / 2`.
            let e = (ev.a / 2) as usize;
            if self.entered.len() < e {
                self.entered.resize(e, 0);
            }
            self.entered[e - 1] += 1;
        } else if is_release_mark(ev.a) {
            // Exit mark for episode `e = (a - 1) / 2`.
            let e = ((ev.a - 1) / 2) as usize;
            let entered = self.entered.get(e - 1).copied().unwrap_or(0);
            if entered < self.procs {
                return Some(format!(
                    "proc {} exited barrier episode {e} at cycle {} with only \
                     {entered}/{} participants entered: episodes are not \
                     separated",
                    ev.proc, ev.when, self.procs
                ));
            }
        }
        None
    }
}

/// Every request tag is applied by an AMU at most once. The AMU logs an
/// `AmuApply` only for true applies — dedup-suppressed replays of an
/// already-served request do not count — so a duplicate flow here means
/// a retransmission slipped past the at-most-once machinery.
#[derive(Default)]
pub struct AtMostOnce {
    seen: FxHashSet<u64>,
}

impl AtMostOnce {
    /// Fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Monitor for AtMostOnce {
    fn name(&self) -> &'static str {
        "at-most-once"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Option<String> {
        if ev.kind == TraceKind::AmuApply && !self.seen.insert(ev.flow) {
            return Some(format!(
                "request flow {:#x} from proc {} was applied twice at the AMU \
                 (second apply at cycle {} on address {:#x}): a retransmission \
                 escaped duplicate suppression",
                ev.flow, ev.proc, ev.when, ev.a
            ));
        }
        None
    }
}

/// The directory only returns *idle* entries to the slab arena: a
/// reclaim of an entry with an open transaction or queued work would
/// orphan that work when the slot is reused. `DirReclaim` events carry
/// the idle flag recomputed at the removal site (`b = 1` when idle).
#[derive(Default)]
pub struct DirSanity;

impl DirSanity {
    /// Fresh monitor.
    pub fn new() -> Self {
        Self
    }
}

impl Monitor for DirSanity {
    fn name(&self) -> &'static str {
        "dir-sanity"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Option<String> {
        if ev.kind == TraceKind::DirReclaim && ev.b == 0 {
            return Some(format!(
                "directory entry for block {:#x} was reclaimed at cycle {} \
                 while still active (open transaction or queued requests)",
                ev.a, ev.when
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(proc: u16, id: u64, when: u64) -> TraceEvent {
        TraceEvent::instant(TraceKind::Mark, 0, when)
            .on_proc(proc)
            .args(id, 0)
    }

    fn apply(proc: u16, flow: u64, addr: u64, when: u64) -> TraceEvent {
        TraceEvent::instant(TraceKind::AmuApply, 0, when)
            .on_proc(proc)
            .args(addr, 0)
            .flow(flow)
    }

    #[test]
    fn mutual_exclusion_accepts_serial_handoff_and_flags_overlap() {
        let mut m = MutualExclusion::new();
        assert!(m.observe(&mark(0, 2, 10)).is_none(), "p0 acquires");
        assert!(m.observe(&mark(0, 3, 20)).is_none(), "p0 releases");
        assert!(m.observe(&mark(1, 2, 30)).is_none(), "p1 acquires");
        let v = m.observe(&mark(2, 2, 35)).expect("overlap detected");
        assert!(v.contains("proc 2") && v.contains("proc 1"), "{v}");
    }

    #[test]
    fn mutual_exclusion_flags_release_by_non_holder() {
        let mut m = MutualExclusion::new();
        assert!(m.observe(&mark(0, 2, 10)).is_none());
        let v = m.observe(&mark(1, 3, 15)).expect("wrong releaser");
        assert!(v.contains("proc 1") && v.contains("proc 0"), "{v}");
    }

    #[test]
    fn ticket_fifo_accepts_grant_order_and_flags_overtaking() {
        let mut m = TicketFifo::new(0x80);
        assert!(m.observe(&apply(0, 1, 0x80, 5)).is_none());
        assert!(m.observe(&apply(1, 2, 0x80, 6)).is_none());
        assert!(m.observe(&apply(2, 3, 0x90, 7)).is_none(), "other addr");
        assert!(m.observe(&mark(0, 2, 10)).is_none(), "ticket 0 → p0");
        let v = m.observe(&mark(2, 2, 12)).expect("p2 overtook p1");
        assert!(v.contains("proc 2") && v.contains("proc 1"), "{v}");
    }

    #[test]
    fn barrier_epoch_requires_all_entries_before_any_exit() {
        let mut m = BarrierEpoch::new(2);
        assert!(m.observe(&mark(0, 2, 10)).is_none(), "p0 enters e1");
        let v = m.observe(&mark(0, 3, 12)).expect("early exit");
        assert!(v.contains("1/2"), "{v}");
        let mut ok = BarrierEpoch::new(2);
        assert!(ok.observe(&mark(0, 2, 10)).is_none());
        assert!(ok.observe(&mark(1, 2, 11)).is_none());
        assert!(ok.observe(&mark(0, 3, 12)).is_none(), "all entered");
    }

    #[test]
    fn at_most_once_flags_duplicate_flow() {
        let mut m = AtMostOnce::new();
        assert!(m.observe(&apply(0, 7, 0x80, 5)).is_none());
        assert!(m.observe(&apply(0, 8, 0x80, 6)).is_none());
        let v = m.observe(&apply(0, 7, 0x80, 9)).expect("double apply");
        assert!(v.contains("0x7"), "{v}");
    }

    #[test]
    fn dir_sanity_trusts_idle_reclaims_only() {
        let mut m = DirSanity::new();
        let idle = TraceEvent::instant(TraceKind::DirReclaim, 0, 5).args(0x40, 1);
        assert!(m.observe(&idle).is_none());
        let bad = TraceEvent::instant(TraceKind::DirReclaim, 0, 9).args(0x40, 0);
        let v = m.observe(&bad).expect("active reclaim");
        assert!(v.contains("0x40"), "{v}");
    }

    #[test]
    fn monitor_tracer_latches_first_violation_and_keeps_tracing() {
        let mut t = MonitorTracer::new(8, vec![Box::new(MutualExclusion::new())]);
        t.record(mark(0, 2, 1));
        t.record(mark(1, 2, 2));
        t.record(mark(2, 2, 3));
        let v = t.take_violation().expect("violation latched");
        assert_eq!(v.monitor, "mutual-exclusion");
        assert_eq!(v.at, 2);
        assert!(t.take_violation().is_none(), "latched once");
        let buf = t.take_buf().expect("ring kept events");
        assert_eq!(buf.events.len(), 3);
    }
}
