//! The small models the schedule explorer enumerates.
//!
//! A [`VerifyModel`] describes one bounded verification workload: a
//! mechanism, a barrier or ticket-lock kernel at a small processor
//! count, and the choice structure the explorer may vary — per-proc
//! arrival skew, per-delivery reorder skew, optional duplication, and
//! retry jitter. [`VerifyModel::run_once`] executes the model under a
//! forced choice-tape prefix with the full monitor stack attached and
//! reduces the run to a deterministic [`Outcome`] whose fingerprint
//! the explorer dedups on.
//!
//! The model's canonical JSON document (and its 128-bit key) folds in
//! the complete machine configuration plus the campaign
//! [`CODE_FINGERPRINT`], so schedule documents minted under one
//! simulator refuse to replay under a drifted one.

use crate::monitor::{
    AtMostOnce, BarrierEpoch, DirSanity, Monitor, MonitorTracer, MutualExclusion, TicketFifo,
};
use amo_campaign::chaos::kind_name;
use amo_campaign::run::CODE_FINGERPRINT;
use amo_obs::Tracer;
use amo_sim::{Machine, QueueKind, SimErrorKind};
use amo_sync::{BarrierKernel, BarrierSpec, Mechanism, TicketLockKernel, TicketLockSpec, VarAlloc};
use amo_types::seed::stable_hash128;
use amo_types::tape::{ChoiceKind, ChoiceRec, SharedTape, TapeConfig, TapeState};
use amo_types::{Cycle, JsonWriter, NodeId, ProcId, SystemConfig};

/// Retained trace events per run (diagnostic bundles only; the
/// monitors themselves are streaming and unbounded-safe).
const TRACE_CAP: usize = 4096;

/// Hard event-loop bound per probe; the watchdog fires far earlier on
/// any real stall.
const MAX_VERIFY_CYCLES: Cycle = 1_000_000_000;

/// Which kernel a model runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyWorkload {
    /// Centralized barrier, `episodes` episodes per participant.
    Barrier {
        /// Barrier episodes each participant executes.
        episodes: u32,
    },
    /// Ticket lock, `rounds` acquisitions per participant.
    TicketLock {
        /// Acquisitions each participant performs.
        rounds: u32,
    },
}

impl VerifyWorkload {
    /// Stable workload tag for documents and specs.
    pub fn tag(&self) -> &'static str {
        match self {
            VerifyWorkload::Barrier { .. } => "barrier",
            VerifyWorkload::TicketLock { .. } => "ticket-lock",
        }
    }
}

/// One bounded verification model: workload, mechanism, and the choice
/// structure the explorer enumerates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifyModel {
    /// Synchronization mechanism under test.
    pub mech: Mechanism,
    /// Kernel and its size.
    pub workload: VerifyWorkload,
    /// Participating processors (must be a multiple of the config's
    /// procs-per-node, i.e. even for the paper machine).
    pub procs: u16,
    /// Alternatives for each per-proc arrival-skew choice (1 = all
    /// kernels start at cycle 0).
    pub skew_choices: u16,
    /// Cycles per arrival-skew unit: proc `p` starts at
    /// `chosen * skew_step`.
    pub skew_step: Cycle,
    /// Link reorder window (cycles); each delivery gets a tape choice
    /// of `0..=window` extra skew. 0 disables reordering but the tape
    /// still drives the delivery layer.
    pub reorder_window: Cycle,
    /// Offer a duplicate/no-duplicate tape choice per delivery.
    pub explore_dups: bool,
    /// Alternatives for each retry-jitter choice (1 = no jitter picks).
    pub jitter_choices: u16,
    /// Choice-point horizon: beyond this many consumed choices the tape
    /// stops branching (the *bound* of the bounded explorer).
    pub max_choice_points: u32,
    /// No-progress watchdog window per probe, cycles.
    pub watchdog: Cycle,
    /// Arm the test-only planted bug: dedup-suppressed AMU replays log
    /// a second apply record for the at-most-once monitor to catch.
    pub planted_double_apply: bool,
}

impl VerifyModel {
    /// A model with the default bounded choice structure: two arrival
    /// offsets per proc, reorder window 2, a 10-choice horizon.
    pub fn new(mech: Mechanism, workload: VerifyWorkload, procs: u16) -> Self {
        VerifyModel {
            mech,
            workload,
            procs,
            skew_choices: 2,
            skew_step: 40,
            reorder_window: 2,
            explore_dups: false,
            jitter_choices: 1,
            max_choice_points: 10,
            watchdog: 2_000_000,
            planted_double_apply: false,
        }
    }

    /// The machine configuration this model runs under. The reorder
    /// window arms the delivery layer's recovery machinery (per-hub
    /// dedup, end-to-end retransmission); when the model explores
    /// duplicates with a zero window, a nominal duplication rate arms
    /// it instead — the taped oracle never consults the rate, only
    /// `delivery_enabled()` does.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::with_procs(self.procs);
        // One processor per node: on the paper's two-per-node machine a
        // 2-proc model would be a single node, every message would be
        // hub-local, and the delivery layer (where the interesting
        // schedule choices live) would never be consulted.
        cfg.procs_per_node = 1;
        cfg.faults.link_reorder_window = self.reorder_window;
        if self.explore_dups && !cfg.faults.delivery_enabled() {
            cfg.faults.link_dup_ppm = 1;
        }
        if cfg.faults.delivery_enabled() {
            cfg.faults.dedup_window = cfg.faults.dedup_window.max(self.procs as u32);
        }
        cfg
    }

    fn tape_config(&self) -> TapeConfig {
        TapeConfig {
            explore_dups: self.explore_dups,
            jitter_choices: self.jitter_choices,
            max_choice_points: self.max_choice_points,
        }
    }

    /// Canonical JSON document: every field that can change a run's
    /// outcome, the normalized machine configuration, and the campaign
    /// code fingerprint.
    pub fn canonical_doc(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.kv_str("code", CODE_FINGERPRINT);
        w.kv_str("mech", self.mech.label());
        w.kv_str("workload", self.workload.tag());
        match self.workload {
            VerifyWorkload::Barrier { episodes } => w.kv_u64("episodes", episodes as u64),
            VerifyWorkload::TicketLock { rounds } => w.kv_u64("rounds", rounds as u64),
        }
        w.kv_u64("procs", self.procs as u64);
        w.kv_u64("skew_choices", self.skew_choices as u64);
        w.kv_u64("skew_step", self.skew_step);
        w.kv_u64("reorder_window", self.reorder_window);
        w.key("explore_dups");
        w.bool_val(self.explore_dups);
        w.kv_u64("jitter_choices", self.jitter_choices as u64);
        w.kv_u64("max_choice_points", self.max_choice_points as u64);
        w.kv_u64("watchdog", self.watchdog);
        w.key("planted_double_apply");
        w.bool_val(self.planted_double_apply);
        w.key("config");
        w.raw_val(&self.config().canonical_json());
        w.end_obj();
        w.finish()
    }

    /// The model's content key (`stable_hash128` of the canonical doc).
    pub fn key(&self) -> (u64, u64) {
        stable_hash128(self.canonical_doc().as_bytes())
    }

    /// Execute the model once under a forced choice-tape `prefix` with
    /// the full monitor stack attached. Deterministic: same model,
    /// same prefix, same [`Outcome`].
    pub fn run_once(&self, prefix: &[u16]) -> Outcome {
        let tape = TapeState::with_prefix(self.tape_config(), prefix.to_vec()).shared();
        let mut alloc = VarAlloc::new();
        let built = self.build_spec(&mut alloc);

        let mut monitors: Vec<Box<dyn Monitor>> =
            vec![Box::new(AtMostOnce::new()), Box::new(DirSanity::new())];
        match &built {
            Built::Barrier(_) => monitors.push(Box::new(BarrierEpoch::new(self.procs))),
            Built::Lock(spec) => {
                monitors.push(Box::new(MutualExclusion::new()));
                // LL/SC and plain atomics grab tickets coherently — no
                // AMU applies to order against (soundness boundary,
                // DESIGN.md §12).
                if matches!(self.mech, Mechanism::Amo | Mechanism::Mao) {
                    monitors.push(Box::new(TicketFifo::new(spec.next_ticket.0)));
                }
            }
        }

        let mut machine = Machine::with_tracer(
            self.config(),
            QueueKind::Calendar,
            MonitorTracer::new(TRACE_CAP, monitors),
        );
        self.prepare(&mut machine, &tape, &built);
        let res = machine.run(MAX_VERIFY_CYCLES);

        let kind = match (&res.error, res.all_finished) {
            (Some(e), _) => Some(kind_name(&e.kind)),
            (None, false) => Some("Stall"),
            (None, true) => None,
        };
        let monitor = res.error.as_ref().and_then(|e| match e.kind {
            SimErrorKind::MonitorViolation { monitor } => Some(monitor),
            _ => None,
        });
        let detail = res.error.as_ref().map(|e| {
            e.bundle
                .violation
                .clone()
                .unwrap_or_else(|| e.kind.to_string())
        });
        let fingerprint = outcome_fingerprint(res.end, kind, machine.marks());

        let log = tape.borrow().log().to_vec();
        Outcome {
            log,
            end: res.end,
            kind,
            monitor,
            detail,
            fingerprint,
        }
    }

    /// The unmonitored twin of [`run_once`](Self::run_once): same
    /// config, same tape semantics, but a `NopTracer` machine — every
    /// instrumentation hook compiles away. Returns the end cycle and
    /// the outcome fingerprint computed identically to the monitored
    /// path, so passivity (monitors never perturb timing) is a direct
    /// equality check.
    pub fn run_unmonitored(&self, prefix: &[u16]) -> (Cycle, (u64, u64)) {
        let tape = TapeState::with_prefix(self.tape_config(), prefix.to_vec()).shared();
        let mut alloc = VarAlloc::new();
        let built = self.build_spec(&mut alloc);
        let mut machine = Machine::new(self.config());
        self.prepare(&mut machine, &tape, &built);
        let res = machine.run(MAX_VERIFY_CYCLES);
        let kind = match (&res.error, res.all_finished) {
            (Some(e), _) => Some(kind_name(&e.kind)),
            (None, false) => Some("Stall"),
            (None, true) => None,
        };
        (res.end, outcome_fingerprint(res.end, kind, machine.marks()))
    }

    fn build_spec(&self, alloc: &mut VarAlloc) -> Built {
        match self.workload {
            VerifyWorkload::Barrier { episodes } => Built::Barrier(BarrierSpec::build(
                alloc,
                self.mech,
                NodeId(0),
                self.procs,
                episodes,
            )),
            VerifyWorkload::TicketLock { rounds } => Built::Lock(TicketLockSpec::build(
                alloc,
                self.mech,
                NodeId(0),
                rounds,
                50,
            )),
        }
    }

    /// Attach the tape, arm the planted bug and watchdog, and install
    /// one kernel per proc — arrival skew is one tape choice per proc,
    /// consumed here in proc order before the run starts.
    fn prepare<T: Tracer>(&self, machine: &mut Machine<T>, tape: &SharedTape, built: &Built) {
        machine.set_schedule_tape(tape.clone());
        if self.planted_double_apply {
            machine.plant_amu_double_apply();
        }
        if self.watchdog > 0 {
            machine.enable_watchdog(self.watchdog);
        }
        for p in 0..self.procs {
            let pick = tape
                .borrow_mut()
                .choose(ChoiceKind::ArrivalSkew, self.skew_choices);
            let start = pick as Cycle * self.skew_step;
            match built {
                Built::Barrier(spec) => {
                    let work = vec![100; spec.episodes as usize];
                    machine.install_kernel(
                        ProcId(p),
                        Box::new(BarrierKernel::new(*spec, work)),
                        start,
                    );
                }
                Built::Lock(spec) => {
                    let think = vec![100; spec.rounds as usize];
                    machine.install_kernel(
                        ProcId(p),
                        Box::new(TicketLockKernel::new(*spec, think, p as u64 + 1, None)),
                        start,
                    );
                }
            }
        }
    }
}

/// The allocated workload spec (the FIFO monitor needs the ticket
/// sequencer's address, so specs are built before the machine).
enum Built {
    Barrier(BarrierSpec),
    Lock(TicketLockSpec),
}

/// Reduce a finished run to its observable outcome and hash it: end
/// cycle, outcome kind, and the complete mark history.
fn outcome_fingerprint(
    end: Cycle,
    kind: Option<&'static str>,
    marks: &[(ProcId, u32, Cycle)],
) -> (u64, u64) {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_u64("end", end);
    w.kv_str("kind", kind.unwrap_or("ok"));
    w.key("marks");
    w.begin_arr();
    for (p, id, at) in marks {
        w.begin_arr();
        w.u64_val(p.0 as u64);
        w.u64_val(*id as u64);
        w.u64_val(*at);
        w.end_arr();
    }
    w.end_arr();
    w.end_obj();
    stable_hash128(w.finish().as_bytes())
}

/// What one probe of a model under one tape prefix observably did.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Every choice the run consumed, with its arity — the branching
    /// structure the explorer expands.
    pub log: Vec<ChoiceRec>,
    /// Cycle of the last processed event.
    pub end: Cycle,
    /// Typed failure discriminant name (`"MonitorViolation"`, …),
    /// `"Stall"` for an undiagnosed stall, `None` for a clean finish.
    pub kind: Option<&'static str>,
    /// Firing monitor's name, when the failure is a monitor violation.
    pub monitor: Option<&'static str>,
    /// Violation detail (or the error's display) when the run failed.
    pub detail: Option<String>,
    /// `stable_hash128` over end cycle, outcome kind, and the complete
    /// mark history — the explorer's state-dedup key.
    pub fingerprint: (u64, u64),
}

impl Outcome {
    /// The choices this run actually took, position by position.
    pub fn chosen(&self) -> Vec<u16> {
        self.log.iter().map(|c| c.chosen).collect()
    }

    /// Outcome kind as a document string (`"ok"` for a clean finish).
    pub fn kind_str(&self) -> &'static str {
        self.kind.unwrap_or("ok")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_model() -> VerifyModel {
        VerifyModel::new(Mechanism::Amo, VerifyWorkload::TicketLock { rounds: 1 }, 2)
    }

    #[test]
    fn empty_prefix_run_finishes_clean_and_is_deterministic() {
        let m = lock_model();
        let a = m.run_once(&[]);
        assert_eq!(a.kind, None, "detail: {:?}", a.detail);
        assert!(!a.log.is_empty(), "tape consumed choices");
        let b = m.run_once(&[]);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.chosen(), b.chosen());
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn arrival_skew_choice_changes_the_outcome_fingerprint() {
        let m = lock_model();
        let base = m.run_once(&[]);
        let skewed = m.run_once(&[1]);
        assert_eq!(skewed.log[0].chosen, 1, "prefix forced the skew pick");
        assert_ne!(
            base.fingerprint, skewed.fingerprint,
            "a delayed kernel start must move the marks"
        );
    }

    #[test]
    fn barrier_model_runs_clean_under_default_tape() {
        let m = VerifyModel::new(Mechanism::Amo, VerifyWorkload::Barrier { episodes: 2 }, 2);
        let out = m.run_once(&[]);
        assert_eq!(out.kind, None, "detail: {:?}", out.detail);
    }

    #[test]
    fn monitored_runs_are_timing_identical_to_unmonitored() {
        // Passivity: the monitor stack observes the trace stream and
        // never schedules anything, so a monitored run must match the
        // NopTracer build cycle for cycle — end time, marks, outcome.
        for model in [
            lock_model(),
            VerifyModel::new(Mechanism::Amo, VerifyWorkload::Barrier { episodes: 2 }, 4),
        ] {
            for prefix in [&[][..], &[1, 1, 0, 2][..]] {
                let monitored = model.run_once(prefix);
                let (end, fingerprint) = model.run_unmonitored(prefix);
                assert_eq!(monitored.end, end, "model {model:?} prefix {prefix:?}");
                assert_eq!(
                    monitored.fingerprint, fingerprint,
                    "model {model:?} prefix {prefix:?}"
                );
            }
        }
    }

    #[test]
    fn model_key_pins_every_knob() {
        let m = lock_model();
        let mut other = m;
        other.reorder_window = 3;
        assert_ne!(m.key(), other.key());
        let mut planted = m;
        planted.planted_double_apply = true;
        assert_ne!(m.key(), planted.key());
    }
}
