//! Seeded, deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] answers pure questions — "is this transmission
//! corrupted?", "how much jitter does this packet pick up?", "is this
//! node's AMU browned out right now?" — from a keyed hash of the
//! question itself (seed, endpoints, time, sequence number, attempt).
//! There is no mutable RNG stream, so the answers do not depend on the
//! order components ask, only on what they ask: same seed + same
//! simulated history ⇒ bit-identical fault pattern. That is what makes
//! chaos runs replayable and lets tests assert bit-identical output.
//!
//! The plan is pure data derived from [`FaultConfig`]; the recovery
//! machinery (link replay, NACK backoff, watchdog) lives with the
//! components it protects (`amo-noc`, `amo-cpu`, `amo-sim`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amo_types::seed::splitmix64 as mix;
use amo_types::tape::ChoiceKind;
use amo_types::{Cycle, FaultConfig, SharedTape};

/// One part-per-million denominator for error-rate draws.
const PPM: u64 = 1_000_000;

/// The runtime fault oracle. Cheap to copy; construct once per machine
/// from the [`SystemConfig`](amo_types::SystemConfig)'s `faults` field.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Plan implementing `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The no-fault plan: every query answers "no fault, zero cycles".
    pub fn none() -> Self {
        FaultPlan {
            cfg: FaultConfig::none(),
        }
    }

    /// The configuration this plan implements.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True if any link-level fault source is active. Fabrics use this
    /// to skip the fault path entirely — the zero-rate plan must add
    /// literally zero cycles.
    #[inline]
    pub fn link_faults_enabled(&self) -> bool {
        self.cfg.link_error_ppm > 0 || self.cfg.jitter_max > 0
    }

    /// True if AMU brown-out windows are configured.
    #[inline]
    pub fn brownouts_enabled(&self) -> bool {
        self.cfg.amu_brownout_period > 0 && self.cfg.amu_brownout_len > 0
    }

    /// True if any delivery-fault source (drop, duplication, reorder) is
    /// active. Gates both the fabric's delivery-fault path and every
    /// piece of end-to-end recovery machinery (e2e timers, dedup
    /// windows), so the zero-rate plan stays bit-identical to the
    /// unfaulted machine.
    #[inline]
    pub fn delivery_faults_enabled(&self) -> bool {
        self.cfg.delivery_enabled()
    }

    /// Link replay budget before a packet's link is declared failed.
    #[inline]
    pub fn max_link_retries(&self) -> u32 {
        self.cfg.max_link_retries
    }

    /// Effective corruption rate (ppm) at time `now`, accounting for
    /// burst windows.
    fn rate_ppm(&self, now: Cycle) -> u64 {
        let base = self.cfg.link_error_ppm as u64;
        if self.cfg.burst_period > 0 && now % self.cfg.burst_period < self.cfg.burst_len {
            (base * self.cfg.burst_multiplier as u64).min(PPM)
        } else {
            base
        }
    }

    /// Is transmission `attempt` of packet (`src` → `dst`, sequence
    /// `seq`, departing at `now`) corrupted on the wire?
    #[inline]
    pub fn corrupts(&self, src: u16, dst: u16, now: Cycle, seq: u64, attempt: u32) -> bool {
        let rate = self.rate_ppm(now);
        if rate == 0 {
            return false;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((src as u64) << 48 | (dst as u64) << 32 | attempt as u64)
            .wrapping_add(seq.rotate_left(17));
        mix(key) % PPM < rate
    }

    /// Delay jitter (cycles) this packet picks up in flight; 0..=jitter_max.
    #[inline]
    pub fn jitter(&self, src: u16, dst: u16, seq: u64) -> Cycle {
        if self.cfg.jitter_max == 0 {
            return 0;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0xE703_7ED1_A0B4_28DB)
            .wrapping_add((dst as u64) << 48 | (src as u64) << 32)
            .wrapping_add(seq.rotate_left(29));
        mix(key) % (self.cfg.jitter_max + 1)
    }

    /// Effective delivery-fault rate (ppm) for `base` at time `now`:
    /// burst windows boost delivery faults the same way they boost
    /// corruption (a congested interface drops and duplicates in the
    /// same correlated episodes it corrupts).
    fn delivery_rate_ppm(&self, base: u32, now: Cycle) -> u64 {
        let base = base as u64;
        if self.cfg.burst_period > 0 && now % self.cfg.burst_period < self.cfg.burst_len {
            (base * self.cfg.burst_multiplier as u64).min(PPM)
        } else {
            base
        }
    }

    /// Is delivery `attempt` of packet (`src` → `dst`, sequence `seq`,
    /// delivered at `now`) silently dropped at the destination
    /// interface? The attempt index keys retransmissions of the same
    /// sequence independently, so an end-to-end retry is not doomed to
    /// the original's fate.
    #[inline]
    pub fn drops(&self, src: u16, dst: u16, now: Cycle, seq: u64, attempt: u32) -> bool {
        let rate = self.delivery_rate_ppm(self.cfg.link_drop_ppm, now);
        if rate == 0 {
            return false;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0x9E6C_63D0_876A_7A35)
            .wrapping_add((src as u64) << 48 | (dst as u64) << 32 | attempt as u64)
            .wrapping_add(seq.rotate_left(23));
        mix(key) % PPM < rate
    }

    /// Is this delivery duplicated at the destination interface (both
    /// copies handed to the handler)?
    #[inline]
    pub fn duplicates(&self, src: u16, dst: u16, now: Cycle, seq: u64, attempt: u32) -> bool {
        let rate = self.delivery_rate_ppm(self.cfg.link_dup_ppm, now);
        if rate == 0 {
            return false;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            .wrapping_add((dst as u64) << 48 | (src as u64) << 32 | attempt as u64)
            .wrapping_add(seq.rotate_left(41));
        mix(key) % PPM < rate
    }

    /// Extra delivery skew (cycles, 0..=`link_reorder_window`) this
    /// packet picks up *after* its ingress reservation. The skew does
    /// not advance the interface's reservation clock, so a later packet
    /// with less skew overtakes it — bounded reordering.
    #[inline]
    pub fn reorder_skew(&self, src: u16, dst: u16, seq: u64) -> Cycle {
        if self.cfg.link_reorder_window == 0 {
            return 0;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0x8EBC_6AF0_9C88_C6E3)
            .wrapping_add((src as u64) << 48 | (dst as u64) << 32)
            .wrapping_add(seq.rotate_left(31));
        mix(key) % (self.cfg.link_reorder_window + 1)
    }

    /// Cycles one link-level replay costs: a full retransmission delay
    /// plus exponential backoff — base × 2^attempt, capped at 16× base.
    #[inline]
    pub fn replay_backoff(&self, attempt: u32) -> Cycle {
        self.cfg.link_retry_backoff << attempt.min(4)
    }

    /// Is `node`'s AMU browned out (refusing dispatches) at `now`?
    #[inline]
    pub fn amu_browned_out(&self, node: u16, now: Cycle) -> bool {
        if !self.brownouts_enabled() {
            return false;
        }
        // Stagger windows across nodes so brown-outs are not
        // machine-synchronous (that would just look like a global pause).
        let phase = mix(self.cfg.seed.wrapping_add(node as u64)) % self.cfg.amu_brownout_period;
        (now + phase) % self.cfg.amu_brownout_period < self.cfg.amu_brownout_len
    }
}

/// Resolves the delivery layer's discrete schedule choices — reorder
/// skew, duplication — either *implicitly* (the [`FaultPlan`]'s keyed
/// hash, the default) or *explicitly* (an attached choice tape the
/// schedule explorer controls; see `amo_types::tape`). The fabric asks
/// this oracle instead of the plan directly, so "which interleaving are
/// we in?" has exactly one answer site that enumeration can take over.
#[derive(Clone, Debug, Default)]
pub enum ScheduleOracle {
    /// Implicit choices from the fault plan's keyed hash.
    #[default]
    Hashed,
    /// Explicit choices popped from the shared tape.
    Taped(SharedTape),
}

impl ScheduleOracle {
    /// True when a tape is attached (the explorer is driving).
    pub fn is_taped(&self) -> bool {
        matches!(self, ScheduleOracle::Taped(_))
    }

    /// Should the delivery-fault layer run at all? Hashed mode follows
    /// the plan's rates; taped mode always engages it (the tape decides
    /// per message, even with every rate at zero).
    #[inline]
    pub fn delivery_active(&self, plan: &FaultPlan) -> bool {
        match self {
            ScheduleOracle::Hashed => plan.delivery_faults_enabled(),
            ScheduleOracle::Taped(_) => true,
        }
    }

    /// Reorder skew for this delivery: hashed draw, or a tape choice in
    /// `0..=link_reorder_window`.
    #[inline]
    pub fn reorder_skew(&self, plan: &FaultPlan, src: u16, dst: u16, seq: u64) -> Cycle {
        match self {
            ScheduleOracle::Hashed => plan.reorder_skew(src, dst, seq),
            ScheduleOracle::Taped(tape) => {
                let window = plan.config().link_reorder_window.min(u16::MAX as u64 - 1);
                tape.borrow_mut()
                    .choose(ChoiceKind::ReorderSkew, window as u16 + 1) as Cycle
            }
        }
    }

    /// Is this delivery dropped? Tape mode never drops — a drop only
    /// stretches a run through the e2e-recovery path the chaos layer
    /// already probes, so the explorer leaves it out of the choice space
    /// (documented soundness boundary).
    #[inline]
    pub fn drops(&self, plan: &FaultPlan, src: u16, dst: u16, now: Cycle, seq: u64) -> bool {
        match self {
            ScheduleOracle::Hashed => plan.drops(src, dst, now, seq, 0),
            ScheduleOracle::Taped(_) => false,
        }
    }

    /// Is this delivery duplicated? In tape mode this is a two-way
    /// choice point when the tape's config explores duplicates, else
    /// never.
    #[inline]
    pub fn duplicates(&self, plan: &FaultPlan, src: u16, dst: u16, now: Cycle, seq: u64) -> bool {
        match self {
            ScheduleOracle::Hashed => plan.duplicates(src, dst, now, seq, 0),
            ScheduleOracle::Taped(tape) => {
                let mut t = tape.borrow_mut();
                t.cfg.explore_dups && t.choose(ChoiceKind::Duplicate, 2) == 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cfg: FaultConfig) -> FaultPlan {
        FaultPlan::new(cfg)
    }

    #[test]
    fn zero_rate_plan_answers_nothing() {
        let p = FaultPlan::none();
        assert!(!p.link_faults_enabled());
        assert!(!p.brownouts_enabled());
        for seq in 0..1000 {
            assert!(!p.corrupts(0, 1, seq * 7, seq, 0));
            assert_eq!(p.jitter(0, 1, seq), 0);
            assert!(!p.amu_browned_out(0, seq));
        }
    }

    #[test]
    fn same_question_same_answer() {
        let p = plan(FaultConfig {
            link_error_ppm: 100_000,
            jitter_max: 32,
            seed: 42,
            ..FaultConfig::none()
        });
        for seq in 0..500 {
            let a = p.corrupts(3, 7, 1_000 + seq, seq, 1);
            let b = p.corrupts(3, 7, 1_000 + seq, seq, 1);
            assert_eq!(a, b);
            assert_eq!(p.jitter(3, 7, seq), p.jitter(3, 7, seq));
        }
    }

    #[test]
    fn different_seed_different_pattern() {
        let a = plan(FaultConfig {
            link_error_ppm: 100_000,
            seed: 1,
            ..FaultConfig::none()
        });
        let b = plan(FaultConfig {
            link_error_ppm: 100_000,
            seed: 2,
            ..FaultConfig::none()
        });
        let differs =
            (0..2_000).any(|seq| a.corrupts(0, 1, 0, seq, 0) != b.corrupts(0, 1, 0, seq, 0));
        assert!(differs, "distinct seeds should disagree somewhere");
    }

    #[test]
    fn corruption_rate_tracks_config() {
        let p = plan(FaultConfig {
            link_error_ppm: 250_000, // 25%
            seed: 7,
            ..FaultConfig::none()
        });
        let n = 20_000u64;
        let hits = (0..n).filter(|&seq| p.corrupts(1, 2, seq, seq, 0)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&frac), "observed rate {frac}");
    }

    #[test]
    fn burst_windows_multiply_rate() {
        let p = plan(FaultConfig {
            link_error_ppm: 10_000, // 1%
            burst_multiplier: 20,   // 20% inside bursts
            burst_period: 1_000,
            burst_len: 100,
            seed: 9,
            ..FaultConfig::none()
        });
        let inside: usize = (0..10_000)
            .filter(|&seq| p.corrupts(0, 1, (seq % 100) as Cycle, seq, 0))
            .count();
        let outside: usize = (0..10_000)
            .filter(|&seq| p.corrupts(0, 1, 500 + (seq % 100) as Cycle, seq, 0))
            .count();
        assert!(
            inside > outside * 5,
            "burst window should be much hotter: {inside} vs {outside}"
        );
    }

    #[test]
    fn jitter_bounded_and_varied() {
        let p = plan(FaultConfig {
            jitter_max: 16,
            seed: 11,
            ..FaultConfig::none()
        });
        let vals: Vec<Cycle> = (0..200).map(|seq| p.jitter(0, 1, seq)).collect();
        assert!(vals.iter().all(|&j| j <= 16));
        assert!(vals.iter().any(|&j| j > 0), "some jitter expected");
        assert!(vals.windows(2).any(|w| w[0] != w[1]), "jitter should vary");
    }

    #[test]
    fn zero_rate_delivery_plan_answers_nothing() {
        let p = FaultPlan::none();
        assert!(!p.delivery_faults_enabled());
        for seq in 0..1_000 {
            assert!(!p.drops(0, 1, seq * 3, seq, 0));
            assert!(!p.duplicates(0, 1, seq * 3, seq, 0));
            assert_eq!(p.reorder_skew(0, 1, seq), 0);
        }
    }

    #[test]
    fn delivery_rates_track_config() {
        let p = plan(FaultConfig {
            link_drop_ppm: 200_000, // 20%
            link_dup_ppm: 100_000,  // 10%
            seed: 13,
            ..FaultConfig::none()
        });
        assert!(p.delivery_faults_enabled());
        let n = 20_000u64;
        let drops = (0..n).filter(|&s| p.drops(1, 2, s, s, 0)).count() as f64 / n as f64;
        let dups = (0..n).filter(|&s| p.duplicates(1, 2, s, s, 0)).count() as f64 / n as f64;
        assert!((0.17..0.23).contains(&drops), "observed drop rate {drops}");
        assert!((0.08..0.12).contains(&dups), "observed dup rate {dups}");
    }

    #[test]
    fn retransmission_attempts_draw_independently() {
        let p = plan(FaultConfig {
            link_drop_ppm: 500_000,
            seed: 5,
            ..FaultConfig::none()
        });
        // A sequence doomed on attempt 0 must not be doomed on every
        // attempt: some retry of every packet eventually gets through.
        let escapes = (0..200).all(|seq| (0..32).any(|a| !p.drops(0, 1, 100, seq, a)));
        assert!(escapes, "every packet must have a surviving attempt");
    }

    #[test]
    fn reorder_skew_bounded_varied_and_deterministic() {
        let p = plan(FaultConfig {
            link_reorder_window: 48,
            seed: 17,
            ..FaultConfig::none()
        });
        let vals: Vec<Cycle> = (0..300).map(|s| p.reorder_skew(2, 5, s)).collect();
        assert!(vals.iter().all(|&v| v <= 48));
        assert!(vals.iter().any(|&v| v > 0));
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
        for s in 0..300 {
            assert_eq!(p.reorder_skew(2, 5, s), vals[s as usize]);
        }
    }

    #[test]
    fn replay_backoff_is_exponential_and_capped() {
        let p = plan(FaultConfig {
            link_retry_backoff: 64,
            ..FaultConfig::none()
        });
        assert_eq!(p.replay_backoff(0), 64);
        assert_eq!(p.replay_backoff(1), 128);
        assert_eq!(p.replay_backoff(2), 256);
        assert_eq!(p.replay_backoff(4), 1024);
        assert_eq!(p.replay_backoff(10), 1024, "capped at 16x");
    }

    #[test]
    fn brownout_windows_are_periodic_and_staggered() {
        let p = plan(FaultConfig {
            amu_brownout_period: 1_000,
            amu_brownout_len: 100,
            seed: 3,
            ..FaultConfig::none()
        });
        for node in 0..4u16 {
            let down: usize = (0..10_000).filter(|&t| p.amu_browned_out(node, t)).count();
            assert_eq!(down, 1_000, "node {node}: 10% duty cycle expected");
        }
        // Staggering: at least one instant where node 0 and node 1 disagree.
        let disagree = (0..2_000).any(|t| p.amu_browned_out(0, t) != p.amu_browned_out(1, t));
        assert!(disagree, "brown-outs should not be machine-synchronous");
    }
}
