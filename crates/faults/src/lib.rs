//! Seeded, deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] answers pure questions — "is this transmission
//! corrupted?", "how much jitter does this packet pick up?", "is this
//! node's AMU browned out right now?" — from a keyed hash of the
//! question itself (seed, endpoints, time, sequence number, attempt).
//! There is no mutable RNG stream, so the answers do not depend on the
//! order components ask, only on what they ask: same seed + same
//! simulated history ⇒ bit-identical fault pattern. That is what makes
//! chaos runs replayable and lets tests assert bit-identical output.
//!
//! The plan is pure data derived from [`FaultConfig`]; the recovery
//! machinery (link replay, NACK backoff, watchdog) lives with the
//! components it protects (`amo-noc`, `amo-cpu`, `amo-sim`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amo_types::seed::splitmix64 as mix;
use amo_types::{Cycle, FaultConfig};

/// One part-per-million denominator for error-rate draws.
const PPM: u64 = 1_000_000;

/// The runtime fault oracle. Cheap to copy; construct once per machine
/// from the [`SystemConfig`](amo_types::SystemConfig)'s `faults` field.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Plan implementing `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The no-fault plan: every query answers "no fault, zero cycles".
    pub fn none() -> Self {
        FaultPlan {
            cfg: FaultConfig::none(),
        }
    }

    /// The configuration this plan implements.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True if any link-level fault source is active. Fabrics use this
    /// to skip the fault path entirely — the zero-rate plan must add
    /// literally zero cycles.
    #[inline]
    pub fn link_faults_enabled(&self) -> bool {
        self.cfg.link_error_ppm > 0 || self.cfg.jitter_max > 0
    }

    /// True if AMU brown-out windows are configured.
    #[inline]
    pub fn brownouts_enabled(&self) -> bool {
        self.cfg.amu_brownout_period > 0 && self.cfg.amu_brownout_len > 0
    }

    /// Link replay budget before a packet's link is declared failed.
    #[inline]
    pub fn max_link_retries(&self) -> u32 {
        self.cfg.max_link_retries
    }

    /// Effective corruption rate (ppm) at time `now`, accounting for
    /// burst windows.
    fn rate_ppm(&self, now: Cycle) -> u64 {
        let base = self.cfg.link_error_ppm as u64;
        if self.cfg.burst_period > 0 && now % self.cfg.burst_period < self.cfg.burst_len {
            (base * self.cfg.burst_multiplier as u64).min(PPM)
        } else {
            base
        }
    }

    /// Is transmission `attempt` of packet (`src` → `dst`, sequence
    /// `seq`, departing at `now`) corrupted on the wire?
    #[inline]
    pub fn corrupts(&self, src: u16, dst: u16, now: Cycle, seq: u64, attempt: u32) -> bool {
        let rate = self.rate_ppm(now);
        if rate == 0 {
            return false;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((src as u64) << 48 | (dst as u64) << 32 | attempt as u64)
            .wrapping_add(seq.rotate_left(17));
        mix(key) % PPM < rate
    }

    /// Delay jitter (cycles) this packet picks up in flight; 0..=jitter_max.
    #[inline]
    pub fn jitter(&self, src: u16, dst: u16, seq: u64) -> Cycle {
        if self.cfg.jitter_max == 0 {
            return 0;
        }
        let key = self
            .cfg
            .seed
            .wrapping_mul(0xE703_7ED1_A0B4_28DB)
            .wrapping_add((dst as u64) << 48 | (src as u64) << 32)
            .wrapping_add(seq.rotate_left(29));
        mix(key) % (self.cfg.jitter_max + 1)
    }

    /// Cycles one link-level replay costs: a full retransmission delay
    /// plus exponential backoff — base × 2^attempt, capped at 16× base.
    #[inline]
    pub fn replay_backoff(&self, attempt: u32) -> Cycle {
        self.cfg.link_retry_backoff << attempt.min(4)
    }

    /// Is `node`'s AMU browned out (refusing dispatches) at `now`?
    #[inline]
    pub fn amu_browned_out(&self, node: u16, now: Cycle) -> bool {
        if !self.brownouts_enabled() {
            return false;
        }
        // Stagger windows across nodes so brown-outs are not
        // machine-synchronous (that would just look like a global pause).
        let phase = mix(self.cfg.seed.wrapping_add(node as u64)) % self.cfg.amu_brownout_period;
        (now + phase) % self.cfg.amu_brownout_period < self.cfg.amu_brownout_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cfg: FaultConfig) -> FaultPlan {
        FaultPlan::new(cfg)
    }

    #[test]
    fn zero_rate_plan_answers_nothing() {
        let p = FaultPlan::none();
        assert!(!p.link_faults_enabled());
        assert!(!p.brownouts_enabled());
        for seq in 0..1000 {
            assert!(!p.corrupts(0, 1, seq * 7, seq, 0));
            assert_eq!(p.jitter(0, 1, seq), 0);
            assert!(!p.amu_browned_out(0, seq));
        }
    }

    #[test]
    fn same_question_same_answer() {
        let p = plan(FaultConfig {
            link_error_ppm: 100_000,
            jitter_max: 32,
            seed: 42,
            ..FaultConfig::none()
        });
        for seq in 0..500 {
            let a = p.corrupts(3, 7, 1_000 + seq, seq, 1);
            let b = p.corrupts(3, 7, 1_000 + seq, seq, 1);
            assert_eq!(a, b);
            assert_eq!(p.jitter(3, 7, seq), p.jitter(3, 7, seq));
        }
    }

    #[test]
    fn different_seed_different_pattern() {
        let a = plan(FaultConfig {
            link_error_ppm: 100_000,
            seed: 1,
            ..FaultConfig::none()
        });
        let b = plan(FaultConfig {
            link_error_ppm: 100_000,
            seed: 2,
            ..FaultConfig::none()
        });
        let differs =
            (0..2_000).any(|seq| a.corrupts(0, 1, 0, seq, 0) != b.corrupts(0, 1, 0, seq, 0));
        assert!(differs, "distinct seeds should disagree somewhere");
    }

    #[test]
    fn corruption_rate_tracks_config() {
        let p = plan(FaultConfig {
            link_error_ppm: 250_000, // 25%
            seed: 7,
            ..FaultConfig::none()
        });
        let n = 20_000u64;
        let hits = (0..n).filter(|&seq| p.corrupts(1, 2, seq, seq, 0)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&frac), "observed rate {frac}");
    }

    #[test]
    fn burst_windows_multiply_rate() {
        let p = plan(FaultConfig {
            link_error_ppm: 10_000, // 1%
            burst_multiplier: 20,   // 20% inside bursts
            burst_period: 1_000,
            burst_len: 100,
            seed: 9,
            ..FaultConfig::none()
        });
        let inside: usize = (0..10_000)
            .filter(|&seq| p.corrupts(0, 1, (seq % 100) as Cycle, seq, 0))
            .count();
        let outside: usize = (0..10_000)
            .filter(|&seq| p.corrupts(0, 1, 500 + (seq % 100) as Cycle, seq, 0))
            .count();
        assert!(
            inside > outside * 5,
            "burst window should be much hotter: {inside} vs {outside}"
        );
    }

    #[test]
    fn jitter_bounded_and_varied() {
        let p = plan(FaultConfig {
            jitter_max: 16,
            seed: 11,
            ..FaultConfig::none()
        });
        let vals: Vec<Cycle> = (0..200).map(|seq| p.jitter(0, 1, seq)).collect();
        assert!(vals.iter().all(|&j| j <= 16));
        assert!(vals.iter().any(|&j| j > 0), "some jitter expected");
        assert!(vals.windows(2).any(|w| w[0] != w[1]), "jitter should vary");
    }

    #[test]
    fn replay_backoff_is_exponential_and_capped() {
        let p = plan(FaultConfig {
            link_retry_backoff: 64,
            ..FaultConfig::none()
        });
        assert_eq!(p.replay_backoff(0), 64);
        assert_eq!(p.replay_backoff(1), 128);
        assert_eq!(p.replay_backoff(2), 256);
        assert_eq!(p.replay_backoff(4), 1024);
        assert_eq!(p.replay_backoff(10), 1024, "capped at 16x");
    }

    #[test]
    fn brownout_windows_are_periodic_and_staggered() {
        let p = plan(FaultConfig {
            amu_brownout_period: 1_000,
            amu_brownout_len: 100,
            seed: 3,
            ..FaultConfig::none()
        });
        for node in 0..4u16 {
            let down: usize = (0..10_000).filter(|&t| p.amu_browned_out(node, t)).count();
            assert_eq!(down, 1_000, "node {node}: 10% duty cycle expected");
        }
        // Staggering: at least one instant where node 0 and node 1 disagree.
        let disagree = (0..2_000).any(|t| p.amu_browned_out(0, t) != p.amu_browned_out(1, t));
        assert!(disagree, "brown-outs should not be machine-synchronous");
    }
}
