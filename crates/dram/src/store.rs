//! The backing value store of a node's local memory.
//!
//! Sparse: only words ever written occupy space; everything else reads as
//! zero (the simulated workloads' variables start zero-initialized).

use amo_types::FxHashMap;
use amo_types::{Addr, BlockAddr, BlockData, Word};

/// Word-granular sparse memory for one home node.
#[derive(Default)]
pub struct MemoryStore {
    words: FxHashMap<u64, Word>,
}

impl MemoryStore {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read one word.
    pub fn read_word(&self, addr: Addr) -> Word {
        debug_assert!(addr.is_word_aligned());
        *self.words.get(&addr.0).unwrap_or(&0)
    }

    /// Write one word.
    pub fn write_word(&mut self, addr: Addr, value: Word) {
        debug_assert!(addr.is_word_aligned());
        if value == 0 {
            self.words.remove(&addr.0);
        } else {
            self.words.insert(addr.0, value);
        }
    }

    /// Read a whole block of `words` words.
    pub fn read_block(&self, block: BlockAddr, words: usize) -> BlockData {
        let mut data = BlockData::zeroed(words);
        for i in 0..words {
            data.set_word(i, self.read_word(block.word_addr(i)));
        }
        data
    }

    /// Write a whole block back (writeback landing).
    pub fn write_block(&mut self, block: BlockAddr, data: &BlockData) {
        for i in 0..data.len() {
            self.write_word(block.word_addr(i), data.word(i));
        }
    }

    /// Number of nonzero words resident (diagnostics).
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::NodeId;

    fn a(off: u64) -> Addr {
        Addr::on_node(NodeId(2), off)
    }

    #[test]
    fn zero_initialized() {
        let m = MemoryStore::new();
        assert_eq!(m.read_word(a(0x100)), 0);
    }

    #[test]
    fn word_round_trip() {
        let mut m = MemoryStore::new();
        m.write_word(a(0x100), 42);
        assert_eq!(m.read_word(a(0x100)), 42);
        m.write_word(a(0x100), 0);
        assert_eq!(m.read_word(a(0x100)), 0);
        assert_eq!(m.nonzero_words(), 0, "zero writes reclaim space");
    }

    #[test]
    fn block_round_trip() {
        let mut m = MemoryStore::new();
        let blk = a(0x200).block(128);
        let mut data = BlockData::zeroed(16);
        data.set_word(3, 7);
        data.set_word(15, 9);
        m.write_block(blk, &data);
        assert_eq!(m.read_word(blk.word_addr(3)), 7);
        let back = m.read_block(blk, 16);
        assert_eq!(back, data);
    }

    #[test]
    fn blocks_do_not_alias_across_nodes() {
        let mut m = MemoryStore::new();
        m.write_word(Addr::on_node(NodeId(0), 0x100), 1);
        assert_eq!(m.read_word(Addr::on_node(NodeId(1), 0x100)), 0);
    }
}
