//! Per-channel DRAM timing.

use amo_types::{BlockAddr, Cycle};

/// Timing model of one node's DRAM backend.
///
/// Blocks interleave across channels by block number. An access waits for
/// its channel to become free, occupies it for `occupancy` cycles, and
/// returns data `latency` cycles after it starts.
pub struct DramTimer {
    channel_free: Vec<Cycle>,
    latency: Cycle,
    occupancy: Cycle,
    line_bytes: u64,
    accesses: u64,
}

impl DramTimer {
    /// Build a backend with `channels` channels.
    pub fn new(channels: usize, latency: Cycle, occupancy: Cycle, line_bytes: u64) -> Self {
        assert!(channels >= 1);
        assert!(line_bytes.is_power_of_two());
        DramTimer {
            channel_free: vec![0; channels],
            latency,
            occupancy,
            line_bytes,
            accesses: 0,
        }
    }

    #[inline]
    fn channel_of(&self, block: BlockAddr) -> usize {
        ((block.0 / self.line_bytes) as usize) % self.channel_free.len()
    }

    /// Schedule an access to `block` at time `now`; returns the cycle the
    /// data is available (read) or durable (write).
    pub fn access(&mut self, now: Cycle, block: BlockAddr) -> Cycle {
        self.accesses += 1;
        let ch = self.channel_of(block);
        let start = now.max(self.channel_free[ch]);
        self.channel_free[ch] = start + self.occupancy;
        start + self.latency
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer() -> DramTimer {
        DramTimer::new(16, 60, 8, 128)
    }

    #[test]
    fn idle_access_takes_latency() {
        let mut d = timer();
        assert_eq!(d.access(100, BlockAddr(0)), 160);
    }

    #[test]
    fn same_channel_accesses_queue() {
        let mut d = timer();
        // Blocks 0 and 16*128 map to the same channel (16 channels).
        let t1 = d.access(0, BlockAddr(0));
        let t2 = d.access(0, BlockAddr(16 * 128));
        assert_eq!(t1, 60);
        assert_eq!(t2, 68, "second access starts after 8-cycle occupancy");
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = timer();
        let t1 = d.access(0, BlockAddr(0));
        let t2 = d.access(0, BlockAddr(128));
        assert_eq!(t1, 60);
        assert_eq!(t2, 60);
        assert_eq!(d.accesses(), 2);
    }

    #[test]
    fn channel_frees_over_time() {
        let mut d = timer();
        d.access(0, BlockAddr(0));
        // By cycle 50 the channel (busy until 8) is free again.
        assert_eq!(d.access(50, BlockAddr(0)), 110);
    }
}
