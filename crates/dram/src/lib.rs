//! DRAM backend: timing (fixed latency + per-channel occupancy) and the
//! backing value store for each node's local memory.
//!
//! The paper's Table 1 gives a 60-cycle DRAM latency over 16 DDR channels
//! that deliver an 80-bit burst every two (hub) cycles. We model that as
//! a fixed access latency plus a short per-channel busy window, which is
//! enough to expose channel contention when many directory transactions
//! target the same home node — the contention that matters for the
//! synchronization storms the paper studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod store;
pub mod timing;

pub use store::MemoryStore;
pub use timing::DramTimer;
