//! Model-based property tests for the AMU: any interleaving of AMO
//! operations over a small set of words must return exactly the values
//! a scalar reference computes, regardless of cache hits, misses,
//! evictions, and flushes.

use amo_amu::{Amu, AmuEffect, AmuOp};
use amo_types::{Addr, AmoKind, NodeId, ProcId, ReqId, Stats, Word};
use proptest::prelude::*;
use std::collections::HashMap;

fn word(i: u8) -> Addr {
    // Words spread across distinct 128-byte blocks on one node.
    Addr::on_node(NodeId(0), 0x9000 + i as u64 * 256)
}

fn arb_kind() -> impl Strategy<Value = AmoKind> {
    prop_oneof![
        Just(AmoKind::Inc),
        Just(AmoKind::FetchAdd),
        Just(AmoKind::Swap),
        (0u64..20).prop_map(|expected| AmoKind::Cas { expected }),
        Just(AmoKind::Max),
        Just(AmoKind::Min),
    ]
}

/// Drive one AMO to completion through the AMU, resolving fine-gets
/// from the reference "memory" and applying puts/flushes back to it.
/// Returns the reply's old value.
fn drive_amo(
    amu: &mut Amu,
    memory: &mut HashMap<u64, Word>,
    now: &mut u64,
    kind: AmoKind,
    addr: Addr,
    operand: Word,
    stats: &mut Stats,
) -> Word {
    let op = AmuOp::Amo {
        req: ReqId(*now),
        requester: ProcId(0),
        kind,
        addr,
        operand,
        test: None,
    };
    let (ok, mut effects) = amu.submit(op, *now, stats);
    assert!(ok);
    let mut reply = None;
    while let Some(e) = effects.pop() {
        match e {
            AmuEffect::FineGet { token, addr, .. } => {
                let value = memory.get(&addr.0).copied().unwrap_or(0);
                effects.extend(
                    amu.fine_value(token, addr, value, *now + 10, stats)
                        .unwrap(),
                );
            }
            AmuEffect::FinePut { addr, value, .. } | AmuEffect::WriteMemWord { addr, value } => {
                memory.insert(addr.0, value);
            }
            AmuEffect::FineComplete { put, .. } => {
                if let Some((a, v)) = put {
                    memory.insert(a.0, v);
                }
            }
            AmuEffect::ReplyAt { when, payload, .. } => {
                *now = (*now).max(when);
                if let amo_types::Payload::AmoReply { old, .. } = payload {
                    reply = Some(old);
                }
            }
            AmuEffect::WakeAt { when } => {
                *now = (*now).max(when);
                effects.extend(amu.advance(*now, stats));
            }
            AmuEffect::ReadMemWord { .. } => unreachable!("no MAO ops in this test"),
        }
    }
    *now += 1;
    reply.expect("every AMO replies")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// With a tiny 2-word AMU cache and 5 hot words, operations
    /// constantly evict each other — and every reply must still match
    /// the scalar reference exactly, with memory + cache together always
    /// holding the up-to-date value.
    #[test]
    fn amu_replies_match_scalar_reference(
        ops in proptest::collection::vec((arb_kind(), 0u8..5, 0u64..20), 1..60),
    ) {
        let mut amu = Amu::new(2, 8, 64, 128);
        let mut memory: HashMap<u64, Word> = HashMap::new();
        let mut reference: HashMap<u64, Word> = HashMap::new();
        let mut stats = Stats::new();
        let mut now = 0u64;
        for (kind, w, operand) in ops {
            let addr = word(w);
            let old = drive_amo(&mut amu, &mut memory, &mut now, kind, addr, operand, &mut stats);
            let expect_old = reference.get(&addr.0).copied().unwrap_or(0);
            prop_assert_eq!(old, expect_old, "{:?} on word {}", kind, w);
            reference.insert(addr.0, kind.apply(expect_old, operand));
        }
        // Flush everything; cache + memory must equal the reference.
        for w in 0..5u8 {
            let addr = word(w);
            for (a, v) in amu.flush_block(addr.block(128)) {
                memory.insert(a.0, v);
            }
            let expect = reference.get(&addr.0).copied().unwrap_or(0);
            prop_assert_eq!(memory.get(&addr.0).copied().unwrap_or(0), expect,
                "word {} after flush", w);
        }
    }

    /// The delayed put fires exactly when the running value reaches the
    /// test target, never before, never after.
    #[test]
    fn delayed_put_fires_exactly_at_test(target in 2u64..12) {
        let mut amu = Amu::new(8, 8, 64, 128);
        let mut stats = Stats::new();
        let addr = word(0);
        let mut now = 0u64;
        let mut puts = 0u32;
        for i in 0..target {
            let op = AmuOp::Amo {
                req: ReqId(i),
                requester: ProcId(0),
                kind: AmoKind::Inc,
                addr,
                operand: 0,
                test: Some(target),
            };
            let (ok, mut effects) = amu.submit(op, now, &mut stats);
            prop_assert!(ok);
            while let Some(e) = effects.pop() {
                match e {
                    AmuEffect::FineGet { token, addr, .. } => {
                        effects.extend(amu.fine_value(token, addr, 0, now + 5, &mut stats).unwrap());
                    }
                    AmuEffect::FinePut { value, .. } => {
                        puts += 1;
                        prop_assert_eq!(value, target, "put value is the target");
                        prop_assert_eq!(i, target - 1, "put only at the last increment");
                    }
                    AmuEffect::FineComplete { put: Some((_, v)), .. } => {
                        puts += 1;
                        prop_assert_eq!(v, target);
                        prop_assert_eq!(i, target - 1);
                    }
                    AmuEffect::WakeAt { when } => {
                        now = now.max(when);
                        effects.extend(amu.advance(now, &mut stats));
                    }
                    AmuEffect::ReplyAt { when, .. } => now = now.max(when),
                    _ => {}
                }
            }
            now += 1;
        }
        prop_assert_eq!(puts, 1, "exactly one delayed put");
    }
}
