//! The Active Memory Unit (paper Sec. 3.1).
//!
//! The AMU sits in the home node's memory controller. Processors ship
//! simple atomic operations (`amo.inc`, `amo.fetchadd`) to it; the AMU
//! executes them next to memory instead of bouncing the cache block
//! across the network. Its key pieces, all modelled here:
//!
//! * a **dispatch queue** — commands wait until the function unit is
//!   ready;
//! * a tiny **AMU cache** (default 8 words) that coalesces operations to
//!   hot synchronization variables: a hit completes in 2 hub cycles
//!   "regardless of the number of processors contending";
//! * the **test value** mechanism: an `amo.inc` carries the value at
//!   which the AMU should *put* the word back (triggering the directory's
//!   fine-grained update fanout); `amo.fetchadd` puts after every
//!   operation;
//! * the **MAO port**: the same function unit reached through uncached
//!   (non-coherent) addresses, reproducing SGI Origin 2000 / Cray T3E
//!   memory-side atomics for the paper's MAO baseline.
//!
//! The AMU is pure logic: the hub executes the [`AmuEffect`]s it emits
//! and feeds back directory fine-get values and memory words.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod unit;

pub use unit::{Amu, AmuEffect, AmuError, AmuOp};

/// One recorded true apply: `(request, requester, address, pre-apply
/// value)` — see [`Amu::drain_applies_into`].
pub type AmuApplyRec = (
    amo_types::ReqId,
    amo_types::ProcId,
    amo_types::Addr,
    amo_types::Word,
);
