//! AMU state machine.

use amo_types::{Addr, AmoKind, BlockAddr, Cycle, Payload, ProcId, ReqId, Stats, Word};
use std::collections::VecDeque;

/// A command submitted to the AMU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AmuOp {
    /// Coherent active memory operation.
    Amo {
        /// Request tag for the reply.
        req: ReqId,
        /// Requesting processor.
        requester: ProcId,
        /// Operation.
        kind: AmoKind,
        /// Target word.
        addr: Addr,
        /// Operand (`FetchAdd`).
        operand: Word,
        /// Delayed-put trigger: put when the result equals this.
        test: Option<Word>,
    },
    /// Uncached memory-side atomic (the MAO baseline).
    Mao {
        /// Request tag for the reply.
        req: ReqId,
        /// Requesting processor.
        requester: ProcId,
        /// Operation.
        kind: AmoKind,
        /// Target word (uncached space by software convention).
        addr: Addr,
        /// Operand.
        operand: Word,
    },
    /// Uncached word read (MAO-style remote spinning).
    UncachedRead {
        /// Request tag for the reply.
        req: ReqId,
        /// Requesting processor.
        requester: ProcId,
        /// Target word.
        addr: Addr,
    },
    /// Uncached word write.
    UncachedWrite {
        /// Request tag for the ack.
        req: ReqId,
        /// Requesting processor.
        requester: ProcId,
        /// Target word.
        addr: Addr,
        /// Value to store.
        value: Word,
    },
}

/// Side effects the hub must execute. Timestamped effects are scheduled;
/// immediate ones are executed on the spot.
#[derive(Clone, Debug, PartialEq)]
pub enum AmuEffect {
    /// Send a reply to a processor at `when` (compute latency included).
    ReplyAt {
        /// Completion time.
        when: Cycle,
        /// Destination processor.
        proc: ProcId,
        /// Reply payload.
        payload: Payload,
    },
    /// Issue a fine-grained get to the local directory for `addr`,
    /// tagged with `token`. Feed the result to [`Amu::fine_value`].
    FineGet {
        /// Token to echo.
        token: u64,
        /// Word to fetch coherently.
        addr: Addr,
        /// Causal flow of the operation that missed (`ReqId::flow`).
        flow: u64,
    },
    /// Issue a fine-grained put (cache-hit path or dirty eviction).
    FinePut {
        /// Word to write back.
        addr: Addr,
        /// Value.
        value: Word,
        /// Causal flow of the triggering operation (`ReqId::flow`; 0
        /// for background dirty evictions, which belong to no request).
        flow: u64,
    },
    /// Close the directory's open fine-get transaction for `block`,
    /// performing `put` as part of it.
    FineComplete {
        /// Block whose fine transaction closes.
        block: BlockAddr,
        /// Optional immediate put.
        put: Option<(Addr, Word)>,
        /// Causal flow of the operation that opened the transaction.
        flow: u64,
    },
    /// Read a word from (uncached) home memory; feed the result to
    /// [`Amu::mem_value`].
    ReadMemWord {
        /// Token to echo.
        token: u64,
        /// Word to read.
        addr: Addr,
    },
    /// Write a word straight to home memory (MAO write-through path).
    WriteMemWord {
        /// Word to write.
        addr: Addr,
        /// Value.
        value: Word,
    },
    /// The AMU wants [`Amu::advance`] called at `when` to start its next
    /// queued command.
    WakeAt {
        /// Wake-up time.
        when: Cycle,
    },
}

/// A protocol violation observed by the AMU: the hub fed it a value it
/// was not waiting for. These used to be `panic!`s; they are now typed
/// so a poisoned run can report instead of aborting the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AmuError {
    /// A fine-get or memory value arrived while the AMU was idle/busy.
    NotWaiting {
        /// Token the stray value carried.
        token: u64,
    },
    /// The delivered token does not match the outstanding one.
    TokenMismatch {
        /// Token the AMU is waiting on.
        expected: u64,
        /// Token that arrived.
        got: u64,
    },
    /// The value kind does not fit the waiting operation (e.g. a
    /// fine-get result for a MAO).
    WrongOp {
        /// Token of the waiting operation.
        token: u64,
    },
    /// A fine-get result named a different address than the waiting AMO.
    AddrMismatch {
        /// Address the waiting operation targets.
        expected: Addr,
        /// Address the value claims.
        got: Addr,
    },
}

impl std::fmt::Display for AmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmuError::NotWaiting { token } => {
                write!(f, "value with token {token} arrived while not waiting")
            }
            AmuError::TokenMismatch { expected, got } => {
                write!(f, "token mismatch: waiting on {expected}, got {got}")
            }
            AmuError::WrongOp { token } => {
                write!(f, "value kind does not match waiting op (token {token})")
            }
            AmuError::AddrMismatch { expected, got } => {
                write!(f, "address mismatch: waiting on {expected:?}, got {got:?}")
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct CacheEntry {
    addr: Addr,
    value: Word,
    /// Not yet put back (a delayed `amo.inc` mid-count).
    dirty: bool,
    lru: u64,
}

#[derive(Clone, Copy, Debug)]
enum State {
    Idle,
    /// Function unit busy until the given cycle.
    Busy(Cycle),
    /// Waiting for a fine-get or memory read tagged with the token.
    Waiting {
        token: u64,
        op: AmuOp,
    },
}

/// Identity of an AMU command for at-most-once dedup: the request tag
/// plus its requester (tags are per-processor, so the pair is unique
/// machine-wide).
fn op_tag(op: &AmuOp) -> (ReqId, ProcId) {
    match *op {
        AmuOp::Amo { req, requester, .. }
        | AmuOp::Mao { req, requester, .. }
        | AmuOp::UncachedRead { req, requester, .. }
        | AmuOp::UncachedWrite { req, requester, .. } => (req, requester),
    }
}

/// One node's Active Memory Unit.
pub struct Amu {
    cache: Vec<CacheEntry>,
    cache_words: usize,
    op_latency: Cycle,
    line_bytes: u64,
    queue: VecDeque<AmuOp>,
    queue_cap: usize,
    state: State,
    tick: u64,
    next_token: u64,
    /// The last reply served to each requester — the at-most-once
    /// table consulted on submit when delivery faults can retransmit
    /// an already-applied request. Keyed **per requester**: a
    /// processor has at most one retransmittable request outstanding
    /// and its tags are monotone, so one cached reply per requester is
    /// exact — a retransmission matches the slot (replay the reply)
    /// while anything older than the slot is a floating duplicate
    /// whose reply was already consumed (swallow). An operation-count
    /// FIFO cannot provide this guarantee: under load, more ops than
    /// the window holds complete within one end-to-end backoff
    /// interval, the entry ages out, and the retransmission re-applies
    /// (observed as a double fetch-and-add corrupting a 64-proc
    /// barrier at 1000 ppm drop). LRU-bounded to `served_cap` distinct
    /// requesters; capacity 0 = dedup off (the default; clean runs pay
    /// nothing).
    served: VecDeque<(ProcId, ReqId, Payload)>,
    served_cap: usize,
    /// When [`Self::set_log_applies`] is on, every *true* apply of an
    /// AMO/MAO — never a dedup-suppressed replay — is recorded here as
    /// `(request, requester, address, pre-apply value)` for the machine
    /// to drain into the trace stream. Off (and unallocated) by
    /// default, so untraced runs pay nothing.
    apply_log: Vec<(ReqId, ProcId, Addr, Word)>,
    log_applies: bool,
    /// Test-only planted bug: when set, the dedup-replay path *also*
    /// logs an apply record, making the at-most-once monitor see a
    /// double apply on any schedule that retransmits a completed
    /// request. The protocol state itself is untouched — only the
    /// observation stream lies — so this exercises the monitors and
    /// explorer without corrupting unrelated invariants.
    planted_double_apply: bool,
}

impl Amu {
    /// Build an AMU. `op_latency` is in CPU cycles (the paper's 2 hub
    /// cycles × the hub clock divisor); `line_bytes` is the coherence
    /// block size (used to map words to directory blocks).
    pub fn new(cache_words: usize, op_latency: Cycle, queue_cap: usize, line_bytes: u64) -> Self {
        assert!(cache_words >= 1);
        Amu {
            cache: Vec::with_capacity(cache_words),
            cache_words,
            op_latency,
            line_bytes,
            queue: VecDeque::new(),
            queue_cap,
            state: State::Idle,
            tick: 0,
            next_token: 0,
            served: VecDeque::new(),
            served_cap: 0,
            apply_log: Vec::new(),
            log_applies: false,
            planted_double_apply: false,
        }
    }

    /// Record true applies for the trace stream (see `apply_log`).
    pub fn set_log_applies(&mut self, on: bool) {
        self.log_applies = on;
    }

    /// Plant the observation-stream double-apply bug (test hook; see
    /// `planted_double_apply`).
    pub fn plant_double_apply(&mut self) {
        self.planted_double_apply = true;
    }

    /// Drain recorded applies (request, requester, address, pre-apply
    /// value) into `out`, oldest first.
    pub fn drain_applies_into(&mut self, out: &mut Vec<(ReqId, ProcId, Addr, Word)>) {
        out.append(&mut self.apply_log);
    }

    #[inline]
    fn log_apply(&mut self, req: ReqId, proc: ProcId, addr: Addr, pre: Word) {
        if self.log_applies {
            self.apply_log.push((req, proc, addr, pre));
        }
    }

    /// Enable at-most-once duplicate suppression: remember the last
    /// reply served to each of up to `window` distinct requesters, so
    /// a retransmitted command that already executed re-emits its
    /// cached reply instead of applying twice. Used when delivery
    /// faults (drop/dup/reorder) are enabled; a window of 0 disables
    /// dedup. Suppression is exact while `window` covers every
    /// processor that can issue faultable requests to this node.
    pub fn with_dedup(mut self, window: u32) -> Self {
        self.served_cap = window as usize;
        self
    }

    /// Record a completed request's reply in the requester's dedup
    /// slot (allocating one, LRU-evicting if the table is full).
    fn record_served(&mut self, proc: ProcId, payload: &Payload) {
        if self.served_cap == 0 {
            return;
        }
        let req = match *payload {
            Payload::AmoReply { req, .. }
            | Payload::MaoReply { req, .. }
            | Payload::UncachedReadReply { req, .. }
            | Payload::UncachedWriteAck { req } => req,
            _ => return,
        };
        if let Some(idx) = self.served.iter().position(|(p, ..)| *p == proc) {
            self.served.remove(idx);
        } else if self.served.len() == self.served_cap {
            self.served.pop_front();
        }
        self.served.push_back((proc, req, payload.clone()));
    }

    /// Emit a reply, recording it in the dedup window first.
    fn reply_at(
        &mut self,
        when: Cycle,
        proc: ProcId,
        payload: Payload,
        effects: &mut Vec<AmuEffect>,
    ) {
        self.record_served(proc, &payload);
        effects.push(AmuEffect::ReplyAt {
            when,
            proc,
            payload,
        });
    }

    fn lookup(&mut self, addr: Addr) -> Option<usize> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.cache.iter().position(|e| e.addr == addr)?;
        self.cache[idx].lru = tick;
        Some(idx)
    }

    /// Install a word (clean); evicting the LRU entry if full. A dirty
    /// victim produces a put.
    fn install(
        &mut self,
        addr: Addr,
        value: Word,
        stats: &mut Stats,
        effects: &mut Vec<AmuEffect>,
    ) -> usize {
        self.tick += 1;
        let tick = self.tick;
        if let Some(idx) = self.cache.iter().position(|e| e.addr == addr) {
            self.cache[idx] = CacheEntry {
                addr,
                value,
                dirty: false,
                lru: tick,
            };
            return idx;
        }
        if self.cache.len() == self.cache_words {
            let victim = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full cache has victim");
            let v = self.cache.swap_remove(victim);
            stats.amu_evictions += 1;
            if v.dirty {
                effects.push(AmuEffect::FinePut {
                    addr: v.addr,
                    value: v.value,
                    flow: 0,
                });
            }
        }
        self.cache.push(CacheEntry {
            addr,
            value,
            dirty: false,
            lru: tick,
        });
        self.cache.len() - 1
    }

    /// Submit a command at time `now`. Returns false (and drops the
    /// command) if the dispatch queue is full.
    pub fn submit(&mut self, op: AmuOp, now: Cycle, stats: &mut Stats) -> (bool, Vec<AmuEffect>) {
        let mut effects = Vec::new();
        let ok = self.submit_into(op, now, stats, &mut effects);
        (ok, effects)
    }

    /// Allocation-free form of [`Self::submit`]: appends to `effects`.
    pub fn submit_into(
        &mut self,
        op: AmuOp,
        now: Cycle,
        stats: &mut Stats,
        effects: &mut Vec<AmuEffect>,
    ) -> bool {
        if self.served_cap > 0 {
            let (req, requester) = op_tag(&op);
            match self.served.iter().find(|(p, ..)| *p == requester) {
                // Already executed: re-emit the cached reply (the
                // original one may have been dropped in flight)
                // without re-applying.
                Some((_, served, payload)) if *served == req => {
                    stats.dup_suppressed += 1;
                    let payload = payload.clone();
                    if self.planted_double_apply {
                        // Planted bug: report the replay as if it were a
                        // fresh apply (see `planted_double_apply`).
                        let addr = match op {
                            AmuOp::Amo { addr, .. }
                            | AmuOp::Mao { addr, .. }
                            | AmuOp::UncachedRead { addr, .. }
                            | AmuOp::UncachedWrite { addr, .. } => addr,
                        };
                        self.log_apply(req, requester, addr, 0);
                    }
                    effects.push(AmuEffect::ReplyAt {
                        when: now + self.op_latency,
                        proc: requester,
                        payload,
                    });
                    return true;
                }
                // Older than the requester's last served tag: the
                // requester has since issued newer requests, so the
                // original reply was delivered and this copy is a
                // floating duplicate — swallow it.
                Some((_, served, _)) if served.0 > req.0 => {
                    stats.dup_suppressed += 1;
                    return true;
                }
                _ => {}
            }
            let tag = (req, requester);
            // Already queued or executing: the first copy will reply;
            // swallow this one.
            let pending = self.queue.iter().any(|q| op_tag(q) == tag)
                || matches!(self.state, State::Waiting { op: w, .. } if op_tag(&w) == tag);
            if pending {
                stats.dup_suppressed += 1;
                return true;
            }
        }
        if self.queue.len() >= self.queue_cap {
            return false;
        }
        self.queue.push_back(op);
        if matches!(self.state, State::Idle) {
            self.try_start(now, stats, effects);
        }
        true
    }

    /// The function unit finished a computation (scheduled via
    /// [`AmuEffect::WakeAt`]); start the next queued command if any.
    pub fn advance(&mut self, now: Cycle, stats: &mut Stats) -> Vec<AmuEffect> {
        let mut effects = Vec::new();
        self.advance_into(now, stats, &mut effects);
        effects
    }

    /// Allocation-free form of [`Self::advance`]: appends to `effects`.
    pub fn advance_into(&mut self, now: Cycle, stats: &mut Stats, effects: &mut Vec<AmuEffect>) {
        if let State::Busy(until) = self.state {
            if now >= until {
                self.state = State::Idle;
            }
        }
        if matches!(self.state, State::Idle) {
            self.try_start(now, stats, effects);
        }
    }

    fn try_start(&mut self, now: Cycle, stats: &mut Stats, effects: &mut Vec<AmuEffect>) {
        let Some(op) = self.queue.pop_front() else {
            return;
        };
        match op {
            AmuOp::Amo {
                req,
                requester,
                kind,
                addr,
                operand,
                test,
            } => {
                stats.amo_ops += 1;
                match self.lookup(addr) {
                    Some(idx) => {
                        stats.amu_hits += 1;
                        let old = self.cache[idx].value;
                        let new = kind.apply(old, operand);
                        let put = Self::should_put(kind, test, old, new);
                        self.cache[idx].value = new;
                        self.cache[idx].dirty = !put;
                        self.log_apply(req, requester, addr, old);
                        let done = now + self.op_latency;
                        if put {
                            effects.push(AmuEffect::FinePut {
                                addr,
                                value: new,
                                flow: req.flow(),
                            });
                        }
                        self.reply_at(done, requester, Payload::AmoReply { req, old }, effects);
                        self.state = State::Busy(done);
                        effects.push(AmuEffect::WakeAt { when: done });
                    }
                    None => {
                        stats.amu_misses += 1;
                        let token = self.next_token;
                        self.next_token += 1;
                        let flow = req.flow();
                        self.state = State::Waiting { token, op };
                        effects.push(AmuEffect::FineGet { token, addr, flow });
                    }
                }
            }
            AmuOp::Mao {
                req,
                requester,
                kind,
                addr,
                operand,
            } => {
                stats.mao_ops += 1;
                match self.lookup(addr) {
                    Some(idx) => {
                        stats.amu_hits += 1;
                        let old = self.cache[idx].value;
                        let new = kind.apply(old, operand);
                        self.cache[idx].value = new;
                        self.log_apply(req, requester, addr, old);
                        // MAO is non-coherent: write through to memory,
                        // nobody is updated or invalidated.
                        let done = now + self.op_latency;
                        effects.push(AmuEffect::WriteMemWord { addr, value: new });
                        self.reply_at(done, requester, Payload::MaoReply { req, old }, effects);
                        self.state = State::Busy(done);
                        effects.push(AmuEffect::WakeAt { when: done });
                    }
                    None => {
                        stats.amu_misses += 1;
                        let token = self.next_token;
                        self.next_token += 1;
                        self.state = State::Waiting { token, op };
                        effects.push(AmuEffect::ReadMemWord { token, addr });
                    }
                }
            }
            AmuOp::UncachedRead {
                req,
                requester,
                addr,
            } => match self.lookup(addr) {
                Some(idx) => {
                    let value = self.cache[idx].value;
                    let done = now + self.op_latency;
                    self.reply_at(
                        done,
                        requester,
                        Payload::UncachedReadReply { req, value },
                        effects,
                    );
                    self.state = State::Busy(done);
                    effects.push(AmuEffect::WakeAt { when: done });
                }
                None => {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.state = State::Waiting { token, op };
                    effects.push(AmuEffect::ReadMemWord { token, addr });
                }
            },
            AmuOp::UncachedWrite {
                req,
                requester,
                addr,
                value,
            } => {
                if let Some(idx) = self.lookup(addr) {
                    self.cache[idx].value = value;
                    self.cache[idx].dirty = false;
                }
                let done = now + self.op_latency;
                effects.push(AmuEffect::WriteMemWord { addr, value });
                self.reply_at(done, requester, Payload::UncachedWriteAck { req }, effects);
                self.state = State::Busy(done);
                effects.push(AmuEffect::WakeAt { when: done });
            }
        }
    }

    fn should_put(kind: AmoKind, test: Option<Word>, old: Word, new: Word) -> bool {
        match test {
            // The delayed update: put only when the result reaches the
            // test value.
            Some(t) => new == t,
            // Without a test, the kind's default applies: amo.inc
            // accumulates silently, everything else publishes any change
            // immediately (the paper's amo.fetchadd behaviour).
            None => kind.eager_put(old, new),
        }
    }

    /// A fine-grained get completed: the directory delivered the coherent
    /// word. Computes the waiting operation and closes the transaction.
    pub fn fine_value(
        &mut self,
        token: u64,
        addr: Addr,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
    ) -> Result<Vec<AmuEffect>, AmuError> {
        let mut effects = Vec::new();
        self.fine_value_into(token, addr, value, now, stats, &mut effects)?;
        Ok(effects)
    }

    /// Allocation-free form of [`Self::fine_value`]: appends to `effects`.
    pub fn fine_value_into(
        &mut self,
        token: u64,
        addr: Addr,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
        effects: &mut Vec<AmuEffect>,
    ) -> Result<(), AmuError> {
        let State::Waiting { token: t, op } = self.state else {
            return Err(AmuError::NotWaiting { token });
        };
        if t != token {
            return Err(AmuError::TokenMismatch {
                expected: t,
                got: token,
            });
        }
        let AmuOp::Amo {
            req,
            requester,
            kind,
            addr: op_addr,
            operand,
            test,
        } = op
        else {
            return Err(AmuError::WrongOp { token });
        };
        if addr != op_addr {
            return Err(AmuError::AddrMismatch {
                expected: op_addr,
                got: addr,
            });
        }
        let idx = self.install(addr, value, stats, effects);
        let old = value;
        let new = kind.apply(old, operand);
        let put = Self::should_put(kind, test, old, new);
        self.cache[idx].value = new;
        self.cache[idx].dirty = !put;
        self.log_apply(req, requester, addr, old);
        let done = now + self.op_latency;
        effects.push(AmuEffect::FineComplete {
            block: addr.block(self.line_bytes),
            put: put.then_some((addr, new)),
            flow: req.flow(),
        });
        self.reply_at(done, requester, Payload::AmoReply { req, old }, effects);
        self.state = State::Busy(done);
        effects.push(AmuEffect::WakeAt { when: done });
        Ok(())
    }

    /// An uncached memory read completed (MAO / uncached-read miss path).
    pub fn mem_value(
        &mut self,
        token: u64,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
    ) -> Result<Vec<AmuEffect>, AmuError> {
        let mut effects = Vec::new();
        self.mem_value_into(token, value, now, stats, &mut effects)?;
        Ok(effects)
    }

    /// Allocation-free form of [`Self::mem_value`]: appends to `effects`.
    pub fn mem_value_into(
        &mut self,
        token: u64,
        value: Word,
        now: Cycle,
        stats: &mut Stats,
        effects: &mut Vec<AmuEffect>,
    ) -> Result<(), AmuError> {
        let State::Waiting { token: t, op } = self.state else {
            return Err(AmuError::NotWaiting { token });
        };
        if t != token {
            return Err(AmuError::TokenMismatch {
                expected: t,
                got: token,
            });
        }
        let done = now + self.op_latency;
        match op {
            AmuOp::Mao {
                req,
                requester,
                kind,
                addr,
                operand,
            } => {
                let idx = self.install(addr, value, stats, effects);
                let old = value;
                let new = kind.apply(old, operand);
                self.cache[idx].value = new;
                self.log_apply(req, requester, addr, old);
                effects.push(AmuEffect::WriteMemWord { addr, value: new });
                self.reply_at(done, requester, Payload::MaoReply { req, old }, effects);
            }
            AmuOp::UncachedRead { req, requester, .. } => {
                self.reply_at(
                    done,
                    requester,
                    Payload::UncachedReadReply { req, value },
                    effects,
                );
            }
            _ => return Err(AmuError::WrongOp { token }),
        }
        self.state = State::Busy(done);
        effects.push(AmuEffect::WakeAt { when: done });
        Ok(())
    }

    /// The directory granted someone exclusive ownership of `block`: drop
    /// every cached word of it, returning the dirty ones so the hub can
    /// write them into home memory before the grant proceeds.
    pub fn flush_block(&mut self, block: BlockAddr) -> Vec<(Addr, Word)> {
        let line = self.line_bytes;
        let mut dirty = Vec::new();
        self.cache.retain(|e| {
            if e.addr.block(line) == block {
                if e.dirty {
                    dirty.push((e.addr, e.value));
                }
                false
            } else {
                true
            }
        });
        dirty
    }

    /// Number of cached words (diagnostics).
    pub fn cached_words(&self) -> usize {
        self.cache.len()
    }

    /// Operations waiting in the input queue, excluding the one in
    /// flight (observability sampling).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether an operation is currently executing or waiting on memory.
    pub fn in_flight(&self) -> bool {
        !matches!(self.state, State::Idle)
    }

    /// Current cached value of `addr`, if present (diagnostics/tests).
    pub fn peek(&self, addr: Addr) -> Option<Word> {
        self.cache.iter().find(|e| e.addr == addr).map(|e| e.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::NodeId;

    const LAT: Cycle = 8; // 2 hub cycles x 4

    fn amu() -> (Amu, Stats) {
        (Amu::new(8, LAT, 64, 128), Stats::new())
    }

    fn w(off: u64) -> Addr {
        Addr::on_node(NodeId(0), 0x1000 + off * 8)
    }

    fn amo_inc(req: u64, p: u16, addr: Addr, test: Option<Word>) -> AmuOp {
        AmuOp::Amo {
            req: ReqId(req),
            requester: ProcId(p),
            kind: AmoKind::Inc,
            addr,
            operand: 0,
            test,
        }
    }

    #[test]
    fn miss_then_hits() {
        let (mut a, mut s) = amu();
        let (ok, eff) = a.submit(amo_inc(1, 0, w(0), Some(3)), 100, &mut s);
        assert!(ok);
        assert_eq!(
            eff,
            vec![AmuEffect::FineGet {
                token: 0,
                addr: w(0),
                flow: 1
            }]
        );
        // Directory returns 0; inc → 1, test=3 not reached: no put.
        let eff = a.fine_value(0, w(0), 0, 200, &mut s).unwrap();
        assert!(eff
            .iter()
            .any(|e| matches!(e, AmuEffect::FineComplete { put: None, .. })));
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                when: 208,
                payload: Payload::AmoReply { old: 0, .. },
                ..
            }
        )));
        assert_eq!(a.peek(w(0)), Some(1));
        assert_eq!(s.amu_misses, 1);

        // Second op hits (after the WakeAt(208) the hub would deliver).
        a.advance(208, &mut s);
        let (_, eff) = a.submit(amo_inc(2, 1, w(0), Some(3)), 300, &mut s);
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                when: 308,
                payload: Payload::AmoReply { old: 1, .. },
                ..
            }
        )));
        assert_eq!(s.amu_hits, 1);
        assert_eq!(a.peek(w(0)), Some(2));
    }

    #[test]
    fn test_value_triggers_put_exactly_at_target() {
        let (mut a, mut s) = amu();
        a.submit(amo_inc(1, 0, w(0), Some(3)), 0, &mut s);
        a.fine_value(0, w(0), 0, 10, &mut s).unwrap(); // -> 1
        a.advance(18, &mut s);
        let (_, eff) = a.submit(amo_inc(2, 1, w(0), Some(3)), 20, &mut s); // -> 2
        assert!(!eff.iter().any(|e| matches!(e, AmuEffect::FinePut { .. })));
        a.advance(28, &mut s);
        let (_, eff) = a.submit(amo_inc(3, 2, w(0), Some(3)), 30, &mut s); // -> 3: put!
        assert!(eff.contains(&AmuEffect::FinePut {
            addr: w(0),
            value: 3,
            flow: 3
        }));
        assert_eq!(a.peek(w(0)), Some(3));
    }

    #[test]
    fn fetchadd_without_test_puts_every_time() {
        let (mut a, mut s) = amu();
        let op = AmuOp::Amo {
            req: ReqId(1),
            requester: ProcId(0),
            kind: AmoKind::FetchAdd,
            addr: w(1),
            operand: 5,
            test: None,
        };
        a.submit(op, 0, &mut s);
        let eff = a.fine_value(0, w(1), 10, 50, &mut s).unwrap();
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::FineComplete {
                put: Some((_, 15)),
                ..
            }
        )));
    }

    #[test]
    fn queue_serializes_ops() {
        let (mut a, mut s) = amu();
        // Prime the cache.
        a.submit(amo_inc(1, 0, w(0), None), 0, &mut s);
        a.fine_value(0, w(0), 0, 10, &mut s).unwrap(); // busy until 18
                                                       // Two more arrive while busy: queued.
        let (_, eff) = a.submit(amo_inc(2, 1, w(0), None), 12, &mut s);
        assert!(eff.is_empty());
        let (_, eff) = a.submit(amo_inc(3, 2, w(0), None), 13, &mut s);
        assert!(eff.is_empty());
        // Wake at 18: op 2 computes 18..26.
        let eff = a.advance(18, &mut s);
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                when: 26,
                payload: Payload::AmoReply { old: 1, .. },
                ..
            }
        )));
        let eff = a.advance(26, &mut s);
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                when: 34,
                payload: Payload::AmoReply { old: 2, .. },
                ..
            }
        )));
        assert_eq!(a.peek(w(0)), Some(3));
    }

    #[test]
    fn mao_writes_through_without_puts() {
        let (mut a, mut s) = amu();
        let op = AmuOp::Mao {
            req: ReqId(1),
            requester: ProcId(0),
            kind: AmoKind::FetchAdd,
            addr: w(2),
            operand: 1,
        };
        let (_, eff) = a.submit(op, 0, &mut s);
        assert_eq!(
            eff,
            vec![AmuEffect::ReadMemWord {
                token: 0,
                addr: w(2)
            }]
        );
        let eff = a.mem_value(0, 7, 20, &mut s).unwrap();
        assert!(eff.contains(&AmuEffect::WriteMemWord {
            addr: w(2),
            value: 8
        }));
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                payload: Payload::MaoReply { old: 7, .. },
                ..
            }
        )));
        assert!(!eff.iter().any(|e| matches!(
            e,
            AmuEffect::FinePut { .. } | AmuEffect::FineComplete { .. }
        )));
        assert_eq!(s.mao_ops, 1);
    }

    #[test]
    fn uncached_read_does_not_allocate() {
        let (mut a, mut s) = amu();
        let op = AmuOp::UncachedRead {
            req: ReqId(1),
            requester: ProcId(0),
            addr: w(3),
        };
        let (_, eff) = a.submit(op, 0, &mut s);
        assert_eq!(
            eff,
            vec![AmuEffect::ReadMemWord {
                token: 0,
                addr: w(3)
            }]
        );
        let eff = a.mem_value(0, 42, 10, &mut s).unwrap();
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                payload: Payload::UncachedReadReply { value: 42, .. },
                ..
            }
        )));
        assert_eq!(a.cached_words(), 0);
    }

    #[test]
    fn uncached_read_hits_amu_cache() {
        let (mut a, mut s) = amu();
        // MAO allocates the word.
        a.submit(
            AmuOp::Mao {
                req: ReqId(1),
                requester: ProcId(0),
                kind: AmoKind::Inc,
                addr: w(4),
                operand: 0,
            },
            0,
            &mut s,
        );
        a.mem_value(0, 0, 10, &mut s).unwrap(); // value now 1
        a.advance(18, &mut s);
        let (_, eff) = a.submit(
            AmuOp::UncachedRead {
                req: ReqId(2),
                requester: ProcId(1),
                addr: w(4),
            },
            20,
            &mut s,
        );
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                payload: Payload::UncachedReadReply { value: 1, .. },
                ..
            }
        )));
    }

    #[test]
    fn flush_returns_dirty_words_and_drops_block() {
        let (mut a, mut s) = amu();
        a.submit(amo_inc(1, 0, w(0), None), 0, &mut s);
        a.fine_value(0, w(0), 5, 10, &mut s).unwrap(); // 6, dirty (no test)
        let flushed = a.flush_block(w(0).block(128));
        assert_eq!(flushed, vec![(w(0), 6)]);
        assert_eq!(a.cached_words(), 0);
        // Clean words flush silently.
        a.advance(18, &mut s);
        a.submit(
            AmuOp::Amo {
                req: ReqId(2),
                requester: ProcId(0),
                kind: AmoKind::FetchAdd,
                addr: w(1),
                operand: 1,
                test: None,
            },
            20,
            &mut s,
        );
        a.fine_value(1, w(1), 0, 30, &mut s).unwrap(); // put issued → clean
        let flushed = a.flush_block(w(1).block(128));
        assert!(flushed.is_empty());
    }

    #[test]
    fn eviction_of_dirty_word_forces_put() {
        let (mut a, mut s) = amu();
        let mut t = 0u64;
        // Fill all 8 slots with dirty words (inc without test).
        for i in 0..8u64 {
            // Each word in a different block so flushes don't interfere.
            let addr = Addr::on_node(NodeId(0), 0x10000 + i * 256);
            a.submit(amo_inc(i, 0, addr, None), t, &mut s);
            let eff = a.fine_value(i, addr, 0, t + 10, &mut s).unwrap();
            assert!(!eff.iter().any(|e| matches!(e, AmuEffect::FinePut { .. })));
            t += 100;
            a.advance(t, &mut s);
        }
        assert_eq!(a.cached_words(), 8);
        // A ninth word evicts the LRU (the first).
        let ninth = Addr::on_node(NodeId(0), 0x20000);
        a.submit(amo_inc(99, 0, ninth, None), t, &mut s);
        let eff = a.fine_value(8, ninth, 0, t + 10, &mut s).unwrap();
        let first = Addr::on_node(NodeId(0), 0x10000);
        assert!(eff.contains(&AmuEffect::FinePut {
            addr: first,
            value: 1,
            flow: 0
        }));
        assert_eq!(s.amu_evictions, 1);
    }

    #[test]
    fn stray_values_report_typed_errors() {
        let (mut a, mut s) = amu();
        // Idle AMU: any value is a protocol violation, not a panic.
        assert_eq!(
            a.fine_value(0, w(0), 0, 10, &mut s).unwrap_err(),
            AmuError::NotWaiting { token: 0 }
        );
        assert_eq!(
            a.mem_value(3, 0, 10, &mut s).unwrap_err(),
            AmuError::NotWaiting { token: 3 }
        );
        // Waiting on a fine get (token 0): wrong token / kind / address.
        a.submit(amo_inc(1, 0, w(0), None), 0, &mut s);
        assert_eq!(
            a.fine_value(9, w(0), 0, 10, &mut s).unwrap_err(),
            AmuError::TokenMismatch {
                expected: 0,
                got: 9
            }
        );
        assert_eq!(
            a.mem_value(0, 0, 10, &mut s).unwrap_err(),
            AmuError::WrongOp { token: 0 }
        );
        assert_eq!(
            a.fine_value(0, w(5), 0, 10, &mut s).unwrap_err(),
            AmuError::AddrMismatch {
                expected: w(0),
                got: w(5)
            }
        );
        // The AMU is still intact: the correct value completes the op.
        let eff = a.fine_value(0, w(0), 0, 20, &mut s).unwrap();
        assert!(eff.iter().any(|e| matches!(e, AmuEffect::ReplyAt { .. })));
    }

    #[test]
    fn dedup_window_replays_cached_reply_without_reapplying() {
        let mut s = Stats::new();
        let mut a = Amu::new(8, LAT, 64, 128).with_dedup(4);
        // Execute a fetch-add to completion.
        let op = AmuOp::Amo {
            req: ReqId(7),
            requester: ProcId(2),
            kind: AmoKind::FetchAdd,
            addr: w(0),
            operand: 5,
            test: None,
        };
        a.submit(op, 0, &mut s);
        a.fine_value(0, w(0), 10, 10, &mut s).unwrap(); // 10 -> 15
        a.advance(18, &mut s);
        assert_eq!(a.peek(w(0)), Some(15));
        // A retransmitted copy of the same request must not add again;
        // it re-emits the original reply (old = 10).
        let (ok, eff) = a.submit(op, 100, &mut s);
        assert!(ok);
        assert_eq!(a.peek(w(0)), Some(15), "no double-apply");
        assert_eq!(s.dup_suppressed, 1);
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                proc: ProcId(2),
                payload: Payload::AmoReply {
                    req: ReqId(7),
                    old: 10
                },
                ..
            }
        )));
        // A *different* request from the same processor still executes.
        let (ok, _) = a.submit(amo_inc(8, 2, w(0), None), 200, &mut s);
        assert!(ok);
        a.advance(300, &mut s);
        assert_eq!(a.peek(w(0)), Some(16));
        assert_eq!(s.dup_suppressed, 1);
    }

    #[test]
    fn dedup_swallows_duplicate_of_inflight_request() {
        let mut s = Stats::new();
        let mut a = Amu::new(8, LAT, 64, 128).with_dedup(4);
        // First copy goes to Waiting on a fine get.
        a.submit(amo_inc(1, 0, w(0), None), 0, &mut s);
        // Duplicate arrives while the original is still in flight: no
        // second execution, no reply (the in-flight one will reply).
        let (ok, eff) = a.submit(amo_inc(1, 0, w(0), None), 5, &mut s);
        assert!(ok);
        assert!(eff.is_empty());
        assert_eq!(s.dup_suppressed, 1);
        // Queue a second distinct op, then duplicate it too.
        a.submit(amo_inc(2, 1, w(0), None), 6, &mut s);
        let (ok, eff) = a.submit(amo_inc(2, 1, w(0), None), 7, &mut s);
        assert!(ok);
        assert!(eff.is_empty());
        assert_eq!(s.dup_suppressed, 2);
        // The original completes exactly once.
        let eff = a.fine_value(0, w(0), 0, 20, &mut s).unwrap();
        assert_eq!(
            eff.iter()
                .filter(|e| matches!(e, AmuEffect::ReplyAt { .. }))
                .count(),
            1
        );
        assert_eq!(a.peek(w(0)), Some(1));
    }

    #[test]
    fn dedup_suppression_survives_unbounded_intervening_traffic() {
        // The scenario that broke the old operation-count FIFO: many
        // ops from *other* requesters complete between a request and
        // its retransmission (an e2e backoff spans thousands of
        // cycles). Per-requester keying keeps suppression exact no
        // matter how much traffic intervenes.
        let mut s = Stats::new();
        let mut a = Amu::new(8, LAT, 64, 128).with_dedup(8);
        // Proc 7 executes req 1 (counter 0 -> 1).
        a.submit(amo_inc(1, 7, w(0), None), 0, &mut s);
        a.fine_value(0, w(0), 0, 10, &mut s).unwrap();
        let mut t = 100;
        a.advance(t, &mut s);
        // 30 intervening ops from other procs — far more than any
        // plausible FIFO window.
        for i in 0..30u64 {
            a.submit(amo_inc(i + 1, (i % 6) as u16, w(0), None), t, &mut s);
            t += 100;
            a.advance(t, &mut s);
        }
        assert_eq!(a.peek(w(0)), Some(31));
        // Proc 7's retransmission of req 1 still replays old = 0.
        let (_, eff) = a.submit(amo_inc(1, 7, w(0), None), t, &mut s);
        assert_eq!(s.dup_suppressed, 1);
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                proc: ProcId(7),
                payload: Payload::AmoReply { old: 0, .. },
                ..
            }
        )));
        assert_eq!(a.peek(w(0)), Some(31), "no double-apply");
    }

    #[test]
    fn dedup_swallows_stale_request_from_same_requester() {
        let mut s = Stats::new();
        let mut a = Amu::new(8, LAT, 64, 128).with_dedup(4);
        // Proc 3 executes req 1, then req 2.
        a.submit(amo_inc(1, 3, w(0), None), 0, &mut s);
        a.fine_value(0, w(0), 0, 10, &mut s).unwrap();
        a.advance(100, &mut s);
        a.submit(amo_inc(2, 3, w(0), None), 100, &mut s);
        a.advance(200, &mut s);
        assert_eq!(a.peek(w(0)), Some(2));
        // A floating duplicate of req 1 arrives late. The slot holds
        // req 2 — proc 3 could only have issued it after consuming
        // req 1's reply — so the copy is swallowed: no re-apply, no
        // reply.
        let (ok, eff) = a.submit(amo_inc(1, 3, w(0), None), 300, &mut s);
        assert!(ok);
        assert!(eff.is_empty());
        assert_eq!(s.dup_suppressed, 1);
        assert_eq!(a.peek(w(0)), Some(2));
    }

    #[test]
    fn dedup_table_is_bounded_by_distinct_requesters() {
        let mut s = Stats::new();
        let mut a = Amu::new(8, LAT, 64, 128).with_dedup(2);
        let mut t = 0;
        for p in 0..3u16 {
            a.submit(amo_inc(1, p, w(0), None), t, &mut s);
            if p == 0 {
                a.fine_value(0, w(0), 0, t + 10, &mut s).unwrap();
            }
            t += 100;
            a.advance(t, &mut s);
        }
        // The table holds the last 2 requesters (procs 1, 2); proc 0's
        // slot was LRU-evicted, so its retransmission re-executes
        // (counter 3 -> 4) — the cost of undersizing the window below
        // the requester count.
        let (_, eff) = a.submit(amo_inc(1, 0, w(0), None), t, &mut s);
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                payload: Payload::AmoReply { old: 3, .. },
                ..
            }
        )));
        assert_eq!(s.dup_suppressed, 0);
        assert_eq!(a.peek(w(0)), Some(4));
        // Proc 2's slot survives: suppressed, replaying old = 2.
        t += 100;
        a.advance(t, &mut s);
        let (_, eff) = a.submit(amo_inc(1, 2, w(0), None), t, &mut s);
        assert_eq!(s.dup_suppressed, 1);
        assert!(eff.iter().any(|e| matches!(
            e,
            AmuEffect::ReplyAt {
                payload: Payload::AmoReply { old: 2, .. },
                ..
            }
        )));
        assert_eq!(a.peek(w(0)), Some(4));
    }

    #[test]
    fn full_queue_rejects() {
        let mut s = Stats::new();
        let mut a = Amu::new(8, LAT, 2, 128);
        // First submit starts immediately (queue drains), then fill.
        a.submit(amo_inc(1, 0, w(0), None), 0, &mut s); // waiting on fine get
        assert!(a.submit(amo_inc(2, 0, w(0), None), 0, &mut s).0);
        assert!(a.submit(amo_inc(3, 0, w(0), None), 0, &mut s).0);
        assert!(
            !a.submit(amo_inc(4, 0, w(0), None), 0, &mut s).0,
            "queue full"
        );
    }
}
