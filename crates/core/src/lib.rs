//! # amo — Active Memory Operations
//!
//! A from-scratch Rust reproduction of *“Highly Efficient
//! Synchronization Based on Active Memory Operations”* (Zhang, Fang &
//! Carter, IPDPS 2004): a cycle-level CC-NUMA multiprocessor simulator
//! whose home memory controllers carry an **Active Memory Unit (AMU)**,
//! plus the paper's complete synchronization-algorithm zoo — barriers
//! and spin locks over LL/SC, processor-side atomics, active messages,
//! conventional memory-side atomics (MAO), and AMOs.
//!
//! ## Quick start
//!
//! ```
//! use amo::prelude::*;
//!
//! // Run the paper's AMO barrier on an 8-processor machine and compare
//! // it with the LL/SC baseline.
//! let mk = |mech| BarrierBench { episodes: 4, warmup: 1, ..BarrierBench::paper(mech, 8) };
//! let amo = run_barrier(mk(Mechanism::Amo));
//! let llsc = run_barrier(mk(Mechanism::LlSc));
//! let speedup = llsc.timing.avg_cycles / amo.timing.avg_cycles;
//! assert!(speedup > 1.0, "AMO beats LL/SC: {speedup:.1}x");
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | experiments | [`workloads`] | runners, sweeps, table/figure generators |
//! | observability | [`obs`] | event tracing, Perfetto export, occupancy time series |
//! | algorithms | [`sync`] | barriers (centralized, combining tree), ticket & array locks |
//! | machine | [`sim`] | the `Machine`: hubs, fabric, event loop |
//! | processor | [`cpu`] | kernels, memory ops, LL/SC, spinning, handlers |
//! | home node | [`directory`], [`amu`], [`dram`] | coherence protocol, AMU, memory |
//! | fabric | [`noc`] | fat-tree topology, endpoint serialization, link-level replay |
//! | robustness | [`faults`] | deterministic fault plans: link errors, jitter, AMU brown-outs |
//! | substrate | [`types`], [`engine`], [`cache`] | vocabulary, events, caches |
//!
//! The architectural parameters default to the paper's Table 1
//! ([`types::SystemConfig::default`]); experiments reproduce Tables 2–4
//! and Figures 5–7 (see the `amo-bench` crate's `tables` binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use amo_amu as amu;
pub use amo_cache as cache;
pub use amo_cpu as cpu;
pub use amo_directory as directory;
pub use amo_dram as dram;
pub use amo_engine as engine;
pub use amo_faults as faults;
pub use amo_noc as noc;
pub use amo_obs as obs;
pub use amo_sim as sim;
pub use amo_sync as sync;
pub use amo_types as types;
pub use amo_workloads as workloads;

/// The names almost every user of this library needs.
pub mod prelude {
    pub use amo_sim::{Machine, RunResult, SimError, SimErrorKind};
    pub use amo_sync::{
        ArrayLockKernel, ArrayLockSpec, BarrierKernel, BarrierSpec, BarrierStyle,
        DisseminationKernel, DisseminationSpec, KTreeKernel, KTreeSpec, McsLockKernel, McsLockSpec,
        Mechanism, TicketLockKernel, TicketLockSpec, TreeBarrierKernel, TreeBarrierSpec, VarAlloc,
    };
    pub use amo_types::{Addr, Cycle, FaultConfig, NodeId, ProcId, SystemConfig, Word};
    pub use amo_workloads::{
        run_barrier, run_barrier_obs, run_lock, run_lock_obs, try_run_barrier, try_run_barrier_obs,
        try_run_lock, try_run_lock_obs, BarrierAlgo, BarrierBench, BarrierResult, LockBench,
        LockKind, LockResult, ObsReport, ObsSpec, RunFailure, SkewMode,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn prelude_quickstart_compiles_and_runs() {
        let r = run_barrier(BarrierBench {
            episodes: 3,
            warmup: 1,
            ..BarrierBench::paper(Mechanism::Amo, 4)
        });
        assert!(r.timing.avg_cycles > 0.0);
    }
}
