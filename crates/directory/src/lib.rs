//! The home-node directory controller.
//!
//! A home-centric invalidation protocol in the style of the SGI Origin's
//! SN2 protocol, extended with the AMO paper's *fine-grained get/put*
//! mechanism (Sec. 3.2):
//!
//! * **fine-grained get** — the local AMU reads the coherent value of one
//!   word; the block moves to `Shared` and the AMU joins the sharer list,
//!   but (unlike an ordinary sharer) it may modify the word without first
//!   acquiring exclusive ownership;
//! * **fine-grained put** — the AMU writes a word back; the directory
//!   updates home memory and pushes a word-granularity update to every
//!   node holding a copy of the containing block, *without invalidating
//!   anyone*.
//!
//! The directory is a passive, per-block-serialized state machine: the
//! hub feeds it messages and executes the [`DirAction`]s it emits (send a
//! message, start a DRAM read, flush the AMU, ...). Requests that arrive
//! for a block with an open transaction are queued and drained in order,
//! which is exactly the home-node serialization that makes centralized
//! synchronization hot spots hot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;

pub use protocol::{DirAction, DirRequest, Directory, ENTRY_SLOT_SIZE};
