//! Directory state machine: states, transactions, actions.

use amo_types::FxHashMap;
use amo_types::{
    Addr, BlockAddr, BlockData, InterventionKind, InterventionResp, NodeId, Payload, ProcId,
    ProcSet, ReqId, Slab, SlotId, Stats, Word,
};
use std::collections::VecDeque;

/// Stable directory state of one block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DirState {
    /// No cached copies; memory is the only copy.
    Uncached,
    /// Read-only copies at `sharers` (and possibly the home AMU).
    Shared,
    /// A single processor owns the block (Exclusive or Modified there).
    Exclusive(ProcId),
}

/// A request the directory serializes per block.
#[derive(Clone, Debug, PartialEq)]
pub enum DirRequest {
    /// Processor wants a Shared copy.
    GetS {
        /// Request tag echoed in the reply.
        req: ReqId,
        /// Requesting processor.
        requester: ProcId,
    },
    /// Processor wants an Exclusive copy (with data).
    GetX {
        /// Request tag echoed in the reply.
        req: ReqId,
        /// Requesting processor.
        requester: ProcId,
    },
    /// Processor holds Shared and wants Exclusive (no data needed).
    Upgrade {
        /// Request tag echoed in the reply.
        req: ReqId,
        /// Requesting processor.
        requester: ProcId,
    },
    /// Home AMU wants the coherent value of a word (fine-grained get).
    FineGet {
        /// Opaque token the AMU uses to match the value delivery.
        token: u64,
        /// The word being read.
        addr: Addr,
    },
    /// Home AMU writes a word back (fine-grained put).
    FinePut {
        /// The word being written.
        addr: Addr,
        /// New value.
        value: Word,
        /// Causal flow of the AMU operation that produced the put
        /// (`ReqId::flow`; 0 for background evictions). Echoed on the
        /// word-update fanout so traces can attribute NoC traffic.
        flow: u64,
    },
}

/// Side effects the hub must execute, in order.
#[derive(Clone, Debug, PartialEq)]
pub enum DirAction {
    /// Send a protocol message to a processor (via its node's hub).
    ToProc {
        /// Destination processor.
        proc: ProcId,
        /// Message.
        payload: Payload,
    },
    /// Push one word update to a node holding a copy of the block.
    WordUpdateToNode {
        /// Destination node.
        node: NodeId,
        /// Updated word.
        addr: Addr,
        /// New value.
        value: Word,
        /// Causal flow of the put that triggered the update (0 = none).
        flow: u64,
    },
    /// Start a timed DRAM block read; call [`Directory::dram_done`] with
    /// the data when it completes.
    ReadDram {
        /// Block to read.
        block: BlockAddr,
    },
    /// Write one word to home memory (posted, untimed at the directory).
    WriteDramWord {
        /// Word address.
        addr: Addr,
        /// Value.
        value: Word,
    },
    /// Write a whole block back to home memory (posted).
    WriteDramBlock {
        /// Block to write.
        block: BlockAddr,
        /// Data.
        data: BlockData,
    },
    /// Synchronously flush (and drop) the AMU's words of this block into
    /// home memory — issued before granting exclusive ownership.
    FlushAmu {
        /// Block whose words must leave the AMU cache.
        block: BlockAddr,
    },
    /// Deliver a fine-grained-get value to the AMU. The block transaction
    /// stays open until [`Directory::fine_complete`] is called.
    FineValue {
        /// Token from the originating [`DirRequest::FineGet`].
        token: u64,
        /// The word read.
        addr: Addr,
        /// Its coherent value.
        value: Word,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TxnKind {
    Read { req: ReqId, requester: ProcId },
    Write { req: ReqId, requester: ProcId },
    UpgradeWait { req: ReqId, requester: ProcId },
    FineGet { token: u64, addr: Addr },
}

#[derive(Debug)]
struct Txn {
    kind: TxnKind,
    pending_acks: usize,
    mem_pending: bool,
    owner_pending: bool,
    waiting_writeback: bool,
    data: Option<BlockData>,
    dirty_data: bool,
    downgraded_owner: Option<ProcId>,
    /// FineGet only: value delivered, waiting for `fine_complete`.
    fine_open: bool,
}

impl Txn {
    fn new(kind: TxnKind) -> Self {
        Txn {
            kind,
            pending_acks: 0,
            mem_pending: false,
            owner_pending: false,
            waiting_writeback: false,
            data: None,
            dirty_data: false,
            downgraded_owner: None,
            fine_open: false,
        }
    }

    fn needs_data(&self) -> bool {
        !matches!(self.kind, TxnKind::UpgradeWait { .. })
    }

    fn ready(&self) -> bool {
        self.pending_acks == 0
            && !self.mem_pending
            && !self.owner_pending
            && !self.waiting_writeback
            && (!self.needs_data() || self.data.is_some())
            && !self.fine_open
    }
}

#[derive(Debug)]
struct Entry {
    state: DirState,
    sharers: ProcSet,
    amu_shared: bool,
    txn: Option<Txn>,
    queue: VecDeque<DirRequest>,
}

impl Entry {
    fn new() -> Self {
        Entry {
            state: DirState::Uncached,
            sharers: ProcSet::new(),
            amu_shared: false,
            txn: None,
            queue: VecDeque::new(),
        }
    }

    /// An entry indistinguishable from a freshly created one: safe to
    /// release back to the arena and recreate on the next touch.
    fn is_idle(&self) -> bool {
        self.state == DirState::Uncached
            && self.sharers.is_empty()
            && !self.amu_shared
            && self.txn.is_none()
            && self.queue.is_empty()
    }
}

/// Size of one directory-entry slab slot in bytes. [`Entry`] is
/// private; the slot size is exported so the layout-guard tests can pin
/// the arena's per-block memory budget.
pub const ENTRY_SLOT_SIZE: usize = amo_types::Slab::<Entry>::slot_size();

/// The directory controller of one home node.
///
/// Entries live in a dense [`Slab`] arena; a hash index maps block
/// addresses to slots only on the miss path. Sync workloads hammer a
/// handful of blocks, so a one-entry MRU cache in front of the index
/// turns the common `entry()` call into a compare plus an array access —
/// no hashing on the hot path.
pub struct Directory {
    node: NodeId,
    procs_per_node: u16,
    entries: Slab<Entry>,
    index: FxHashMap<u64, SlotId>,
    /// Most recently touched block and its slot.
    mru: Option<(u64, SlotId)>,
    /// Suppress re-received requests whose `(req, requester)` already
    /// has an open transaction or a queue slot on the block. Off by
    /// default: under reliable delivery a duplicate can only be a
    /// protocol bug, and silently eating it would mask the bug.
    dup_guard: bool,
    /// When [`Self::set_log_reclaims`] is on, every entry removal is
    /// recorded here as `(block, was_idle)` for the machine to drain
    /// into the trace stream. The idle flag is recomputed at the
    /// removal site, so the directory-sanity monitor checks a real
    /// invariant (no entry reclaimed mid-transaction) rather than a
    /// tautology. Off by default: untraced runs pay one branch.
    reclaim_log: Vec<(BlockAddr, bool)>,
    log_reclaims: bool,
}

/// Identity of a processor-originated request for duplicate
/// suppression. AMU-originated fine traffic is home-local (never
/// crosses the faulted fabric) and has no requester tag.
fn req_tag(req: &DirRequest) -> Option<(ReqId, ProcId)> {
    match *req {
        DirRequest::GetS { req, requester }
        | DirRequest::GetX { req, requester }
        | DirRequest::Upgrade { req, requester } => Some((req, requester)),
        DirRequest::FineGet { .. } | DirRequest::FinePut { .. } => None,
    }
}

impl TxnKind {
    fn tag(&self) -> Option<(ReqId, ProcId)> {
        match *self {
            TxnKind::Read { req, requester }
            | TxnKind::Write { req, requester }
            | TxnKind::UpgradeWait { req, requester } => Some((req, requester)),
            TxnKind::FineGet { .. } => None,
        }
    }
}

impl Directory {
    /// Directory for `node`'s local memory.
    pub fn new(node: NodeId, procs_per_node: u16) -> Self {
        Directory {
            node,
            procs_per_node,
            entries: Slab::new(),
            index: FxHashMap::default(),
            mru: None,
            dup_guard: false,
            reclaim_log: Vec::new(),
            log_reclaims: false,
        }
    }

    /// Record idle-entry reclaims for the trace stream (see
    /// `reclaim_log`).
    pub fn set_log_reclaims(&mut self, on: bool) {
        self.log_reclaims = on;
    }

    /// Drain recorded reclaims into `out`, oldest first. Each record is
    /// `(block, was_idle_at_removal)`.
    pub fn drain_reclaims_into(&mut self, out: &mut Vec<(BlockAddr, bool)>) {
        out.append(&mut self.reclaim_log);
    }

    /// Enable idempotent duplicate suppression at the request ingress:
    /// a re-received `(req, requester)` whose transaction is already
    /// open or queued is dropped (counted in `Stats::dup_suppressed`)
    /// instead of opening a second transaction for the same miss. Used
    /// when delivery faults can duplicate messages in flight.
    pub fn with_dup_guard(mut self, on: bool) -> Self {
        self.dup_guard = on;
        self
    }

    fn slot(&mut self, block: BlockAddr) -> SlotId {
        if let Some((b, id)) = self.mru {
            if b == block.0 {
                return id;
            }
        }
        let id = match self.index.get(&block.0) {
            Some(&id) => id,
            None => {
                let id = self.entries.insert(Entry::new());
                self.index.insert(block.0, id);
                id
            }
        };
        self.mru = Some((block.0, id));
        id
    }

    fn entry(&mut self, block: BlockAddr) -> &mut Entry {
        let id = self.slot(block);
        self.entries.get_mut(id).expect("indexed entry is live")
    }

    /// Read-only lookup that never allocates (diagnostics/observability).
    fn peek(&self, block: BlockAddr) -> Option<&Entry> {
        let id = *self.index.get(&block.0)?;
        self.entries.get(id)
    }

    /// Return a fully idle entry to the arena. Called at the end of the
    /// public entry points so long runs over many blocks (table sweeps,
    /// uncached workloads) keep the arena dense instead of accreting
    /// dead `Uncached` entries.
    fn release_if_idle(&mut self, block: BlockAddr) {
        let Some(&id) = self.index.get(&block.0) else {
            return;
        };
        let idle = self.entries.get(id).is_some_and(Entry::is_idle);
        if idle {
            self.reclaim(block, id);
        }
    }

    /// Remove an entry from the arena, recording `(block, was_idle)` —
    /// every removal path must come through here so the sanity monitor
    /// sees any future reclaim of a non-idle entry.
    fn reclaim(&mut self, block: BlockAddr, id: SlotId) {
        let idle = self.entries.get(id).is_some_and(Entry::is_idle);
        self.entries.remove(id);
        self.index.remove(&block.0);
        if self.mru.is_some_and(|(b, _)| b == block.0) {
            self.mru = None;
        }
        if self.log_reclaims {
            self.reclaim_log.push((block, idle));
        }
    }

    /// Feed a request. If the block has an open transaction the request is
    /// queued; otherwise it is dispatched immediately.
    pub fn request(
        &mut self,
        block: BlockAddr,
        req: DirRequest,
        stats: &mut Stats,
    ) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.request_into(block, req, stats, &mut actions);
        actions
    }

    /// Allocation-free form of [`Self::request`]: appends to `actions`.
    pub fn request_into(
        &mut self,
        block: BlockAddr,
        req: DirRequest,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        debug_assert_eq!(block.home(), self.node, "request routed to wrong home");
        let dup_guard = self.dup_guard;
        let entry = self.entry(block);
        if dup_guard {
            if let Some(tag) = req_tag(&req) {
                let dup_of_txn = entry
                    .txn
                    .as_ref()
                    .is_some_and(|t| t.kind.tag() == Some(tag));
                let dup_queued = entry.queue.iter().any(|q| req_tag(q) == Some(tag));
                if dup_of_txn || dup_queued {
                    stats.dup_suppressed += 1;
                    return;
                }
            }
        }
        if entry.txn.is_some() {
            entry.queue.push_back(req);
            stats.dir_queued += 1;
            return;
        }
        self.dispatch(block, req, stats, actions);
        self.release_if_idle(block);
    }

    fn dispatch(
        &mut self,
        block: BlockAddr,
        req: DirRequest,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        match req {
            DirRequest::GetS { req, requester } => {
                self.start_read(block, req, requester, stats, actions);
            }
            DirRequest::GetX { req, requester } => {
                self.start_write(block, req, requester, stats, actions);
            }
            DirRequest::Upgrade { req, requester } => {
                let entry = self.entry(block);
                let holds =
                    matches!(entry.state, DirState::Shared) && entry.sharers.contains(requester);
                // While the AMU shares the block it may hold a silently
                // accumulated word (a dirty `amo.inc` awaiting its test
                // value) that sharers have not seen. An in-place upgrade
                // would let the requester overwrite the flushed value with
                // its stale copy; degrade to a full GetX so it refetches
                // post-flush data.
                if holds && !entry.amu_shared {
                    self.start_upgrade(block, req, requester, stats, actions);
                } else {
                    // The requester lost its copy while the upgrade was in
                    // flight (or the block is AMU-shared): treat as a full
                    // GetX (it will get DataX and know its SC must fail if
                    // its reservation was lost).
                    self.start_write(block, req, requester, stats, actions);
                }
            }
            DirRequest::FineGet { token, addr } => {
                self.start_fine_get(block, token, addr, stats, actions);
            }
            DirRequest::FinePut { addr, value, flow } => {
                self.do_fine_put(block, addr, value, flow, stats, actions);
            }
        }
    }

    fn start_read(
        &mut self,
        block: BlockAddr,
        req: ReqId,
        requester: ProcId,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        let entry = self.entry(block);
        let mut txn = Txn::new(TxnKind::Read { req, requester });
        match entry.state {
            DirState::Uncached | DirState::Shared => {
                txn.mem_pending = true;
                actions.push(DirAction::ReadDram { block });
                stats.dram_reads += 1;
            }
            DirState::Exclusive(owner) if owner == requester => {
                // Owner re-requests: its writeback must be in flight.
                txn.waiting_writeback = true;
            }
            DirState::Exclusive(owner) => {
                txn.owner_pending = true;
                actions.push(DirAction::ToProc {
                    proc: owner,
                    payload: Payload::Intervention {
                        kind: InterventionKind::Shared,
                        block,
                    },
                });
                stats.interventions_sent += 1;
            }
        }
        entry.txn = Some(txn);
        self.try_complete(block, stats, actions);
    }

    fn start_write(
        &mut self,
        block: BlockAddr,
        req: ReqId,
        requester: ProcId,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        // Exclusive ownership is incompatible with an AMU copy: flush the
        // AMU's (possibly dirty) words into memory first.
        self.flush_amu_if_shared(block, actions);
        let entry = self.entry(block);
        let mut txn = Txn::new(TxnKind::Write { req, requester });
        match entry.state {
            DirState::Uncached => {
                txn.mem_pending = true;
                actions.push(DirAction::ReadDram { block });
                stats.dram_reads += 1;
            }
            DirState::Shared => {
                let mut acks = 0;
                for p in entry.sharers.iter() {
                    if p != requester {
                        actions.push(DirAction::ToProc {
                            proc: p,
                            payload: Payload::Inv { block },
                        });
                        acks += 1;
                    }
                }
                stats.invalidations_sent += acks as u64;
                txn.pending_acks = acks;
                txn.mem_pending = true;
                actions.push(DirAction::ReadDram { block });
                stats.dram_reads += 1;
            }
            DirState::Exclusive(owner) if owner == requester => {
                txn.waiting_writeback = true;
            }
            DirState::Exclusive(owner) => {
                txn.owner_pending = true;
                actions.push(DirAction::ToProc {
                    proc: owner,
                    payload: Payload::Intervention {
                        kind: InterventionKind::Exclusive,
                        block,
                    },
                });
                stats.interventions_sent += 1;
            }
        }
        self.entry(block).txn = Some(txn);
        self.try_complete(block, stats, actions);
    }

    fn start_upgrade(
        &mut self,
        block: BlockAddr,
        req: ReqId,
        requester: ProcId,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        self.flush_amu_if_shared(block, actions);
        let entry = self.entry(block);
        let mut acks = 0;
        for p in entry.sharers.iter() {
            if p != requester {
                actions.push(DirAction::ToProc {
                    proc: p,
                    payload: Payload::Inv { block },
                });
                acks += 1;
            }
        }
        stats.invalidations_sent += acks as u64;
        let mut txn = Txn::new(TxnKind::UpgradeWait { req, requester });
        txn.pending_acks = acks;
        entry.txn = Some(txn);
        self.try_complete(block, stats, actions);
    }

    fn start_fine_get(
        &mut self,
        block: BlockAddr,
        token: u64,
        addr: Addr,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        let entry = self.entry(block);
        let mut txn = Txn::new(TxnKind::FineGet { token, addr });
        match entry.state {
            DirState::Uncached | DirState::Shared => {
                txn.mem_pending = true;
                actions.push(DirAction::ReadDram { block });
                stats.dram_reads += 1;
            }
            DirState::Exclusive(owner) => {
                txn.owner_pending = true;
                actions.push(DirAction::ToProc {
                    proc: owner,
                    payload: Payload::Intervention {
                        kind: InterventionKind::Shared,
                        block,
                    },
                });
                stats.interventions_sent += 1;
            }
        }
        entry.txn = Some(txn);
        self.try_complete(block, stats, actions);
    }

    fn do_fine_put(
        &mut self,
        block: BlockAddr,
        addr: Addr,
        value: Word,
        flow: u64,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        let procs_per_node = self.procs_per_node;
        let entry = self.entry(block);
        if !entry.amu_shared {
            // The AMU's copy was flushed by an intervening GetX; its value
            // already reached memory via FlushAmu, so this put is stale.
            return;
        }
        actions.push(DirAction::WriteDramWord { addr, value });
        stats.dram_writes += 1;
        stats.puts += 1;
        // One update per *node* holding a copy; the hub fans it out to its
        // local caches and RAC.
        let mut last: Option<NodeId> = None;
        for p in entry.sharers.iter() {
            let n = p.node(procs_per_node);
            if last != Some(n) {
                actions.push(DirAction::WordUpdateToNode {
                    node: n,
                    addr,
                    value,
                    flow,
                });
                stats.word_updates_sent += 1;
                last = Some(n);
            }
        }
        stats.dir_transactions += 1;
    }

    fn flush_amu_if_shared(&mut self, block: BlockAddr, actions: &mut Vec<DirAction>) {
        let entry = self.entry(block);
        if entry.amu_shared {
            entry.amu_shared = false;
            actions.push(DirAction::FlushAmu { block });
        }
    }

    /// An invalidation acknowledgement arrived.
    pub fn inv_ack(&mut self, block: BlockAddr, from: ProcId, stats: &mut Stats) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.inv_ack_into(block, from, stats, &mut actions);
        actions
    }

    /// Allocation-free form of [`Self::inv_ack`]: appends to `actions`.
    pub fn inv_ack_into(
        &mut self,
        block: BlockAddr,
        from: ProcId,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        let entry = self.entry(block);
        entry.sharers.remove(from);
        let txn = entry.txn.as_mut().expect("inv-ack without transaction");
        assert!(txn.pending_acks > 0, "unexpected inv-ack");
        txn.pending_acks -= 1;
        self.try_complete(block, stats, actions);
        self.release_if_idle(block);
    }

    /// The (former) owner answered an intervention.
    pub fn intervention_reply(
        &mut self,
        block: BlockAddr,
        from: ProcId,
        resp: InterventionResp,
        stats: &mut Stats,
    ) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.intervention_reply_into(block, from, resp, stats, &mut actions);
        actions
    }

    /// Allocation-free form of [`Self::intervention_reply`].
    pub fn intervention_reply_into(
        &mut self,
        block: BlockAddr,
        from: ProcId,
        resp: InterventionResp,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        let entry = self.entry(block);
        let txn = entry
            .txn
            .as_mut()
            .expect("intervention reply without transaction");
        assert!(txn.owner_pending, "unexpected intervention reply");
        txn.owner_pending = false;
        let keep_owner_as_sharer =
            matches!(txn.kind, TxnKind::Read { .. } | TxnKind::FineGet { .. });
        match resp {
            InterventionResp::Dirty(data) => {
                txn.data = Some(data);
                txn.dirty_data = true;
                if keep_owner_as_sharer {
                    txn.downgraded_owner = Some(from);
                }
            }
            InterventionResp::Clean => {
                if keep_owner_as_sharer {
                    txn.downgraded_owner = Some(from);
                }
                if txn.data.is_none() && !txn.mem_pending {
                    txn.mem_pending = true;
                    actions.push(DirAction::ReadDram { block });
                    stats.dram_reads += 1;
                }
            }
            InterventionResp::Gone => {
                // Data arrives with the in-flight writeback.
                if txn.data.is_none() {
                    txn.waiting_writeback = true;
                }
            }
        }
        self.try_complete(block, stats, actions);
        self.release_if_idle(block);
    }

    /// A writeback arrived from an owner eviction.
    pub fn writeback(
        &mut self,
        block: BlockAddr,
        from: ProcId,
        data: BlockData,
        stats: &mut Stats,
    ) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.writeback_into(block, from, data, stats, &mut actions);
        actions
    }

    /// Allocation-free form of [`Self::writeback`]: appends to `actions`.
    pub fn writeback_into(
        &mut self,
        block: BlockAddr,
        from: ProcId,
        data: BlockData,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        let entry = self.entry(block);
        if let Some(txn) = entry.txn.as_mut() {
            // The open transaction was waiting for exactly this data.
            txn.data = Some(data);
            txn.dirty_data = true;
            txn.waiting_writeback = false;
            self.try_complete(block, stats, actions);
            self.release_if_idle(block);
            return;
        }
        // Standalone eviction.
        if entry.state == DirState::Exclusive(from) {
            entry.state = DirState::Uncached;
            actions.push(DirAction::WriteDramBlock { block, data });
            stats.dram_writes += 1;
            stats.dir_transactions += 1;
        }
        // Otherwise: stale writeback from a superseded owner — drop it.
        self.release_if_idle(block);
    }

    /// A DRAM read started by [`DirAction::ReadDram`] finished.
    pub fn dram_done(
        &mut self,
        block: BlockAddr,
        data: BlockData,
        stats: &mut Stats,
    ) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.dram_done_into(block, data, stats, &mut actions);
        actions
    }

    /// Allocation-free form of [`Self::dram_done`]: appends to `actions`.
    pub fn dram_done_into(
        &mut self,
        block: BlockAddr,
        data: BlockData,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        let entry = self.entry(block);
        let txn = entry.txn.as_mut().expect("dram data without transaction");
        assert!(txn.mem_pending, "unexpected dram completion");
        txn.mem_pending = false;
        if txn.data.is_none() {
            txn.data = Some(data);
        }
        self.try_complete(block, stats, actions);
        self.release_if_idle(block);
    }

    /// The AMU finished the operation a fine-grained get fed; `put` is the
    /// word it writes back immediately (an `amo.fetchadd`, or an `amo.inc`
    /// whose test value matched). `flow` is the causal flow of the AMU
    /// operation, echoed on any word-update fanout.
    pub fn fine_complete(
        &mut self,
        block: BlockAddr,
        put: Option<(Addr, Word)>,
        flow: u64,
        stats: &mut Stats,
    ) -> Vec<DirAction> {
        let mut actions = Vec::new();
        self.fine_complete_into(block, put, flow, stats, &mut actions);
        actions
    }

    /// Allocation-free form of [`Self::fine_complete`]: appends to `actions`.
    pub fn fine_complete_into(
        &mut self,
        block: BlockAddr,
        put: Option<(Addr, Word)>,
        flow: u64,
        stats: &mut Stats,
        actions: &mut Vec<DirAction>,
    ) {
        {
            let entry = self.entry(block);
            let txn = entry.txn.take().expect("fine_complete without transaction");
            assert!(
                matches!(txn.kind, TxnKind::FineGet { .. }) && txn.fine_open,
                "fine_complete on a non-fine transaction"
            );
            stats.dir_transactions += 1;
        }
        if let Some((addr, value)) = put {
            self.do_fine_put(block, addr, value, flow, stats, actions);
        }
        self.pump(block, stats, actions);
        self.release_if_idle(block);
    }

    fn try_complete(&mut self, block: BlockAddr, stats: &mut Stats, actions: &mut Vec<DirAction>) {
        let entry = self.entry(block);
        let Some(txn) = entry.txn.as_mut() else {
            return;
        };
        if !txn.ready() {
            return;
        }
        let txn = entry.txn.take().expect("checked above");
        if txn.dirty_data {
            let data = txn.data.clone().expect("dirty data present");
            actions.push(DirAction::WriteDramBlock { block, data });
            stats.dram_writes += 1;
        }
        match txn.kind {
            TxnKind::Read { req, requester } => {
                let data = txn.data.expect("read completes with data");
                entry.state = DirState::Shared;
                if let Some(o) = txn.downgraded_owner {
                    entry.sharers.insert(o);
                }
                entry.sharers.insert(requester);
                actions.push(DirAction::ToProc {
                    proc: requester,
                    payload: Payload::DataS { req, block, data },
                });
                stats.dir_transactions += 1;
            }
            TxnKind::Write { req, requester } => {
                let data = txn.data.expect("write completes with data");
                entry.state = DirState::Exclusive(requester);
                entry.sharers = ProcSet::new();
                actions.push(DirAction::ToProc {
                    proc: requester,
                    payload: Payload::DataX { req, block, data },
                });
                stats.dir_transactions += 1;
            }
            TxnKind::UpgradeWait { req, requester } => {
                entry.state = DirState::Exclusive(requester);
                entry.sharers = ProcSet::new();
                actions.push(DirAction::ToProc {
                    proc: requester,
                    payload: Payload::UpgradeAck { req, block },
                });
                stats.dir_transactions += 1;
            }
            TxnKind::FineGet { token, addr } => {
                // Deliver the word, keep the transaction open until the
                // AMU calls back with `fine_complete` — this makes the
                // whole AMO atomic with respect to this block.
                let data = txn.data.expect("fine get completes with data");
                let value = data.word(addr.word_in_block(data.len() as u64 * 8));
                entry.state = DirState::Shared;
                if let Some(o) = txn.downgraded_owner {
                    entry.sharers.insert(o);
                }
                entry.amu_shared = true;
                let mut reopened = Txn::new(TxnKind::FineGet { token, addr });
                reopened.fine_open = true;
                entry.txn = Some(reopened);
                actions.push(DirAction::FineValue { token, addr, value });
                return; // don't pump: the block transaction is still open
            }
        }
        self.pump(block, stats, actions);
    }

    fn pump(&mut self, block: BlockAddr, stats: &mut Stats, actions: &mut Vec<DirAction>) {
        loop {
            let entry = self.entry(block);
            if entry.txn.is_some() {
                return;
            }
            let Some(req) = entry.queue.pop_front() else {
                return;
            };
            self.dispatch(block, req, stats, actions);
        }
    }

    /// Current proc sharer count of a block (diagnostics/tests).
    pub fn sharer_count(&self, block: BlockAddr) -> usize {
        self.peek(block).map_or(0, |e| e.sharers.len())
    }

    /// Whether the home AMU is registered as a sharer (diagnostics/tests).
    pub fn amu_shares(&self, block: BlockAddr) -> bool {
        self.peek(block).is_some_and(|e| e.amu_shared)
    }

    /// Whether the block currently has an open transaction.
    pub fn is_busy(&self, block: BlockAddr) -> bool {
        self.peek(block).is_some_and(|e| e.txn.is_some())
    }

    /// Queued request count for a block (diagnostics/tests).
    pub fn queue_len(&self, block: BlockAddr) -> usize {
        self.peek(block).map_or(0, |e| e.queue.len())
    }

    /// Total requests queued across every block of this directory
    /// (observability sampling). Idle entries are released eagerly, so
    /// this walks only blocks with live protocol state.
    pub fn queued_requests(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.queue.len()).sum()
    }

    /// Protocol transactions currently open at this directory.
    pub fn open_transactions(&self) -> usize {
        self.entries.iter().filter(|(_, e)| e.txn.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::NodeId;

    const HOME: NodeId = NodeId(0);
    const LINE_WORDS: usize = 16;

    fn dir() -> (Directory, Stats) {
        (Directory::new(HOME, 2), Stats::new())
    }

    fn blk() -> BlockAddr {
        Addr::on_node(HOME, 0x1000).block(128)
    }

    fn data(vals: &[(usize, Word)]) -> BlockData {
        let mut d = BlockData::zeroed(LINE_WORDS);
        for &(i, v) in vals {
            d.set_word(i, v);
        }
        d
    }

    fn to_proc(actions: &[DirAction]) -> Vec<(ProcId, &Payload)> {
        actions
            .iter()
            .filter_map(|a| match a {
                DirAction::ToProc { proc, payload } => Some((*proc, payload)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn gets_on_uncached_reads_dram_and_replies() {
        let (mut d, mut s) = dir();
        let a = d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(1),
                requester: ProcId(2),
            },
            &mut s,
        );
        assert_eq!(a, vec![DirAction::ReadDram { block: blk() }]);
        assert!(d.is_busy(blk()));
        let a = d.dram_done(blk(), data(&[(0, 5)]), &mut s);
        match &a[..] {
            [DirAction::ToProc {
                proc,
                payload: Payload::DataS { req, data, .. },
            }] => {
                assert_eq!(*proc, ProcId(2));
                assert_eq!(*req, ReqId(1));
                assert_eq!(data.word(0), 5);
            }
            other => panic!("unexpected actions {other:?}"),
        }
        assert!(!d.is_busy(blk()));
        assert_eq!(d.sharer_count(blk()), 1);
    }

    #[test]
    fn getx_on_shared_invalidates_and_collects_acks() {
        let (mut d, mut s) = dir();
        // Two sharers: P0, P1.
        for p in [0u16, 1] {
            d.request(
                blk(),
                DirRequest::GetS {
                    req: ReqId(p as u64),
                    requester: ProcId(p),
                },
                &mut s,
            );
            d.dram_done(blk(), data(&[]), &mut s);
        }
        assert_eq!(d.sharer_count(blk()), 2);
        // P2 wants exclusive.
        let a = d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(9),
                requester: ProcId(2),
            },
            &mut s,
        );
        let invs: Vec<ProcId> = to_proc(&a)
            .into_iter()
            .filter(|(_, p)| matches!(p, Payload::Inv { .. }))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(invs, vec![ProcId(0), ProcId(1)]);
        assert!(a.contains(&DirAction::ReadDram { block: blk() }));
        // DRAM returns but acks still pending: no reply yet.
        assert!(d.dram_done(blk(), data(&[]), &mut s).is_empty());
        assert!(d.inv_ack(blk(), ProcId(0), &mut s).is_empty());
        let a = d.inv_ack(blk(), ProcId(1), &mut s);
        assert!(matches!(
            to_proc(&a)[..],
            [(ProcId(2), Payload::DataX { .. })]
        ));
        assert_eq!(d.sharer_count(blk()), 0);
        assert_eq!(s.invalidations_sent, 2);
    }

    #[test]
    fn upgrade_with_no_other_sharers_completes_instantly() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(0),
                requester: ProcId(3),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        let a = d.request(
            blk(),
            DirRequest::Upgrade {
                req: ReqId(1),
                requester: ProcId(3),
            },
            &mut s,
        );
        assert!(matches!(
            to_proc(&a)[..],
            [(ProcId(3), Payload::UpgradeAck { .. })]
        ));
        assert!(!d.is_busy(blk()));
    }

    #[test]
    fn upgrade_after_losing_copy_becomes_getx() {
        let (mut d, mut s) = dir();
        // P0 shares; P1 takes exclusive; P0's late upgrade must be a GetX.
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(1),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        d.inv_ack(blk(), ProcId(0), &mut s);
        // Now P0 upgrades: it is no longer a sharer → full write txn with
        // an intervention to P1.
        let a = d.request(
            blk(),
            DirRequest::Upgrade {
                req: ReqId(2),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert!(matches!(
            to_proc(&a)[..],
            [(
                ProcId(1),
                Payload::Intervention {
                    kind: InterventionKind::Exclusive,
                    ..
                }
            )]
        ));
        let a = d.intervention_reply(
            blk(),
            ProcId(1),
            InterventionResp::Dirty(data(&[(1, 7)])),
            &mut s,
        );
        // Dirty data goes back to memory and P0 gets DataX with it.
        assert!(matches!(a[0], DirAction::WriteDramBlock { .. }));
        match &a[1] {
            DirAction::ToProc {
                proc,
                payload: Payload::DataX { data, .. },
            } => {
                assert_eq!(*proc, ProcId(0));
                assert_eq!(data.word(1), 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gets_on_exclusive_downgrades_owner() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        let a = d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(1),
                requester: ProcId(1),
            },
            &mut s,
        );
        assert!(matches!(
            to_proc(&a)[..],
            [(
                ProcId(0),
                Payload::Intervention {
                    kind: InterventionKind::Shared,
                    ..
                }
            )]
        ));
        let a = d.intervention_reply(
            blk(),
            ProcId(0),
            InterventionResp::Dirty(data(&[(0, 9)])),
            &mut s,
        );
        // Both the old owner and the reader end up sharers.
        assert!(a
            .iter()
            .any(|x| matches!(x, DirAction::WriteDramBlock { .. })));
        assert!(to_proc(&a)
            .iter()
            .any(|(p, pl)| *p == ProcId(1) && matches!(pl, Payload::DataS { .. })));
        assert_eq!(d.sharer_count(blk()), 2);
    }

    #[test]
    fn clean_owner_causes_memory_read() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[(2, 4)]), &mut s);
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(1),
                requester: ProcId(1),
            },
            &mut s,
        );
        let a = d.intervention_reply(blk(), ProcId(0), InterventionResp::Clean, &mut s);
        assert_eq!(a, vec![DirAction::ReadDram { block: blk() }]);
        let a = d.dram_done(blk(), data(&[(2, 4)]), &mut s);
        assert!(to_proc(&a)
            .iter()
            .any(|(p, pl)| *p == ProcId(1) && matches!(pl, Payload::DataS { .. })));
    }

    #[test]
    fn gone_owner_waits_for_writeback() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(1),
                requester: ProcId(1),
            },
            &mut s,
        );
        let a = d.intervention_reply(blk(), ProcId(0), InterventionResp::Gone, &mut s);
        assert!(a.is_empty());
        let a = d.writeback(blk(), ProcId(0), data(&[(3, 3)]), &mut s);
        assert!(to_proc(&a)
            .iter()
            .any(|(p, pl)| *p == ProcId(1) && matches!(pl, Payload::DataS { .. })));
    }

    #[test]
    fn writeback_arriving_before_gone_reply_also_works() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(1),
                requester: ProcId(1),
            },
            &mut s,
        );
        // Writeback crosses the intervention.
        let a = d.writeback(blk(), ProcId(0), data(&[(3, 3)]), &mut s);
        assert!(a.is_empty(), "still waiting for the intervention reply");
        let a = d.intervention_reply(blk(), ProcId(0), InterventionResp::Gone, &mut s);
        assert!(to_proc(&a)
            .iter()
            .any(|(p, pl)| *p == ProcId(1) && matches!(pl, Payload::DataS { .. })));
    }

    #[test]
    fn standalone_writeback_returns_block_to_memory() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        let a = d.writeback(blk(), ProcId(0), data(&[(0, 1)]), &mut s);
        assert!(matches!(a[..], [DirAction::WriteDramBlock { .. }]));
        // Next reader goes straight to memory.
        let a = d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(1),
                requester: ProcId(1),
            },
            &mut s,
        );
        assert_eq!(a, vec![DirAction::ReadDram { block: blk() }]);
    }

    #[test]
    fn requests_queue_behind_open_transaction() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        let a = d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(1),
                requester: ProcId(1),
            },
            &mut s,
        );
        assert!(a.is_empty());
        assert_eq!(d.queue_len(blk()), 1);
        assert_eq!(s.dir_queued, 1);
        // Completing the first drains the queue: the second starts its own
        // DRAM read.
        let a = d.dram_done(blk(), data(&[]), &mut s);
        assert!(to_proc(&a).iter().any(|(p, _)| *p == ProcId(0)));
        assert!(a.contains(&DirAction::ReadDram { block: blk() }));
        let a = d.dram_done(blk(), data(&[]), &mut s);
        assert!(to_proc(&a).iter().any(|(p, _)| *p == ProcId(1)));
        assert_eq!(d.sharer_count(blk()), 2);
    }

    #[test]
    fn fine_get_registers_amu_and_stays_open_until_complete() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(2);
        let a = d.request(blk(), DirRequest::FineGet { token: 7, addr: w }, &mut s);
        assert_eq!(a, vec![DirAction::ReadDram { block: blk() }]);
        let a = d.dram_done(blk(), data(&[(2, 41)]), &mut s);
        assert_eq!(
            a,
            vec![DirAction::FineValue {
                token: 7,
                addr: w,
                value: 41
            }]
        );
        assert!(d.is_busy(blk()), "fine txn stays open for the AMU");
        assert!(d.amu_shares(blk()));
        // AMU computes 41+1 and puts because its test matched.
        let a = d.fine_complete(blk(), Some((w, 42)), 0, &mut s);
        assert!(a.contains(&DirAction::WriteDramWord { addr: w, value: 42 }));
        assert!(!d.is_busy(blk()));
        assert_eq!(s.puts, 1);
        // No processor sharers yet → no word updates.
        assert_eq!(s.word_updates_sent, 0);
    }

    #[test]
    fn fine_put_updates_every_sharing_node_once() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(0);
        // Sharers: P0, P1 (node 0) and P2 (node 1).
        for p in [0u16, 1, 2] {
            d.request(
                blk(),
                DirRequest::GetS {
                    req: ReqId(p as u64),
                    requester: ProcId(p),
                },
                &mut s,
            );
            d.dram_done(blk(), data(&[]), &mut s);
        }
        // AMU joins via fine get.
        d.request(blk(), DirRequest::FineGet { token: 1, addr: w }, &mut s);
        d.dram_done(blk(), data(&[]), &mut s);
        let a = d.fine_complete(blk(), Some((w, 3)), 0, &mut s);
        let updates: Vec<NodeId> = a
            .iter()
            .filter_map(|x| match x {
                DirAction::WordUpdateToNode { node, value: 3, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(
            updates,
            vec![NodeId(0), NodeId(1)],
            "one update per node, deduped"
        );
        assert_eq!(s.word_updates_sent, 2);
        // Sharers keep their copies: no invalidations.
        assert_eq!(s.invalidations_sent, 0);
        assert_eq!(d.sharer_count(blk()), 3);
    }

    #[test]
    fn getx_flushes_amu_before_granting_ownership() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(0);
        d.request(blk(), DirRequest::FineGet { token: 1, addr: w }, &mut s);
        d.dram_done(blk(), data(&[]), &mut s);
        d.fine_complete(blk(), None, 0, &mut s); // amo.inc mid-count: no put yet
        assert!(d.amu_shares(blk()));
        let a = d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(5),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert_eq!(a[0], DirAction::FlushAmu { block: blk() });
        assert!(!d.amu_shares(blk()));
        // Subsequent stale FinePut from the AMU is dropped.
        d.dram_done(blk(), data(&[]), &mut s);
        let a = d.request(
            blk(),
            DirRequest::FinePut {
                addr: w,
                value: 9,
                flow: 0,
            },
            &mut s,
        );
        assert!(a.is_empty(), "stale put dropped: {a:?}");
        assert_eq!(s.puts, 0);
    }

    #[test]
    fn upgrade_on_amu_shared_block_degrades_to_getx() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(0);
        // P0 holds the block Shared...
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        assert_eq!(d.sharer_count(blk()), 1);
        // ...and the AMU checks the word out (a silent amo.inc may now be
        // accumulating a value P0 has never seen).
        d.request(blk(), DirRequest::FineGet { token: 1, addr: w }, &mut s);
        d.dram_done(blk(), data(&[]), &mut s);
        d.fine_complete(blk(), None, 0, &mut s);
        assert!(d.amu_shares(blk()));
        // P0's upgrade must not be satisfied in place: the directory
        // degrades it to a full GetX, flushing the AMU and re-reading
        // memory so P0's fill carries the post-flush value.
        let a = d.request(
            blk(),
            DirRequest::Upgrade {
                req: ReqId(7),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert_eq!(a[0], DirAction::FlushAmu { block: blk() });
        assert!(
            a.contains(&DirAction::ReadDram { block: blk() }),
            "degraded upgrade must refetch memory: {a:?}"
        );
        assert!(!d.amu_shares(blk()));
        let a = d.dram_done(blk(), data(&[]), &mut s);
        assert!(
            a.iter().any(|x| matches!(
                x,
                DirAction::ToProc {
                    proc: ProcId(0),
                    payload: Payload::DataX { .. },
                }
            )),
            "requester must receive data, not a bare UpgradeAck: {a:?}"
        );
    }

    #[test]
    fn upgrade_queued_behind_fine_get_also_degrades() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(0);
        // P0 holds the block Shared.
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        // A fine get opens the block; P0's upgrade arrives while it is
        // open and queues.
        d.request(blk(), DirRequest::FineGet { token: 1, addr: w }, &mut s);
        d.dram_done(blk(), data(&[]), &mut s);
        d.request(
            blk(),
            DirRequest::Upgrade {
                req: ReqId(3),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert_eq!(d.queue_len(blk()), 1);
        // The AMU finishes with no put (a silent amo.inc). The pumped
        // upgrade must see amu_shared and degrade: flush + memory read,
        // not an instant UpgradeAck built on P0's stale copy.
        let a = d.fine_complete(blk(), None, 0, &mut s);
        assert!(
            a.contains(&DirAction::FlushAmu { block: blk() }),
            "pumped upgrade must flush the AMU: {a:?}"
        );
        assert!(
            a.contains(&DirAction::ReadDram { block: blk() }),
            "pumped upgrade must refetch memory: {a:?}"
        );
        assert!(!a.iter().any(|x| matches!(
            x,
            DirAction::ToProc {
                payload: Payload::UpgradeAck { .. },
                ..
            }
        )));
    }

    #[test]
    fn fine_get_queued_behind_getx_sees_fresh_data() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(0);
        // P0 takes exclusive ownership and dirties the word...
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        // ...the AMU's fine get queues behind nothing (block idle), but
        // must intervene on the owner and return the dirty value.
        let a = d.request(blk(), DirRequest::FineGet { token: 9, addr: w }, &mut s);
        assert!(matches!(
            to_proc(&a)[..],
            [(
                ProcId(0),
                Payload::Intervention {
                    kind: InterventionKind::Shared,
                    ..
                }
            )]
        ));
        let a = d.intervention_reply(
            blk(),
            ProcId(0),
            InterventionResp::Dirty(data(&[(0, 77)])),
            &mut s,
        );
        assert!(a.contains(&DirAction::FineValue {
            token: 9,
            addr: w,
            value: 77
        }));
        // Old owner stays a sharer; AMU registered.
        assert!(d.amu_shares(blk()));
        assert_eq!(d.sharer_count(blk()), 1);
        d.fine_complete(blk(), None, 0, &mut s);
        assert!(!d.is_busy(blk()));
    }

    #[test]
    fn requests_queued_behind_open_fine_transaction_drain_after_complete() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(0);
        d.request(blk(), DirRequest::FineGet { token: 1, addr: w }, &mut s);
        d.dram_done(blk(), data(&[]), &mut s);
        // The fine txn is open (waiting for the AMU); a processor GetS
        // must queue, not interleave.
        let a = d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(3),
                requester: ProcId(2),
            },
            &mut s,
        );
        assert!(a.is_empty());
        assert_eq!(d.queue_len(blk()), 1);
        // Completing the AMO drains the queue: the GetS starts its read.
        let a = d.fine_complete(blk(), Some((w, 5)), 0, &mut s);
        assert!(a.contains(&DirAction::ReadDram { block: blk() }));
        let a = d.dram_done(blk(), data(&[(0, 5)]), &mut s);
        assert!(to_proc(&a)
            .iter()
            .any(|(p, pl)| *p == ProcId(2) && matches!(pl, Payload::DataS { .. })));
    }

    #[test]
    fn fine_put_queued_behind_write_txn_is_dropped_as_stale() {
        let (mut d, mut s) = dir();
        let w = blk().word_addr(0);
        // AMU holds the word...
        d.request(blk(), DirRequest::FineGet { token: 1, addr: w }, &mut s);
        d.dram_done(blk(), data(&[]), &mut s);
        d.fine_complete(blk(), None, 0, &mut s);
        assert!(d.amu_shares(blk()));
        // ...P0's GetX opens a write txn (flushing the AMU) while the
        // AMU's put is already queued behind it.
        let a = d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert!(a.contains(&DirAction::FlushAmu { block: blk() }));
        let a = d.request(
            blk(),
            DirRequest::FinePut {
                addr: w,
                value: 3,
                flow: 0,
            },
            &mut s,
        );
        assert!(a.is_empty(), "queued behind the write");
        // Write completes; the stale put drains as a no-op.
        let a = d.dram_done(blk(), data(&[]), &mut s);
        assert!(to_proc(&a)
            .iter()
            .any(|(p, pl)| *p == ProcId(0) && matches!(pl, Payload::DataX { .. })));
        assert_eq!(s.puts, 0, "flushed AMU's put must be dropped");
        assert!(!d.is_busy(blk()));
    }

    #[test]
    fn interleaved_reads_and_writes_keep_directory_state_consistent() {
        let (mut d, mut s) = dir();
        // A stress script: readers and writers in a fixed order; at the
        // end the directory must settle to a consistent Shared state.
        for round in 0..3u64 {
            for p in [0u16, 1, 2] {
                d.request(
                    blk(),
                    DirRequest::GetS {
                        req: ReqId(round * 10 + p as u64),
                        requester: ProcId(p),
                    },
                    &mut s,
                );
                while d.is_busy(blk()) {
                    // The only possible pending action is the DRAM read
                    // of the head transaction.
                    let actions = d.dram_done(blk(), data(&[]), &mut s);
                    // Drain interventions/invalidations synchronously.
                    for act in actions {
                        if let DirAction::ToProc { proc, payload } = act {
                            match payload {
                                Payload::Inv { .. } => {
                                    d.inv_ack(blk(), proc, &mut s);
                                }
                                Payload::Intervention { .. } => {
                                    d.intervention_reply(
                                        blk(),
                                        proc,
                                        InterventionResp::Clean,
                                        &mut s,
                                    );
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(d.sharer_count(blk()), 3);
        assert!(!d.is_busy(blk()));
        assert_eq!(d.queue_len(blk()), 0);
    }

    #[test]
    fn owner_rerequest_waits_for_its_own_writeback() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(0),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.dram_done(blk(), data(&[]), &mut s);
        // P0 evicts (writeback in flight) and immediately re-requests.
        let a = d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert!(a.is_empty(), "must wait for the writeback");
        let a = d.writeback(blk(), ProcId(0), data(&[(0, 8)]), &mut s);
        match to_proc(&a)[..] {
            [(ProcId(0), Payload::DataX { data, .. })] => assert_eq!(data.word(0), 8),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dup_guard_suppresses_retransmitted_request_while_txn_open() {
        let (d, mut s) = dir();
        let mut d = d.with_dup_guard(true);
        // P0's GetX opens a transaction (memory read pending).
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(0),
            },
            &mut s,
        );
        // A duplicated copy of the same request arrives: suppressed, no
        // second transaction, no queue slot.
        let a = d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert!(a.is_empty());
        assert_eq!(s.dup_suppressed, 1);
        assert_eq!(d.queue_len(blk()), 0);
        // The single open transaction completes normally.
        let a = d.dram_done(blk(), data(&[]), &mut s);
        assert!(to_proc(&a)
            .iter()
            .any(|(p, pl)| *p == ProcId(0) && matches!(pl, Payload::DataX { .. })));
        assert!(!d.is_busy(blk()));
    }

    #[test]
    fn dup_guard_suppresses_duplicate_of_queued_request() {
        let (d, mut s) = dir();
        let mut d = d.with_dup_guard(true);
        // P0 opens a txn; P1's GetS queues behind it.
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(0),
            },
            &mut s,
        );
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(2),
                requester: ProcId(1),
            },
            &mut s,
        );
        assert_eq!(d.queue_len(blk()), 1);
        // A duplicate of the queued GetS must not take a second slot...
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(2),
                requester: ProcId(1),
            },
            &mut s,
        );
        assert_eq!(d.queue_len(blk()), 1);
        assert_eq!(s.dup_suppressed, 1);
        // ...but a distinct request from the same processor still queues.
        d.request(
            blk(),
            DirRequest::GetS {
                req: ReqId(3),
                requester: ProcId(1),
            },
            &mut s,
        );
        assert_eq!(d.queue_len(blk()), 2);
        assert_eq!(s.dup_suppressed, 1);
    }

    #[test]
    fn dup_guard_off_keeps_strict_behaviour() {
        let (mut d, mut s) = dir();
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(0),
            },
            &mut s,
        );
        // Without the guard a re-received request queues like any other
        // (under reliable delivery this is a protocol bug the run should
        // surface, not swallow).
        d.request(
            blk(),
            DirRequest::GetX {
                req: ReqId(1),
                requester: ProcId(0),
            },
            &mut s,
        );
        assert_eq!(d.queue_len(blk()), 1);
        assert_eq!(s.dup_suppressed, 0);
    }
}
