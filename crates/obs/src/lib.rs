//! Observability for the `amo-rs` simulator: cycle-stamped event traces,
//! Perfetto export, interval time series, and machine-readable metrics
//! reports.
//!
//! The design contract is **zero overhead when disabled**: every
//! instrumentation hook in the simulator is guarded by
//! `if T::ENABLED { ... }` where `T` is a [`Tracer`] implementation and
//! `ENABLED` is an associated `const`. With the zero-sized [`NopTracer`]
//! the guard is a compile-time `false`, so the entire hook — including
//! construction of the [`TraceEvent`] — is dead code the optimizer
//! removes; the PR-1 hot path stays byte-identical in spirit (verified by
//! the `perf_smoke` guard in CI). With [`RingTracer`] events land in a
//! fixed-capacity ring, so a trillion-cycle run still has bounded memory
//! and keeps the *most recent* window, with a count of what it dropped.
//!
//! Exports:
//! * [`critpath::analyze`] — causal-DAG critical-path extraction and
//!   per-stage sync-tax attribution (`amo-critpath-v1` reports) with an
//!   exact conservation invariant.
//! * [`perfetto::perfetto_json`] — Chrome/Perfetto trace-event JSON, one
//!   process per node, one track per component (directory, AMU, NoC, each
//!   processor), with flow arrows linking each request's causal chain.
//!   Open in <https://ui.perfetto.dev>.
//! * [`perfetto::text_dump`] — compact grep-able text form.
//! * [`timeseries::TimeSeries`] — interval samples of queue depths and
//!   link backlogs, with an ASCII timeline renderer.
//! * [`report::metrics_json`] — one JSON document combining `Stats` and
//!   the time series, for `--metrics-json`.
//! * [`jsonv::Json`] — a small JSON value parser used by tests and CI to
//!   validate everything this crate emits.
//! * [`hostprof`] — *host-side* self-profiling: the same
//!   compile-time-gated pattern applied to the simulator's own
//!   wall-clock and allocations (`amo-hostprof-v1` reports).

// `deny`, not `forbid`: the one sanctioned exception is the
// `GlobalAlloc` impl in `hostprof` (an unsafe trait by definition),
// which carries its own narrowly-scoped `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod critpath;
pub mod hostprof;
pub mod jsonv;
pub mod perfetto;
pub mod report;
pub mod timeseries;
pub mod tracer;

pub use critpath::{
    analyze, CritPathError, CritPathReport, EpisodePath, Stage, Workload, ALL_STAGES, STAGES,
};
pub use hostprof::{
    alloc_counters, hostprof_json, validate_hostprof, CountingAlloc, EdgeReport, HostProf,
    HostProfReport, HostProfSection, HostProfSectionSummary, HostProfiler, NopHostProf, Scope,
    ScopeReport,
};
pub use jsonv::Json;
pub use perfetto::{perfetto_json, text_dump, validate_perfetto, PerfettoSummary};
pub use report::{campaign_metrics_json, metrics_json, CampaignSummary};
pub use timeseries::{Metric, NodeSample, Tick, TimeSeries};
pub use tracer::{NopTracer, RingTracer, TraceBuf, TraceEvent, TraceKind, Tracer, Violation};
