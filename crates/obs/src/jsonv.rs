//! JSON value parsing. The parser itself moved to
//! [`amo_types::jsonv`] so layers below observability — the campaign
//! result cache, the stats round-trip — can decode stored artifacts;
//! this module re-exports it for source compatibility.

pub use amo_types::jsonv::Json;
