//! The tracer abstraction: a compile-time on/off switch plus a bounded
//! ring buffer for the "on" case.

use amo_types::Cycle;

/// What a trace event describes. The `class`/`a`/`b` payload fields of
/// [`TraceEvent`] are interpreted per kind (documented on each variant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A message entered the fabric. `class` = `MsgClass` index, `a` =
    /// destination node, `b` = the send's zero-load latency in cycles
    /// (serialization + hop pipeline, no queueing) — the critical-path
    /// engine splits the span into serialization vs contention with it.
    /// Span: injection → delivery at the destination hub.
    MsgSend,
    /// A message was delivered to a hub. `class` = `MsgClass` index,
    /// `a` = source node.
    MsgRecv,
    /// A payload was delivered to a processor (reply, active message, or
    /// word update). `class` = `MsgClass` index, `a` = source node.
    ProcRecv,
    /// The directory serviced one request. Span covers the occupancy
    /// cycles. `class` = `MsgClass` index of the request.
    DirService,
    /// A directory protocol transaction closed. Instant; `a` = number of
    /// transactions still open at this node.
    DirTxnEnd,
    /// An AMU executed one queued operation. Span: execution begin →
    /// reply injection. `a` = queue depth after dequeue.
    AmuOp,
    /// A kernel operation completed at a processor. Span: issue →
    /// completion. `class` = `OpClass` index.
    OpComplete,
    /// A kernel phase marker (barrier episode boundary, lock handoff...).
    /// `a` = the kernel's mark value.
    Mark,
    /// A kernel ran to completion on this processor.
    KernelDone,
    /// A link-level CRC-error replay occurred somewhere on the path of a
    /// message injected at this node. Instant; `a` = retransmissions, `b`
    /// = extra replay cycles charged.
    LinkRetry,
    /// The home AMU NACKed a dispatch (full queue or brown-out).
    /// Instant; `a` = requesting processor.
    AmuNack,
    /// The machine aborted with a typed error. Instant on node 0;
    /// `a` = cycle of the abort.
    Fault,
    /// A delivery fault dropped a message at the destination interface.
    /// Instant at the destination node; `class` = `MsgClass` index,
    /// `a` = source node.
    MsgDrop,
    /// A delivery fault duplicated a message at the destination
    /// interface. Instant at the destination node; `class` = `MsgClass`
    /// index, `a` = source node.
    MsgDup,
    /// A requester-side end-to-end timeout fired on an outstanding
    /// request. Instant at the requester's node; `a` = requesting
    /// processor, `b` = retransmission attempt.
    E2eTimeout,
    /// The home AMU *applied* one operation to memory (dedup-suppressed
    /// replays of an already-served request do **not** produce this
    /// event — that asymmetry is exactly what the at-most-once monitor
    /// checks). Instant at the home node; `proc` = requester, `flow` =
    /// the request's tag, `a` = target address, `b` = the pre-apply
    /// word value.
    AmuApply,
    /// The directory removed an entry from its slab arena. Instant at
    /// the home node; `a` = the block address released, `b` = 1 if the
    /// entry was idle at removal (the directory-sanity monitor flags
    /// `b = 0`: an entry reclaimed mid-transaction).
    DirReclaim,
}

impl TraceKind {
    /// Short stable label used in text dumps and Perfetto event names.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::MsgSend => "send",
            TraceKind::MsgRecv => "recv",
            TraceKind::ProcRecv => "deliver",
            TraceKind::DirService => "dir",
            TraceKind::DirTxnEnd => "txn-end",
            TraceKind::AmuOp => "amu",
            TraceKind::OpComplete => "op",
            TraceKind::Mark => "mark",
            TraceKind::KernelDone => "done",
            TraceKind::LinkRetry => "link-retry",
            TraceKind::AmuNack => "amu-nack",
            TraceKind::Fault => "fault",
            TraceKind::MsgDrop => "msg-drop",
            TraceKind::MsgDup => "msg-dup",
            TraceKind::E2eTimeout => "e2e-timeout",
            TraceKind::AmuApply => "amu-apply",
            TraceKind::DirReclaim => "dir-reclaim",
        }
    }
}

/// A semantic-invariant violation detected by an online monitor while
/// observing the trace stream. The machine converts this into a typed
/// `SimError` (kind `MonitorViolation`) and aborts the run.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable name of the monitor that fired (e.g. `"mutual-exclusion"`).
    pub monitor: &'static str,
    /// Human-readable account of the violated invariant, with the
    /// witnessing values.
    pub detail: String,
    /// Cycle of the witnessing event.
    pub at: Cycle,
}

/// One trace record. Fixed-size and `Copy` so the ring buffer never
/// allocates per event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Start cycle.
    pub when: Cycle,
    /// Duration in cycles; 0 renders as an instant.
    pub dur: Cycle,
    /// What happened.
    pub kind: TraceKind,
    /// Node the event belongs to (Perfetto process).
    pub node: u16,
    /// Machine-wide processor id, or [`TraceEvent::NO_PROC`] for
    /// hub-level events (directory/AMU/NoC).
    pub proc: u16,
    /// `MsgClass` or `OpClass` index, per [`TraceKind`].
    pub class: u8,
    /// Kind-specific payload (see [`TraceKind`]).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
    /// Causal flow identity (`ReqId::flow`): every event in one
    /// request's life — injection, hub receipt, directory service, AMU
    /// execution, NACKs, retries, reply, kernel-op completion — carries
    /// the same nonzero value. 0 = the event belongs to no flow.
    pub flow: u64,
    /// Flow id of the causal parent chain, when this event's flow was
    /// spawned by another: a kernel op that issues several requests
    /// (LL/SC sequences, retries under a fresh tag) links each follow-up
    /// flow back to the op's root flow. 0 = no parent link.
    pub parent: u64,
}

impl TraceEvent {
    /// Sentinel for "no processor": the event belongs to a hub component.
    pub const NO_PROC: u16 = u16::MAX;

    /// An instant event at a node's hub.
    pub fn instant(kind: TraceKind, node: u16, when: Cycle) -> Self {
        TraceEvent {
            when,
            dur: 0,
            kind,
            node,
            proc: Self::NO_PROC,
            class: 0,
            a: 0,
            b: 0,
            flow: 0,
            parent: 0,
        }
    }

    /// A span event at a node's hub; `end < start` clamps to an instant.
    pub fn span(kind: TraceKind, node: u16, start: Cycle, end: Cycle) -> Self {
        TraceEvent {
            dur: end.saturating_sub(start),
            ..Self::instant(kind, node, start)
        }
    }

    /// Attach a processor id (moves the event onto that processor's
    /// track).
    pub fn on_proc(mut self, proc: u16) -> Self {
        self.proc = proc;
        self
    }

    /// Attach a class index (`MsgClass` or `OpClass` per kind).
    pub fn class(mut self, class: usize) -> Self {
        self.class = class as u8;
        self
    }

    /// Attach the kind-specific payload words.
    pub fn args(mut self, a: u64, b: u64) -> Self {
        self.a = a;
        self.b = b;
        self
    }

    /// Attach a causal flow id (`ReqId::flow`; 0 = none).
    pub fn flow(mut self, flow: u64) -> Self {
        self.flow = flow;
        self
    }

    /// Attach a parent flow link (0 = none).
    pub fn parent(mut self, parent: u64) -> Self {
        self.parent = parent;
        self
    }
}

/// A drained trace: events in recording order plus how many older events
/// the ring discarded to stay within capacity.
#[derive(Clone, Debug, Default)]
pub struct TraceBuf {
    /// Events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events overwritten before the drain (0 unless the run outgrew the
    /// ring).
    pub dropped: u64,
}

/// The instrumentation switch. The simulator is generic over this trait;
/// hooks are written `if T::ENABLED { self.tracer.record(...) }` so a
/// disabled tracer costs nothing — the branch and the event construction
/// fold away at compile time.
pub trait Tracer {
    /// Compile-time switch every hook is guarded by.
    const ENABLED: bool;

    /// Record one event. Must be O(1) and allocation-free in the steady
    /// state.
    fn record(&mut self, ev: TraceEvent);

    /// Drain the recorded events, if this tracer keeps any.
    fn take_buf(&mut self) -> Option<TraceBuf> {
        None
    }

    /// Consume the first monitor violation this tracer has detected, if
    /// it runs online monitors (see `amo-verify`). Polled by the machine
    /// after every dispatched batch — but only under `Self::ENABLED`, so
    /// the default `NopTracer` path never even branches on it.
    fn take_violation(&mut self) -> Option<Violation> {
        None
    }
}

/// The default tracer: zero-sized, compile-time disabled.
#[derive(Clone, Copy, Default, Debug)]
pub struct NopTracer;

impl Tracer for NopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// A fixed-capacity ring tracer: keeps the most recent `cap` events,
/// counting (not storing) anything older.
#[derive(Debug)]
pub struct RingTracer {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingTracer {
    /// Ring with room for `cap` events (at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingTracer {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Tracer for RingTracer {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn take_buf(&mut self) -> Option<TraceBuf> {
        let mut events = std::mem::take(&mut self.buf);
        // Rotate so the oldest surviving event comes first.
        events.rotate_left(self.head);
        let dropped = self.dropped;
        self.head = 0;
        self.dropped = 0;
        Some(TraceBuf { events, dropped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_tracer_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NopTracer>(), 0);
        const { assert!(!NopTracer::ENABLED) };
        let mut t = NopTracer;
        t.record(TraceEvent::instant(TraceKind::Mark, 0, 1));
        assert!(t.take_buf().is_none());
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut t = RingTracer::new(3);
        for i in 0..5u64 {
            t.record(TraceEvent::instant(TraceKind::Mark, 0, i));
        }
        assert_eq!(t.dropped(), 2);
        let buf = t.take_buf().unwrap();
        assert_eq!(buf.dropped, 2);
        let whens: Vec<u64> = buf.events.iter().map(|e| e.when).collect();
        assert_eq!(whens, vec![2, 3, 4]);
        // Drained: ring restarts clean.
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_without_wrap_preserves_order() {
        let mut t = RingTracer::new(10);
        for i in 0..4u64 {
            t.record(TraceEvent::span(TraceKind::AmuOp, 1, i, i + 2));
        }
        let buf = t.take_buf().unwrap();
        assert_eq!(buf.dropped, 0);
        assert_eq!(buf.events.len(), 4);
        assert!(buf.events.windows(2).all(|w| w[0].when <= w[1].when));
        assert_eq!(buf.events[0].dur, 2);
    }
}
