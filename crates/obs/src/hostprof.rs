//! Host-side self-profiling: where the *simulator's own* wall-clock and
//! heap allocations go, as opposed to the simulated cycles every other
//! module in this crate attributes.
//!
//! The design mirrors [`Tracer`](crate::tracer::Tracer) exactly: the
//! machine is generic over a [`HostProf`] implementation with an
//! associated `const ENABLED`, every hook is written
//! `if P::ENABLED { self.prof.enter(..) }`, and the default zero-sized
//! [`NopHostProf`] folds the whole hook away at compile time — the
//! unprofiled hot path is untouched (pinned by the `perf_smoke` floor
//! and a passivity test). [`HostProfiler`] is the recording
//! implementation: a scope stack with exact parent/child nesting,
//! per-scope [`LatHist`] of nanosecond durations, and per-edge
//! (caller → callee) totals so a flame-style tree and a self-time table
//! can be rendered.
//!
//! **Allocation attribution** rides on [`CountingAlloc`], a
//! `#[global_allocator]` wrapper the *profiled binaries* opt into; the
//! profiler snapshots its counters at scope entry/exit, so each scope
//! reports the allocations performed while it (or its children) were on
//! the stack. This is what verifies the "steady-state dispatch
//! allocates nothing" claim at runtime. When the wrapper is not
//! installed the counters never move; [`HostProfiler`] detects that
//! with a probe allocation and reports `alloc_tracking: false` instead
//! of a vacuous zero.
//!
//! **Caveats** (also in DESIGN.md): timing a scope costs two
//! `Instant::now()` calls, so a profiled run is several times slower
//! than an unprofiled one and *inclusive* times are inflated by the
//! instrumentation of nested scopes — relative attribution is
//! trustworthy, absolute totals are an upper bound. Allocation counts
//! have no such skew: the profiler itself does not allocate after
//! construction (the scope table, edge matrix, and stack are
//! preallocated), so a zero stays a zero.

use amo_types::{Json, JsonWriter, LatHist};
use std::time::Instant;

/// Number of simulator event kinds that get a dedicated dispatch scope.
/// Must equal the machine's `Event::COUNT`; the sim crate pins the
/// correspondence (names and order) with a test.
pub const DISPATCH_SCOPES: usize = 11;

/// A profiled region of the simulator's host execution. Scopes nest
/// arbitrarily (the directory protocol recurses through AMU execution);
/// the profiler attributes each nanosecond to exactly one scope's
/// *self* time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// The whole `Machine::run` call (root of every profile).
    Run,
    /// Event-queue batch refill: `peek`/`pop_batch`/`pop`.
    Drain,
    /// Dispatch of one `ProcWake` event.
    DispatchProcWake,
    /// Dispatch of one `ProcHandlerDone` event.
    DispatchProcHandlerDone,
    /// Dispatch of one `ProcTimeout` event.
    DispatchProcTimeout,
    /// Dispatch of one `ProcWordUpdate` event.
    DispatchProcWordUpdate,
    /// Dispatch of one `ToHub` event.
    DispatchToHub,
    /// Dispatch of one `DirProcess` event.
    DispatchDirProcess,
    /// Dispatch of one `DramDone` event.
    DispatchDramDone,
    /// Dispatch of one `AmuWake` event.
    DispatchAmuWake,
    /// Dispatch of one `AmuMemValue` event.
    DispatchAmuMemValue,
    /// Dispatch of one `AmuSend` event.
    DispatchAmuSend,
    /// Dispatch of one `ToProc` event.
    DispatchToProc,
    /// Directory protocol work: request servicing and action fan-out.
    DirProtocol,
    /// AMU work: submit, advance, operand arrival, effect fan-out.
    AmuExec,
    /// NoC routing + send (one fabric `send`/`send_delivery` call).
    NocSend,
    /// The tracer's own post-dispatch bookkeeping (traced builds only).
    TracerHooks,
    /// Time-series occupancy sampling.
    Sample,
}

impl Scope {
    /// Number of scopes.
    pub const COUNT: usize = 18;

    /// Every scope, in index order.
    pub const ALL: [Scope; Scope::COUNT] = [
        Scope::Run,
        Scope::Drain,
        Scope::DispatchProcWake,
        Scope::DispatchProcHandlerDone,
        Scope::DispatchProcTimeout,
        Scope::DispatchProcWordUpdate,
        Scope::DispatchToHub,
        Scope::DispatchDirProcess,
        Scope::DispatchDramDone,
        Scope::DispatchAmuWake,
        Scope::DispatchAmuMemValue,
        Scope::DispatchAmuSend,
        Scope::DispatchToProc,
        Scope::DirProtocol,
        Scope::AmuExec,
        Scope::NocSend,
        Scope::TracerHooks,
        Scope::Sample,
    ];

    /// Dense index (position in [`Scope::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The dispatch scope for the event variant with dense index `ev`
    /// (the machine's `Event::index()` order).
    #[inline]
    pub fn dispatch(ev: usize) -> Scope {
        debug_assert!(ev < DISPATCH_SCOPES, "event index {ev} out of range");
        Scope::ALL[2 + ev]
    }

    /// Stable name used in reports and the `amo-hostprof-v1` doc.
    pub fn name(self) -> &'static str {
        match self {
            Scope::Run => "run",
            Scope::Drain => "drain",
            Scope::DispatchProcWake => "dispatch:ProcWake",
            Scope::DispatchProcHandlerDone => "dispatch:ProcHandlerDone",
            Scope::DispatchProcTimeout => "dispatch:ProcTimeout",
            Scope::DispatchProcWordUpdate => "dispatch:ProcWordUpdate",
            Scope::DispatchToHub => "dispatch:ToHub",
            Scope::DispatchDirProcess => "dispatch:DirProcess",
            Scope::DispatchDramDone => "dispatch:DramDone",
            Scope::DispatchAmuWake => "dispatch:AmuWake",
            Scope::DispatchAmuMemValue => "dispatch:AmuMemValue",
            Scope::DispatchAmuSend => "dispatch:AmuSend",
            Scope::DispatchToProc => "dispatch:ToProc",
            Scope::DirProtocol => "dir-protocol",
            Scope::AmuExec => "amu-exec",
            Scope::NocSend => "noc-send",
            Scope::TracerHooks => "tracer-hooks",
            Scope::Sample => "sample",
        }
    }

    /// True for the per-event dispatch scopes (the steady-state
    /// allocation claim is about exactly these).
    pub fn is_dispatch(self) -> bool {
        (2..2 + DISPATCH_SCOPES).contains(&self.index())
    }
}

/// The profiling switch the machine is generic over. Same contract as
/// [`Tracer`](crate::tracer::Tracer): with `ENABLED = false` every hook
/// is compile-time dead code.
pub trait HostProf {
    /// Compile-time switch every hook is guarded by.
    const ENABLED: bool;

    /// Push a scope. Must nest exactly (LIFO) with [`exit`](Self::exit).
    fn enter(&mut self, scope: Scope);

    /// Pop the innermost scope, which must be `scope`.
    fn exit(&mut self, scope: Scope);

    /// Drain the accumulated profile, if this implementation keeps one.
    fn take_report(&mut self) -> Option<HostProfReport> {
        None
    }
}

/// The default profiler: zero-sized, compile-time disabled.
#[derive(Clone, Copy, Default, Debug)]
pub struct NopHostProf;

impl HostProf for NopHostProf {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(&mut self, _scope: Scope) {}

    #[inline(always)]
    fn exit(&mut self, _scope: Scope) {}
}

/// Global allocation counters behind [`CountingAlloc`]. Relaxed atomics:
/// the profiler only ever reads deltas on one thread; cross-thread
/// precision is not needed.
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// `(allocations, bytes)` requested so far, process-wide. Both stay
    /// 0 forever unless [`CountingAlloc`](super::CountingAlloc) is
    /// installed as the `#[global_allocator]`.
    pub fn alloc_counters() -> (u64, u64) {
        (ALLOCS.load(Relaxed), BYTES.load(Relaxed))
    }

    /// A counting wrapper over the system allocator. Profiled binaries
    /// opt in with
    /// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`;
    /// everything else keeps the plain system allocator. `realloc` and
    /// `alloc_zeroed` count as one allocation of the new size.
    pub struct CountingAlloc;

    // The one unavoidable `unsafe` in this crate: a `GlobalAlloc` impl
    // is an unsafe trait by definition. It only forwards to `System`
    // and bumps two atomics; no pointer arithmetic of its own.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(layout.size() as u64, Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(new_size as u64, Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(layout.size() as u64, Relaxed);
            System.alloc_zeroed(layout)
        }
    }
}

pub use counting::{alloc_counters, CountingAlloc};

/// One open scope on the profiler stack.
struct Frame {
    scope: Scope,
    start: Instant,
    allocs0: u64,
    bytes0: u64,
    child_ns: u64,
    child_allocs: u64,
    child_bytes: u64,
}

/// Accumulated totals for one scope.
#[derive(Clone, Default)]
struct ScopeStat {
    count: u64,
    total_ns: u64,
    child_ns: u64,
    allocs: u64,
    child_allocs: u64,
    bytes: u64,
    child_bytes: u64,
    hist: LatHist,
}

/// Accumulated totals for one (parent, child) nesting edge.
#[derive(Clone, Copy, Default)]
struct EdgeCell {
    count: u64,
    ns: u64,
}

/// The recording [`HostProf`]: scope stack + per-scope and per-edge
/// accumulators, all preallocated so profiling itself never allocates
/// after construction.
pub struct HostProfiler {
    stack: Vec<Frame>,
    scopes: Vec<ScopeStat>,
    /// `(COUNT + 1) × COUNT` matrix; row `COUNT` is the root (no
    /// parent).
    edges: Vec<EdgeCell>,
    root_ns: u64,
    root_allocs: u64,
    root_bytes: u64,
    alloc_tracking: bool,
}

impl Default for HostProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl HostProfiler {
    /// A fresh profiler. Probes whether [`CountingAlloc`] is installed
    /// (so reports can distinguish "zero allocations" from "nobody was
    /// counting").
    pub fn new() -> Self {
        let before = alloc_counters().0;
        std::hint::black_box(Box::new(0u64));
        let alloc_tracking = alloc_counters().0 != before;
        HostProfiler {
            stack: Vec::with_capacity(64),
            scopes: vec![ScopeStat::default(); Scope::COUNT],
            edges: vec![EdgeCell::default(); (Scope::COUNT + 1) * Scope::COUNT],
            root_ns: 0,
            root_allocs: 0,
            root_bytes: 0,
            alloc_tracking,
        }
    }

    /// Discard everything accumulated so far (the stack must be empty —
    /// call between runs, not inside one). Used to separate a warm-up
    /// pass from the steady-state pass it precedes.
    pub fn reset(&mut self) {
        assert!(
            self.stack.is_empty(),
            "hostprof: reset inside an open scope"
        );
        for s in &mut self.scopes {
            *s = ScopeStat::default();
        }
        for e in &mut self.edges {
            *e = EdgeCell::default();
        }
        self.root_ns = 0;
        self.root_allocs = 0;
        self.root_bytes = 0;
    }

    /// Build the report without consuming the profiler.
    fn report(&self) -> HostProfReport {
        let scopes = Scope::ALL
            .iter()
            .filter(|s| self.scopes[s.index()].count > 0)
            .map(|&scope| {
                let st = &self.scopes[scope.index()];
                ScopeReport {
                    scope,
                    count: st.count,
                    total_ns: st.total_ns,
                    child_ns: st.child_ns,
                    allocs: st.allocs,
                    child_allocs: st.child_allocs,
                    bytes: st.bytes,
                    child_bytes: st.child_bytes,
                    hist: st.hist.clone(),
                }
            })
            .collect();
        let mut edges = Vec::new();
        for (row, parent) in Scope::ALL
            .iter()
            .map(|&s| Some(s))
            .chain(std::iter::once(None))
            .enumerate()
        {
            for (col, &child) in Scope::ALL.iter().enumerate() {
                let e = self.edges[row * Scope::COUNT + col];
                if e.count > 0 {
                    edges.push(EdgeReport {
                        parent,
                        child,
                        count: e.count,
                        ns: e.ns,
                    });
                }
            }
        }
        HostProfReport {
            wall_ns: self.root_ns,
            total_allocs: self.root_allocs,
            total_bytes: self.root_bytes,
            alloc_tracking: self.alloc_tracking,
            scopes,
            edges,
        }
    }
}

impl HostProf for HostProfiler {
    const ENABLED: bool = true;

    #[inline]
    fn enter(&mut self, scope: Scope) {
        let (allocs0, bytes0) = alloc_counters();
        self.stack.push(Frame {
            scope,
            start: Instant::now(),
            allocs0,
            bytes0,
            child_ns: 0,
            child_allocs: 0,
            child_bytes: 0,
        });
    }

    #[inline]
    fn exit(&mut self, scope: Scope) {
        let ns = {
            let top = self.stack.last().expect("hostprof: exit without enter");
            assert_eq!(top.scope, scope, "hostprof: mismatched scope nesting");
            top.start.elapsed().as_nanos() as u64
        };
        let f = self.stack.pop().expect("checked above");
        let (a, b) = alloc_counters();
        let allocs = a - f.allocs0;
        let bytes = b - f.bytes0;
        let si = scope.index();
        let st = &mut self.scopes[si];
        st.count += 1;
        st.total_ns += ns;
        st.child_ns += f.child_ns;
        st.allocs += allocs;
        st.child_allocs += f.child_allocs;
        st.bytes += bytes;
        st.child_bytes += f.child_bytes;
        st.hist.record(ns);
        match self.stack.last_mut() {
            Some(parent) => {
                parent.child_ns += ns;
                parent.child_allocs += allocs;
                parent.child_bytes += bytes;
                let row = parent.scope.index();
                let e = &mut self.edges[row * Scope::COUNT + si];
                e.count += 1;
                e.ns += ns;
            }
            None => {
                self.root_ns += ns;
                self.root_allocs += allocs;
                self.root_bytes += bytes;
                let e = &mut self.edges[Scope::COUNT * Scope::COUNT + si];
                e.count += 1;
                e.ns += ns;
            }
        }
    }

    fn take_report(&mut self) -> Option<HostProfReport> {
        assert!(
            self.stack.is_empty(),
            "hostprof: report taken inside an open scope"
        );
        let report = self.report();
        self.reset();
        Some(report)
    }
}

/// One scope's accumulated profile.
#[derive(Clone, Debug)]
pub struct ScopeReport {
    /// Which scope.
    pub scope: Scope,
    /// Times the scope was entered.
    pub count: u64,
    /// Inclusive wall-clock nanoseconds (children included).
    pub total_ns: u64,
    /// Nanoseconds spent in nested scopes.
    pub child_ns: u64,
    /// Allocations performed while the scope was open (children
    /// included).
    pub allocs: u64,
    /// Allocations attributed to nested scopes.
    pub child_allocs: u64,
    /// Bytes requested while the scope was open (children included).
    pub bytes: u64,
    /// Bytes attributed to nested scopes.
    pub child_bytes: u64,
    /// Distribution of per-entry inclusive nanoseconds.
    pub hist: LatHist,
}

impl ScopeReport {
    /// Exclusive (self) nanoseconds: inclusive minus children. The
    /// saturation only matters at single-nanosecond rounding edges.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Exclusive (self) allocation count.
    pub fn self_allocs(&self) -> u64 {
        self.allocs.saturating_sub(self.child_allocs)
    }

    /// Exclusive (self) bytes requested.
    pub fn self_bytes(&self) -> u64 {
        self.bytes.saturating_sub(self.child_bytes)
    }
}

/// One (caller scope → callee scope) nesting edge's totals.
#[derive(Clone, Debug)]
pub struct EdgeReport {
    /// The enclosing scope; `None` for top-level (root) entries.
    pub parent: Option<Scope>,
    /// The entered scope.
    pub child: Scope,
    /// Entries along this edge.
    pub count: u64,
    /// Inclusive nanoseconds accumulated along this edge. Summed over
    /// a scope's incoming edges this equals the scope's `total_ns`
    /// exactly.
    pub ns: u64,
}

/// A drained host profile: totals, per-scope stats, and the nesting
/// edges.
#[derive(Clone, Debug, Default)]
pub struct HostProfReport {
    /// Total profiled wall-clock: the sum of every top-level scope's
    /// inclusive time (the `run` scope, in practice).
    pub wall_ns: u64,
    /// Allocations under any top-level scope.
    pub total_allocs: u64,
    /// Bytes requested under any top-level scope.
    pub total_bytes: u64,
    /// True when [`CountingAlloc`] was installed, i.e. the allocation
    /// numbers are measurements rather than a dormant counter.
    pub alloc_tracking: bool,
    /// Scopes that were entered at least once, in [`Scope::ALL`] order.
    pub scopes: Vec<ScopeReport>,
    /// Nesting edges observed at least once.
    pub edges: Vec<EdgeReport>,
}

impl HostProfReport {
    /// Render the self-time table: scopes sorted by exclusive time,
    /// with call counts, inclusive mean/p95, and exclusive allocation
    /// totals (`-` when no allocator was counting).
    pub fn self_time_table(&self) -> String {
        let mut rows: Vec<&ScopeReport> = self.scopes.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.self_ns()));
        let wall = self.wall_ns.max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>12} {:>11} {:>6} {:>10} {:>10} {:>9} {:>11}\n",
            "scope", "calls", "self-ms", "self%", "mean-ns", "p95-ns", "allocs", "bytes"
        ));
        for r in rows {
            let (allocs, bytes) = if self.alloc_tracking {
                (r.self_allocs().to_string(), r.self_bytes().to_string())
            } else {
                ("-".into(), "-".into())
            };
            out.push_str(&format!(
                "{:<26} {:>12} {:>11.3} {:>5.1}% {:>10.0} {:>10} {:>9} {:>11}\n",
                r.scope.name(),
                r.count,
                r.self_ns() as f64 / 1e6,
                100.0 * r.self_ns() as f64 / wall as f64,
                r.hist.mean().unwrap_or(0.0),
                r.hist.p95(),
                allocs,
                bytes,
            ));
        }
        out
    }

    /// Render the flame-style nesting tree from the edge totals. The
    /// tree is *edge-folded*: a scope's children are aggregated over
    /// all of its call contexts, and a recursive edge is printed once
    /// and cut (marked `…`).
    pub fn flame(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<Scope> = Vec::new();
        let mut roots: Vec<&EdgeReport> =
            self.edges.iter().filter(|e| e.parent.is_none()).collect();
        roots.sort_by_key(|r| std::cmp::Reverse(r.ns));
        for e in roots {
            self.flame_node(&mut out, e, 0, &mut path);
        }
        out
    }

    fn flame_node(&self, out: &mut String, e: &EdgeReport, depth: usize, path: &mut Vec<Scope>) {
        let cut = path.contains(&e.child);
        out.push_str(&format!(
            "{:indent$}{} {:.3} ms ({} calls){}\n",
            "",
            e.child.name(),
            e.ns as f64 / 1e6,
            e.count,
            if cut { " …" } else { "" },
            indent = depth * 2,
        ));
        if cut {
            return;
        }
        path.push(e.child);
        let mut kids: Vec<&EdgeReport> = self
            .edges
            .iter()
            .filter(|k| k.parent == Some(e.child))
            .collect();
        kids.sort_by_key(|k| std::cmp::Reverse(k.ns));
        for k in kids {
            self.flame_node(out, k, depth + 1, path);
        }
        path.pop();
    }

    /// Write this report as the JSON object used inside
    /// `amo-hostprof-v1` sections.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.kv_u64("wall_ns", self.wall_ns);
        w.kv_u64("total_allocs", self.total_allocs);
        w.kv_u64("total_bytes", self.total_bytes);
        w.key("alloc_tracking");
        w.bool_val(self.alloc_tracking);
        w.key("scopes");
        w.begin_arr();
        for s in &self.scopes {
            w.begin_obj();
            w.kv_str("scope", s.scope.name());
            w.kv_u64("count", s.count);
            w.kv_u64("total_ns", s.total_ns);
            w.kv_u64("child_ns", s.child_ns);
            w.kv_u64("self_ns", s.self_ns());
            w.kv_u64("allocs", s.allocs);
            w.kv_u64("self_allocs", s.self_allocs());
            w.kv_u64("bytes", s.bytes);
            w.kv_u64("self_bytes", s.self_bytes());
            w.key("ns_hist");
            s.hist.write_json(w);
            w.end_obj();
        }
        w.end_arr();
        w.key("edges");
        w.begin_arr();
        for e in &self.edges {
            w.begin_obj();
            w.kv_str("parent", e.parent.map_or("<root>", Scope::name));
            w.kv_str("child", e.child.name());
            w.kv_u64("count", e.count);
            w.kv_u64("ns", e.ns);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
}

/// One named section of an `amo-hostprof-v1` document (typically one
/// profiled workload).
pub struct HostProfSection<'a> {
    /// Section name (e.g. the workload key).
    pub name: &'a str,
    /// `"steady"` when a warm-up pass was run and discarded first,
    /// `"cold"` when the profile includes first-run container growth.
    pub phase: &'a str,
    /// Simulated events processed during the profiled run.
    pub events: u64,
    /// The profile.
    pub report: &'a HostProfReport,
}

/// Render a complete `amo-hostprof-v1` document: free-form `meta`
/// string pairs plus one object per profiled section.
pub fn hostprof_json(meta: &[(&str, String)], sections: &[HostProfSection]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", "amo-hostprof-v1");
    w.key("meta");
    w.begin_obj();
    for (k, v) in meta {
        w.kv_str(k, v);
    }
    w.end_obj();
    w.key("sections");
    w.begin_arr();
    for s in sections {
        w.begin_obj();
        w.kv_str("name", s.name);
        w.kv_str("phase", s.phase);
        w.kv_u64("events", s.events);
        w.key("profile");
        s.report.write_json(&mut w);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Validation summary for one section of an `amo-hostprof-v1` doc.
#[derive(Clone, Debug)]
pub struct HostProfSectionSummary {
    /// Section name.
    pub name: String,
    /// Section phase (`"steady"` / `"cold"`).
    pub phase: String,
    /// Total profiled wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Whether the counting allocator was installed for this profile.
    pub alloc_tracking: bool,
    /// Sum of exclusive allocations over the `dispatch:*` scopes — the
    /// number the steady-state zero-allocation claim is about.
    pub dispatch_self_allocs: u64,
}

/// Parse and structurally validate an `amo-hostprof-v1` document,
/// checking the invariants the profiler guarantees by construction:
///
/// * every scope's `self_ns` equals `total_ns - child_ns`;
/// * every scope's incoming-edge `ns` sums exactly to its `total_ns`;
/// * per-scope `ns_hist` round-trips through [`LatHist::from_json`]
///   with `count` matching the scope count;
/// * the per-scope self-times sum to `wall_ns` within nanosecond
///   rounding (0.1% or 10 µs, whichever is larger).
pub fn validate_hostprof(doc: &str) -> Result<Vec<HostProfSectionSummary>, String> {
    let v = Json::parse(doc).map_err(|e| format!("hostprof doc: {e}"))?;
    if v.get("schema").and_then(Json::as_str) != Some("amo-hostprof-v1") {
        return Err("hostprof doc: wrong or missing schema tag".into());
    }
    let sections = v
        .get("sections")
        .and_then(Json::as_arr)
        .ok_or("hostprof doc: missing `sections` array")?;
    if sections.is_empty() {
        return Err("hostprof doc: no sections".into());
    }
    let mut out = Vec::new();
    for sec in sections {
        let name = sec
            .get("name")
            .and_then(Json::as_str)
            .ok_or("section: missing `name`")?
            .to_string();
        let phase = sec
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("section: missing `phase`")?
            .to_string();
        let prof = sec.get("profile").ok_or("section: missing `profile`")?;
        let wall_ns = prof
            .get("wall_ns")
            .and_then(Json::as_u64)
            .ok_or("profile: missing `wall_ns`")?;
        let alloc_tracking = prof
            .get("alloc_tracking")
            .and_then(Json::as_bool)
            .ok_or("profile: missing `alloc_tracking`")?;
        let scopes = prof
            .get("scopes")
            .and_then(Json::as_arr)
            .ok_or("profile: missing `scopes` array")?;
        let edges = prof
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or("profile: missing `edges` array")?;
        let mut self_sum: u64 = 0;
        let mut dispatch_self_allocs: u64 = 0;
        for s in scopes {
            let sname = s
                .get("scope")
                .and_then(Json::as_str)
                .ok_or("scope: missing `scope` name")?;
            let field = |k: &str| {
                s.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("scope {sname}: missing `{k}`"))
            };
            let (count, total, child, selfns) = (
                field("count")?,
                field("total_ns")?,
                field("child_ns")?,
                field("self_ns")?,
            );
            if selfns != total.saturating_sub(child) {
                return Err(format!(
                    "scope {sname}: self_ns {selfns} != total_ns {total} - child_ns {child}"
                ));
            }
            let hist = s
                .get("ns_hist")
                .ok_or_else(|| format!("scope {sname}: missing `ns_hist`"))
                .and_then(|h| LatHist::from_json(h).map_err(|e| format!("scope {sname}: {e}")))?;
            if hist.count != count {
                return Err(format!(
                    "scope {sname}: hist count {} != scope count {count}",
                    hist.count
                ));
            }
            let edge_ns: u64 = edges
                .iter()
                .filter(|e| e.get("child").and_then(Json::as_str) == Some(sname))
                .filter_map(|e| e.get("ns").and_then(Json::as_u64))
                .sum();
            if edge_ns != total {
                return Err(format!(
                    "scope {sname}: incoming edge ns {edge_ns} != total_ns {total}"
                ));
            }
            self_sum += selfns;
            if sname.starts_with("dispatch:") {
                dispatch_self_allocs += field("self_allocs")?;
            }
        }
        let tolerance = (wall_ns / 1000).max(10_000);
        if self_sum.abs_diff(wall_ns) > tolerance {
            return Err(format!(
                "section {name}: self-time sum {self_sum} vs wall_ns {wall_ns} \
                 exceeds rounding tolerance {tolerance}"
            ));
        }
        out.push(HostProfSectionSummary {
            name,
            phase,
            wall_ns,
            alloc_tracking,
            dispatch_self_allocs,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_hostprof_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NopHostProf>(), 0);
        const { assert!(!NopHostProf::ENABLED) };
        let mut p = NopHostProf;
        p.enter(Scope::Run);
        p.exit(Scope::Run);
        assert!(p.take_report().is_none());
    }

    #[test]
    fn scope_table_is_consistent() {
        assert_eq!(Scope::ALL.len(), Scope::COUNT);
        for (i, s) in Scope::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{} out of order", s.name());
        }
        for ev in 0..DISPATCH_SCOPES {
            let s = Scope::dispatch(ev);
            assert!(s.is_dispatch());
            assert!(s.name().starts_with("dispatch:"));
        }
        assert!(!Scope::Run.is_dispatch());
        assert!(!Scope::Sample.is_dispatch());
    }

    #[test]
    fn nesting_attributes_child_time_to_parent() {
        let mut p = HostProfiler::new();
        p.enter(Scope::Run);
        p.enter(Scope::Drain);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.exit(Scope::Drain);
        p.exit(Scope::Run);
        let r = p.take_report().unwrap();
        let run = r.scopes.iter().find(|s| s.scope == Scope::Run).unwrap();
        let drain = r.scopes.iter().find(|s| s.scope == Scope::Drain).unwrap();
        assert_eq!(run.count, 1);
        assert_eq!(drain.count, 1);
        // The drain slept ~2ms; all of it is the run scope's child time.
        assert!(drain.total_ns >= 2_000_000);
        assert!(run.child_ns >= drain.total_ns);
        assert!(run.total_ns >= run.child_ns);
        assert_eq!(r.wall_ns, run.total_ns);
        // Exactly two edges: root→run and run→drain.
        assert_eq!(r.edges.len(), 2);
        let root_edge = r.edges.iter().find(|e| e.parent.is_none()).unwrap();
        assert_eq!(root_edge.child, Scope::Run);
        assert_eq!(root_edge.ns, run.total_ns);
        let nested = r.edges.iter().find(|e| e.parent.is_some()).unwrap();
        assert_eq!(nested.parent, Some(Scope::Run));
        assert_eq!(nested.child, Scope::Drain);
        assert_eq!(nested.ns, drain.total_ns);
    }

    #[test]
    fn self_times_telescope_to_wall_clock() {
        let mut p = HostProfiler::new();
        for _ in 0..100 {
            p.enter(Scope::Run);
            p.enter(Scope::Drain);
            p.exit(Scope::Drain);
            p.enter(Scope::DispatchProcWake);
            p.enter(Scope::NocSend);
            p.exit(Scope::NocSend);
            p.exit(Scope::DispatchProcWake);
            p.exit(Scope::Run);
        }
        let r = p.take_report().unwrap();
        let self_sum: u64 = r.scopes.iter().map(ScopeReport::self_ns).sum();
        // Saturation can only lose single nanoseconds per frame.
        assert!(
            self_sum.abs_diff(r.wall_ns) <= 8 * 100,
            "self sum {} vs wall {}",
            self_sum,
            r.wall_ns
        );
    }

    #[test]
    #[should_panic(expected = "mismatched scope nesting")]
    fn misnested_exit_panics() {
        let mut p = HostProfiler::new();
        p.enter(Scope::Run);
        p.enter(Scope::Drain);
        p.exit(Scope::Run);
    }

    #[test]
    fn recursive_scopes_do_not_double_count() {
        let mut p = HostProfiler::new();
        // dir-protocol → amu-exec → dir-protocol, as the machine's
        // fine-grained path genuinely nests.
        p.enter(Scope::Run);
        p.enter(Scope::DirProtocol);
        p.enter(Scope::AmuExec);
        p.enter(Scope::DirProtocol);
        p.exit(Scope::DirProtocol);
        p.exit(Scope::AmuExec);
        p.exit(Scope::DirProtocol);
        p.exit(Scope::Run);
        let r = p.take_report().unwrap();
        let dir = r
            .scopes
            .iter()
            .find(|s| s.scope == Scope::DirProtocol)
            .unwrap();
        assert_eq!(dir.count, 2);
        // Inclusive time of the outer frame contains the inner frame,
        // but the self-time telescoping still holds.
        let self_sum: u64 = r.scopes.iter().map(ScopeReport::self_ns).sum();
        assert!(self_sum.abs_diff(r.wall_ns) <= 16);
        // The flame renderer must terminate on the cyclic edge graph.
        let flame = r.flame();
        assert!(flame.contains("…"), "recursive edge not cut:\n{flame}");
    }

    #[test]
    fn report_json_validates_and_summarizes() {
        let mut p = HostProfiler::new();
        for _ in 0..10 {
            p.enter(Scope::Run);
            p.enter(Scope::DispatchToHub);
            p.enter(Scope::DirProtocol);
            p.exit(Scope::DirProtocol);
            p.exit(Scope::DispatchToHub);
            p.exit(Scope::Run);
        }
        let report = p.take_report().unwrap();
        let doc = hostprof_json(
            &[("bench", "unit-test".into())],
            &[HostProfSection {
                name: "w0",
                phase: "steady",
                events: 10,
                report: &report,
            }],
        );
        let summaries = validate_hostprof(&doc).expect("doc must validate");
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].name, "w0");
        assert_eq!(summaries[0].phase, "steady");
        assert_eq!(summaries[0].wall_ns, report.wall_ns);
        // Rendering never panics and mentions every scope.
        let table = report.self_time_table();
        let flame = report.flame();
        for s in &report.scopes {
            assert!(table.contains(s.scope.name()));
            assert!(flame.contains(s.scope.name()));
        }
    }

    #[test]
    fn validator_rejects_tampered_docs() {
        let mut p = HostProfiler::new();
        p.enter(Scope::Run);
        p.exit(Scope::Run);
        let report = p.take_report().unwrap();
        let doc = hostprof_json(
            &[],
            &[HostProfSection {
                name: "w",
                phase: "cold",
                events: 1,
                report: &report,
            }],
        );
        assert!(validate_hostprof(&doc).is_ok());
        let bad = doc.replace("amo-hostprof-v1", "amo-hostprof-v0");
        assert!(validate_hostprof(&bad).is_err());
        // Inflate wall_ns: the self-time sum check must fire.
        let wall = format!("\"wall_ns\":{}", report.wall_ns);
        let bad = doc.replace(
            &wall,
            &format!("\"wall_ns\":{}", report.wall_ns + 1_000_000_000),
        );
        assert!(validate_hostprof(&bad).is_err());
    }

    #[test]
    fn reset_clears_accumulators() {
        let mut p = HostProfiler::new();
        p.enter(Scope::Run);
        p.exit(Scope::Run);
        p.reset();
        p.enter(Scope::Drain);
        p.exit(Scope::Drain);
        let r = p.take_report().unwrap();
        assert_eq!(r.scopes.len(), 1);
        assert_eq!(r.scopes[0].scope, Scope::Drain);
    }
}
