//! The combined metrics report emitted by `--metrics-json`.

use crate::timeseries::TimeSeries;
use crate::tracer::TraceBuf;
use amo_types::{JsonWriter, Stats};

/// Render one run's metrics as a single JSON document:
/// `{"schema": "amo-metrics-v1", "meta": {...}, "stats": <Stats JSON>,
/// "timeseries": {...} | null, "trace": {...} | null}`.
///
/// `meta` carries free-form run identification (workload, sizes, seeds)
/// as string pairs. When the run was traced, pass the [`TraceBuf`] so
/// the bundle records how many events were captured and — critically —
/// how many the ring **dropped**: a nonzero `dropped` means every
/// trace-derived artifact (Perfetto export, critical-path report) saw
/// only a suffix window of the run.
pub fn metrics_json(
    stats: &Stats,
    series: Option<&TimeSeries>,
    trace: Option<&TraceBuf>,
    meta: &[(&str, String)],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", "amo-metrics-v1");
    w.key("meta");
    w.begin_obj();
    for (k, v) in meta {
        w.kv_str(k, v);
    }
    w.end_obj();
    w.key("stats");
    stats.write_json(&mut w);
    w.key("timeseries");
    match series {
        Some(ts) => ts.write_json(&mut w),
        None => w.raw_val("null"),
    }
    w.key("trace");
    match trace {
        Some(buf) => {
            w.begin_obj();
            w.kv_u64("events", buf.events.len() as u64);
            w.kv_u64("dropped", buf.dropped);
            w.kv_u64("complete", u64::from(buf.dropped == 0));
            w.end_obj();
        }
        None => w.raw_val("null"),
    }
    w.end_obj();
    w.finish()
}

/// Scheduling totals of one experiment campaign, for the aggregate
/// report.
#[derive(Clone, Copy, Debug, Default)]
pub struct CampaignSummary {
    /// Runs requested (before content-key dedup).
    pub runs: u64,
    /// Distinct runs after dedup.
    pub unique: u64,
    /// Distinct runs served from the result cache.
    pub cache_hits: u64,
    /// Distinct runs that simulated.
    pub cache_misses: u64,
    /// Distinct runs that ended in an error.
    pub errors: u64,
}

/// Render a whole campaign's aggregate metrics as one `amo-metrics-v1`
/// document: the standard `meta`/`stats` sections (with `stats` the
/// merge of every run's statistics) plus a `campaign` section carrying
/// the scheduling totals.
pub fn campaign_metrics_json(
    summary: &CampaignSummary,
    stats: &Stats,
    meta: &[(&str, String)],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", "amo-metrics-v1");
    w.key("meta");
    w.begin_obj();
    for (k, v) in meta {
        w.kv_str(k, v);
    }
    w.end_obj();
    w.key("campaign");
    w.begin_obj();
    w.kv_u64("runs", summary.runs);
    w.kv_u64("unique", summary.unique);
    w.kv_u64("cache_hits", summary.cache_hits);
    w.kv_u64("cache_misses", summary.cache_misses);
    w.kv_u64("errors", summary.errors);
    w.end_obj();
    w.key("stats");
    stats.write_json(&mut w);
    w.key("timeseries");
    w.raw_val("null");
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv::Json;
    use crate::timeseries::{NodeSample, Tick};
    use amo_types::stats::{MsgClass, MsgEndpoint, OpClass};
    use amo_types::NodeId;

    #[test]
    fn report_combines_stats_and_series() {
        let mut stats = Stats::new();
        stats.record_msg(
            MsgClass::Amo,
            32,
            2,
            NodeId(0),
            NodeId(1),
            MsgEndpoint::Proc,
        );
        stats.record_op(OpClass::Amo, 420);
        let mut ts = TimeSeries::new(500, 1);
        ts.push(Tick {
            when: 500,
            events_queued: 4,
            per_node: vec![NodeSample {
                dir_queue: 2,
                ..Default::default()
            }],
        });
        let doc = metrics_json(&stats, Some(&ts), None, &[("workload", "unit-test".into())]);
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("amo-metrics-v1"));
        assert_eq!(
            v.get("meta").unwrap().get("workload").unwrap().as_str(),
            Some("unit-test")
        );
        let stats_v = v.get("stats").unwrap();
        assert_eq!(
            stats_v.get("schema").unwrap().as_str(),
            Some("amo-stats-v1")
        );
        assert_eq!(
            stats_v
                .get("derived")
                .unwrap()
                .get("op_latency")
                .unwrap()
                .get("amo")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_u64(),
            Some(420)
        );
        let ticks = v
            .get("timeseries")
            .unwrap()
            .get("ticks")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(ticks.len(), 1);
    }

    #[test]
    fn campaign_report_carries_scheduling_totals() {
        let summary = CampaignSummary {
            runs: 10,
            unique: 8,
            cache_hits: 3,
            cache_misses: 5,
            errors: 1,
        };
        let doc = campaign_metrics_json(&summary, &Stats::new(), &[("campaign", "paper".into())]);
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("amo-metrics-v1"));
        let c = v.get("campaign").unwrap();
        assert_eq!(c.get("runs").unwrap().as_u64(), Some(10));
        assert_eq!(c.get("cache_hits").unwrap().as_u64(), Some(3));
        assert_eq!(c.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("stats").unwrap().get("schema").unwrap().as_str(),
            Some("amo-stats-v1")
        );
        assert_eq!(v.get("timeseries"), Some(&Json::Null));
    }

    #[test]
    fn report_without_series_is_null() {
        let doc = metrics_json(&Stats::new(), None, None, &[]);
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("timeseries"), Some(&Json::Null));
        assert_eq!(v.get("trace"), Some(&Json::Null));
    }

    #[test]
    fn report_surfaces_ring_drop_accounting() {
        use crate::tracer::{RingTracer, TraceEvent, TraceKind, Tracer};
        let mut t = RingTracer::new(2);
        for i in 0..5u64 {
            t.record(TraceEvent::instant(TraceKind::Mark, 0, i));
        }
        let buf = t.take_buf().unwrap();
        let doc = metrics_json(&Stats::new(), None, Some(&buf), &[]);
        let v = Json::parse(&doc).unwrap();
        let tr = v.get("trace").unwrap();
        assert_eq!(tr.get("events").unwrap().as_u64(), Some(2));
        assert_eq!(tr.get("dropped").unwrap().as_u64(), Some(3));
        assert_eq!(tr.get("complete").unwrap().as_u64(), Some(0));
    }
}
