//! Interval time-series sampling of machine occupancy, with a JSON
//! export and an ASCII timeline renderer.
//!
//! The simulator samples at fixed cycle intervals (the machine checks the
//! boundary once per dispatched event, so a quiet stretch of simulated
//! time produces one catch-up tick when the next event fires — intervals
//! with no activity simply have no tick, which is itself a signal).

use amo_types::{Cycle, JsonWriter};

/// Occupancy snapshot of one node at one tick.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeSample {
    /// Requests queued at the directory (all blocks).
    pub dir_queue: u32,
    /// Operations queued at the AMU (excluding the one in flight).
    pub amu_queue: u32,
    /// Cycles until the node's network-interface egress port is free.
    pub egress_backlog: u32,
    /// Cycles until the node's ingress port is free.
    pub ingress_backlog: u32,
    /// Outstanding processor cache misses across the node's CPUs.
    pub outstanding_misses: u32,
}

/// One sampling instant.
#[derive(Clone, Debug)]
pub struct Tick {
    /// Cycle the sample was taken at (an interval boundary).
    pub when: Cycle,
    /// Events pending in the machine's future-event list.
    pub events_queued: u64,
    /// Per-node occupancy, indexed by node id.
    pub per_node: Vec<NodeSample>,
}

/// A full run's samples.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    /// Sampling interval in cycles.
    pub interval: Cycle,
    /// Number of nodes each tick covers.
    pub nodes: usize,
    /// Samples in time order.
    pub ticks: Vec<Tick>,
}

/// Which [`NodeSample`] field to render or extract.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Directory queue depth.
    DirQueue,
    /// AMU queue depth.
    AmuQueue,
    /// Egress link backlog (cycles).
    Egress,
    /// Ingress link backlog (cycles).
    Ingress,
    /// Outstanding cache misses.
    Misses,
}

impl Metric {
    /// Label used in headers and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            Metric::DirQueue => "dir_queue",
            Metric::AmuQueue => "amu_queue",
            Metric::Egress => "egress_backlog",
            Metric::Ingress => "ingress_backlog",
            Metric::Misses => "outstanding_misses",
        }
    }

    /// Extract this metric from a sample.
    pub fn of(self, s: &NodeSample) -> u32 {
        match self {
            Metric::DirQueue => s.dir_queue,
            Metric::AmuQueue => s.amu_queue,
            Metric::Egress => s.egress_backlog,
            Metric::Ingress => s.ingress_backlog,
            Metric::Misses => s.outstanding_misses,
        }
    }
}

impl TimeSeries {
    /// Empty series for `nodes` nodes sampled every `interval` cycles.
    pub fn new(interval: Cycle, nodes: usize) -> Self {
        TimeSeries {
            interval,
            nodes,
            ticks: Vec::new(),
        }
    }

    /// Append one tick (must be later than the previous one).
    pub fn push(&mut self, tick: Tick) {
        debug_assert!(self.ticks.last().is_none_or(|last| last.when < tick.when));
        debug_assert_eq!(tick.per_node.len(), self.nodes);
        self.ticks.push(tick);
    }

    /// Peak value of a metric across all ticks and nodes.
    pub fn peak(&self, metric: Metric) -> u32 {
        self.ticks
            .iter()
            .flat_map(|t| t.per_node.iter().map(|s| metric.of(s)))
            .max()
            .unwrap_or(0)
    }

    /// Emit as a JSON object into an open writer.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.kv_u64("interval", self.interval);
        w.kv_u64("nodes", self.nodes as u64);
        w.key("ticks");
        w.begin_arr();
        for t in &self.ticks {
            w.begin_obj();
            w.kv_u64("when", t.when);
            w.kv_u64("events_queued", t.events_queued);
            w.key("per_node");
            w.begin_arr();
            for s in &t.per_node {
                w.begin_obj();
                w.kv_u64("dir_queue", s.dir_queue as u64);
                w.kv_u64("amu_queue", s.amu_queue as u64);
                w.kv_u64("egress_backlog", s.egress_backlog as u64);
                w.kv_u64("ingress_backlog", s.ingress_backlog as u64);
                w.kv_u64("outstanding_misses", s.outstanding_misses as u64);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }

    /// Render one metric as an ASCII timeline: one row per node, one
    /// column per time slice (ticks are averaged down to at most `width`
    /// columns), glyphs scaled to the metric's peak.
    pub fn render_ascii(&self, metric: Metric, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let peak = self.peak(metric);
        let span = self.ticks.last().map(|t| t.when).unwrap_or(0);
        let _ = writeln!(
            out,
            "{} over {} cycles ({} ticks every {} cycles), peak {}",
            metric.label(),
            span,
            self.ticks.len(),
            self.interval,
            peak
        );
        if self.ticks.is_empty() || peak == 0 {
            out.push_str("(no activity recorded)\n");
            return out;
        }
        const GLYPHS: &[u8] = b" .:-=+*#%@";
        let width = width.max(1).min(self.ticks.len());
        for node in 0..self.nodes {
            let _ = write!(out, "node{node:<3} |");
            for col in 0..width {
                // Average the ticks that fall into this column.
                let lo = col * self.ticks.len() / width;
                let hi = ((col + 1) * self.ticks.len() / width).max(lo + 1);
                let sum: u64 = self.ticks[lo..hi]
                    .iter()
                    .map(|t| metric.of(&t.per_node[node]) as u64)
                    .sum();
                let avg = sum / (hi - lo) as u64;
                let g = if avg == 0 {
                    0
                } else {
                    // Nonzero always renders visibly.
                    (avg * (GLYPHS.len() as u64 - 1)).div_ceil(peak as u64) as usize
                };
                out.push(GLYPHS[g.min(GLYPHS.len() - 1)] as char);
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv::Json;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new(100, 2);
        for i in 0..10u64 {
            ts.push(Tick {
                when: (i + 1) * 100,
                events_queued: i,
                per_node: vec![
                    NodeSample {
                        dir_queue: i as u32,
                        ..Default::default()
                    },
                    NodeSample {
                        dir_queue: 0,
                        amu_queue: 3,
                        ..Default::default()
                    },
                ],
            });
        }
        ts
    }

    #[test]
    fn json_parses_and_has_ticks() {
        let ts = series();
        let mut w = JsonWriter::new();
        ts.write_json(&mut w);
        let v = Json::parse(&w.finish()).unwrap();
        assert_eq!(v.get("interval").unwrap().as_u64(), Some(100));
        let ticks = v.get("ticks").unwrap().as_arr().unwrap();
        assert_eq!(ticks.len(), 10);
        assert_eq!(
            ticks[9].get("per_node").unwrap().as_arr().unwrap()[0]
                .get("dir_queue")
                .unwrap()
                .as_u64(),
            Some(9)
        );
    }

    #[test]
    fn ascii_timeline_shows_load_where_it_is() {
        let ts = series();
        let art = ts.render_ascii(Metric::DirQueue, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains("peak 9"));
        // Node 0 ramps up: last column darker than first.
        let row0 = lines[1];
        assert!(row0.starts_with("node0"));
        // Node 1 has zero dir_queue everywhere: all blank.
        let row1 = lines[2];
        assert!(row1.contains("|          |"), "{art}");
        let zero_glyphs = row1.matches(' ').count();
        assert!(zero_glyphs >= 10);
    }

    #[test]
    fn peak_selects_metric() {
        let ts = series();
        assert_eq!(ts.peak(Metric::DirQueue), 9);
        assert_eq!(ts.peak(Metric::AmuQueue), 3);
        assert_eq!(ts.peak(Metric::Egress), 0);
    }
}
