//! Chrome/Perfetto trace-event export, a compact text dump, and a
//! validator used by tests and CI.
//!
//! The emitted document is the legacy "JSON trace event" format that
//! <https://ui.perfetto.dev> (and `chrome://tracing`) opens directly:
//! `{"displayTimeUnit": "ns", "traceEvents": [...]}`. Mapping:
//!
//! * **process (`pid`)** = NUMA node;
//! * **thread (`tid`)** = component track within the node: 1 =
//!   directory, 2 = AMU, 3 = NoC/network interface, `10 + i` = the
//!   node's `i`-th local processor;
//! * **`ts`/`dur`** = CPU cycles (the simulator's native unit; Perfetto
//!   displays them as "ns", so 1 ns on screen = 1 cycle);
//! * spans use `ph: "X"` (complete events), instants `ph: "i"` with
//!   thread scope, and `ph: "M"` metadata names every track;
//! * causal flows (one id per request, from [`TraceEvent::flow`]) are
//!   drawn as flow arrows: `ph: "s"` at the flow's first event,
//!   `ph: "t"` steps at intermediate events, `ph: "f"` (binding point
//!   `"e"`) at the last — the viewer threads an arrow across nodes and
//!   tracks for each request's life.

use crate::tracer::{TraceBuf, TraceEvent, TraceKind};
use amo_types::stats::{ALL_MSG_CLASSES, ALL_OP_CLASSES, MSG_CLASSES, OP_CLASSES};
use amo_types::JsonWriter;
use std::fmt::Write as _;

/// Track ids within a node process.
const TID_DIR: u64 = 1;
const TID_AMU: u64 = 2;
const TID_NOC: u64 = 3;
const TID_PROC_BASE: u64 = 10;

fn msg_label(class: u8) -> &'static str {
    let i = class as usize;
    if i < MSG_CLASSES {
        ALL_MSG_CLASSES[i].label()
    } else {
        "?"
    }
}

fn op_label(class: u8) -> &'static str {
    let i = class as usize;
    if i < OP_CLASSES {
        ALL_OP_CLASSES[i].label()
    } else {
        "?"
    }
}

/// The track an event renders on and its display name.
fn track_and_name(ev: &TraceEvent, procs_per_node: u16) -> (u64, String) {
    let tid = if ev.proc != TraceEvent::NO_PROC {
        TID_PROC_BASE + (ev.proc % procs_per_node.max(1)) as u64
    } else {
        match ev.kind {
            TraceKind::DirService | TraceKind::DirTxnEnd | TraceKind::DirReclaim => TID_DIR,
            TraceKind::AmuOp | TraceKind::AmuNack | TraceKind::AmuApply => TID_AMU,
            _ => TID_NOC,
        }
    };
    let name = match ev.kind {
        TraceKind::MsgSend
        | TraceKind::MsgRecv
        | TraceKind::ProcRecv
        | TraceKind::MsgDrop
        | TraceKind::MsgDup => {
            format!("{}:{}", ev.kind.label(), msg_label(ev.class))
        }
        TraceKind::DirService => format!("dir:{}", msg_label(ev.class)),
        TraceKind::OpComplete => format!("op:{}", op_label(ev.class)),
        TraceKind::DirTxnEnd
        | TraceKind::AmuOp
        | TraceKind::Mark
        | TraceKind::KernelDone
        | TraceKind::LinkRetry
        | TraceKind::AmuNack
        | TraceKind::Fault
        | TraceKind::E2eTimeout
        | TraceKind::AmuApply
        | TraceKind::DirReclaim => ev.kind.label().to_string(),
    };
    (tid, name)
}

/// Render a drained trace as Perfetto JSON. `nodes` and `procs_per_node`
/// size the metadata (track names) so even quiet components get labeled
/// tracks.
pub fn perfetto_json(buf: &TraceBuf, nodes: u16, procs_per_node: u16) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("displayTimeUnit", "ns");
    w.kv_u64("droppedEvents", buf.dropped);
    if buf.dropped > 0 {
        w.kv_str(
            "warning",
            &format!(
                "ring tracer dropped {} older events; the trace window is \
                 incomplete and flows may be truncated",
                buf.dropped
            ),
        );
    }
    w.key("traceEvents");
    w.begin_arr();

    // Metadata: name every process and track.
    for node in 0..nodes {
        meta(
            &mut w,
            node as u64,
            0,
            "process_name",
            &format!("node{node}"),
        );
        meta(&mut w, node as u64, TID_DIR, "thread_name", "directory");
        meta(&mut w, node as u64, TID_AMU, "thread_name", "amu");
        meta(&mut w, node as u64, TID_NOC, "thread_name", "noc");
        for p in 0..procs_per_node {
            let global = node * procs_per_node + p;
            meta(
                &mut w,
                node as u64,
                TID_PROC_BASE + p as u64,
                "thread_name",
                &format!("cpu{global}"),
            );
        }
    }

    // Events, time-sorted (stable: equal timestamps keep recording
    // order, which is causal order within the simulator).
    let mut order: Vec<usize> = (0..buf.events.len()).collect();
    order.sort_by_key(|&i| buf.events[i].when);

    // Flow endpoints in the sorted sequence: flow id → (first, last)
    // position. Flows touching a single event draw no arrow.
    let mut flow_span: std::collections::BTreeMap<u64, (usize, usize)> = Default::default();
    for (pos, &i) in order.iter().enumerate() {
        let f = buf.events[i].flow;
        if f == 0 {
            continue;
        }
        flow_span
            .entry(f)
            .and_modify(|s| s.1 = pos)
            .or_insert((pos, pos));
    }

    for (pos, &i) in order.iter().enumerate() {
        let ev = &buf.events[i];
        let (tid, name) = track_and_name(ev, procs_per_node);
        w.begin_obj();
        w.kv_str("name", &name);
        w.kv_str("ph", if ev.dur > 0 { "X" } else { "i" });
        w.kv_u64("ts", ev.when);
        if ev.dur > 0 {
            w.kv_u64("dur", ev.dur);
        } else {
            w.kv_str("s", "t");
        }
        w.kv_u64("pid", ev.node as u64);
        w.kv_u64("tid", tid);
        w.key("args");
        w.begin_obj();
        w.kv_u64("a", ev.a);
        w.kv_u64("b", ev.b);
        if ev.flow != 0 {
            w.kv_u64("flow", ev.flow);
        }
        if ev.parent != 0 {
            w.kv_u64("parent_flow", ev.parent);
        }
        w.end_obj();
        w.end_obj();
        // Flow arrow anchored to this event (same ts/pid/tid keeps every
        // track time-monotone).
        if ev.flow != 0 {
            let (first, last) = flow_span[&ev.flow];
            if first != last {
                let ph = if pos == first {
                    "s"
                } else if pos == last {
                    "f"
                } else {
                    "t"
                };
                w.begin_obj();
                w.kv_str("name", "flow");
                w.kv_str("cat", "flow");
                w.kv_str("ph", ph);
                if ph == "f" {
                    w.kv_str("bp", "e");
                }
                w.kv_u64("id", ev.flow);
                w.kv_u64("ts", ev.when);
                w.kv_u64("pid", ev.node as u64);
                w.kv_u64("tid", tid);
                w.end_obj();
            }
        }
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

fn meta(w: &mut JsonWriter, pid: u64, tid: u64, what: &str, name: &str) {
    w.begin_obj();
    w.kv_str("ph", "M");
    w.kv_str("name", what);
    w.kv_u64("pid", pid);
    if tid != 0 {
        w.kv_u64("tid", tid);
    }
    w.key("args");
    w.begin_obj();
    w.kv_str("name", name);
    w.end_obj();
    w.end_obj();
}

/// Compact text dump: one event per line, grep-able, recording order.
pub fn text_dump(buf: &TraceBuf) -> String {
    let mut out = String::new();
    if buf.dropped > 0 {
        let _ = writeln!(
            out,
            "# WARNING: {} older events dropped by the ring tracer — this \
             trace window is INCOMPLETE and causal flows may be truncated",
            buf.dropped
        );
    }
    for ev in &buf.events {
        let _ = write!(out, "{:>12} ", ev.when);
        if ev.dur > 0 {
            let _ = write!(out, "+{:<8} ", ev.dur);
        } else {
            let _ = write!(out, "{:<9} ", ".");
        }
        let _ = write!(out, "n{:<3} ", ev.node);
        if ev.proc != TraceEvent::NO_PROC {
            let _ = write!(out, "p{:<4} ", ev.proc);
        } else {
            let _ = write!(out, "{:<6} ", "-");
        }
        let (_, name) = track_and_name(ev, u16::MAX);
        let _ = write!(out, "{:<18} a={} b={}", name, ev.a, ev.b);
        if ev.flow != 0 {
            let _ = write!(out, " flow={:#x}", ev.flow);
        }
        if ev.parent != 0 {
            let _ = write!(out, " parent={:#x}", ev.parent);
        }
        let _ = writeln!(out);
    }
    out
}

/// What [`validate_perfetto`] learned about a trace.
#[derive(Debug)]
pub struct PerfettoSummary {
    /// Non-metadata, non-flow events in the document.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying events.
    pub tracks: usize,
    /// Distinct `pid`s (nodes) carrying at least one event.
    pub nodes_with_events: usize,
    /// Completed flow arrows: `"f"` terminators, each with a matching
    /// earlier `"s"` start of the same id.
    pub flow_links: usize,
}

/// Validate an emitted Perfetto document: it parses, every non-metadata
/// event carries the required fields, events are time-ordered within
/// each `(pid, tid)` track, flow events are well-formed (every `"t"`
/// step and `"f"` finish has a matching *earlier* `"s"` start with the
/// same id, and every started flow finishes), and — when
/// `expected_nodes` is given — every node contributes at least one
/// event.
pub fn validate_perfetto(
    json: &str,
    expected_nodes: Option<u16>,
) -> Result<PerfettoSummary, String> {
    let doc = crate::jsonv::Json::parse(json)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut last_ts: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
    let mut nodes: std::collections::BTreeSet<u64> = Default::default();
    let mut open_flows: std::collections::BTreeSet<u64> = Default::default();
    let mut count = 0usize;
    let mut flow_links = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        if ph == "s" || ph == "t" || ph == "f" {
            let id = ev
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or(format!("event {i}: flow event missing id"))?;
            match ph {
                "s" => {
                    if !open_flows.insert(id) {
                        return Err(format!("event {i}: flow {id} started twice"));
                    }
                }
                "t" => {
                    if !open_flows.contains(&id) {
                        return Err(format!(
                            "event {i}: flow step for {id} without an earlier start"
                        ));
                    }
                }
                _ => {
                    if !open_flows.remove(&id) {
                        return Err(format!(
                            "event {i}: flow finish for {id} without an earlier start"
                        ));
                    }
                    flow_links += 1;
                }
            }
            continue;
        }
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_u64())
            .ok_or(format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_u64())
            .ok_or(format!("event {i}: missing tid"))?;
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_u64())
            .ok_or(format!("event {i}: missing ts"))?;
        ev.get("name")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i}: missing name"))?;
        if let Some(&prev) = last_ts.get(&(pid, tid)) {
            if ts < prev {
                return Err(format!(
                    "event {i}: track ({pid},{tid}) goes backwards: {prev} -> {ts}"
                ));
            }
        }
        last_ts.insert((pid, tid), ts);
        nodes.insert(pid);
        count += 1;
    }
    if let Some(first) = open_flows.iter().next() {
        return Err(format!(
            "{} flow(s) started but never finished (e.g. id {first})",
            open_flows.len()
        ));
    }
    if let Some(n) = expected_nodes {
        for node in 0..n as u64 {
            if !nodes.contains(&node) {
                return Err(format!("node {node} contributed no events"));
            }
        }
    }
    Ok(PerfettoSummary {
        events: count,
        tracks: last_ts.len(),
        nodes_with_events: nodes.len(),
        flow_links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{RingTracer, Tracer};
    use amo_types::stats::{MsgClass, OpClass};

    fn sample_buf() -> TraceBuf {
        let mut t = RingTracer::new(64);
        t.record(
            TraceEvent::span(TraceKind::MsgSend, 0, 10, 130)
                .class(MsgClass::Amo.index())
                .args(1, 32)
                .flow(7),
        );
        t.record(
            TraceEvent::span(TraceKind::DirService, 1, 130, 134)
                .class(MsgClass::Amo.index())
                .flow(7),
        );
        t.record(
            TraceEvent::span(TraceKind::AmuOp, 1, 134, 140)
                .args(0, 0)
                .flow(7),
        );
        t.record(
            TraceEvent::span(TraceKind::OpComplete, 0, 10, 260)
                .on_proc(0)
                .class(OpClass::Amo.index())
                .flow(7),
        );
        t.record(
            TraceEvent::instant(TraceKind::Mark, 0, 261)
                .on_proc(1)
                .args(7, 0),
        );
        t.take_buf().unwrap()
    }

    #[test]
    fn exported_json_validates() {
        let buf = sample_buf();
        let json = perfetto_json(&buf, 2, 2);
        let sum = validate_perfetto(&json, Some(2)).unwrap();
        assert_eq!(sum.events, 5);
        assert_eq!(sum.nodes_with_events, 2);
        assert!(sum.tracks >= 4);
        assert_eq!(sum.flow_links, 1);
        assert!(json.contains(r#""name":"send:amo""#));
        assert!(json.contains(r#""name":"op:amo""#));
        assert!(json.contains(r#""thread_name""#));
        assert!(json.contains(r#""ph":"s""#));
        assert!(json.contains(r#""ph":"f""#));
        assert!(!json.contains(r#""warning""#));
    }

    #[test]
    fn validator_rejects_flow_finish_without_start() {
        let bad = r#"{"traceEvents":[
            {"name":"flow","cat":"flow","ph":"f","bp":"e","id":9,"ts":1,"pid":0,"tid":1}
        ]}"#;
        let err = validate_perfetto(bad, None).unwrap_err();
        assert!(err.contains("without an earlier start"), "{err}");
    }

    #[test]
    fn validator_rejects_unfinished_flow() {
        let bad = r#"{"traceEvents":[
            {"name":"flow","cat":"flow","ph":"s","id":9,"ts":1,"pid":0,"tid":1}
        ]}"#;
        let err = validate_perfetto(bad, None).unwrap_err();
        assert!(err.contains("never finished"), "{err}");
    }

    #[test]
    fn dropped_events_surface_a_warning() {
        let mut t = RingTracer::new(2);
        for i in 0..5u64 {
            t.record(TraceEvent::instant(TraceKind::Mark, 0, i).args(i, 0));
        }
        let buf = t.take_buf().unwrap();
        assert_eq!(buf.dropped, 3);
        let json = perfetto_json(&buf, 1, 1);
        assert!(json.contains(r#""droppedEvents":3"#));
        assert!(json.contains(r#""warning""#));
        assert!(text_dump(&buf).contains("WARNING: 3"));
    }

    #[test]
    fn validator_rejects_out_of_order_tracks() {
        let bad = r#"{"traceEvents":[
            {"name":"x","ph":"i","s":"t","ts":10,"pid":0,"tid":1},
            {"name":"y","ph":"i","s":"t","ts":5,"pid":0,"tid":1}
        ]}"#;
        let err = validate_perfetto(bad, None).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn validator_requires_all_nodes() {
        let one = r#"{"traceEvents":[
            {"name":"x","ph":"i","s":"t","ts":1,"pid":0,"tid":1}
        ]}"#;
        assert!(validate_perfetto(one, Some(1)).is_ok());
        let err = validate_perfetto(one, Some(2)).unwrap_err();
        assert!(err.contains("node 1"), "{err}");
    }

    #[test]
    fn text_dump_mentions_every_event() {
        let buf = sample_buf();
        let dump = text_dump(&buf);
        assert_eq!(dump.lines().count(), 5);
        assert!(dump.contains("send:amo"));
        assert!(dump.contains("mark"));
    }
}
