//! Critical-path extraction and sync-tax attribution.
//!
//! Builds the causal DAG of a drained [`TraceBuf`] — trace events are
//! linked by the `flow` ids the simulator stamps on every request's
//! life — and walks backwards from each synchronization episode's end
//! to its start, attributing every cycle of the episode to exactly one
//! [`Stage`]. The walk is exact by construction: at every step it
//! splits the remaining interval at a junction point, so the per-stage
//! sums reconstruct the end-to-end episode latency cycle for cycle
//! (the *conservation invariant*, pinned by tests and re-checked at
//! report time).

use crate::tracer::{TraceBuf, TraceEvent, TraceKind};
use amo_types::{Cycle, FxHashMap, JsonWriter, MsgClass};
use std::fmt;

/// Where a cycle on the critical path was spent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// NoC serialization + hop pipeline at zero load.
    NocSer,
    /// NoC queueing above zero load (egress/ingress contention).
    NocContend,
    /// Link-level CRC replay cycles charged to a send on the path.
    FaultReplay,
    /// Node-local bus hops between a processor and its hub.
    Bus,
    /// Waiting for the directory service pipeline (occupancy backlog).
    DirQueue,
    /// Directory service: occupancy, memory access, protocol completion
    /// (interventions, invalidation acks) until the reply leaves.
    DirService,
    /// Waiting in the AMU dispatch queue before execution starts.
    AmuQueue,
    /// AMU function-unit execution.
    AmuExec,
    /// Processor spinning / waiting for a delivery that belongs to
    /// another flow (lock held elsewhere, barrier peers not yet done).
    CpuSpin,
    /// Processor backoff between a NACK/reply delivery and the resend.
    CpuBackoff,
    /// Processor-local compute (cache hits, kernel bookkeeping).
    CpuLocal,
    /// Unattributable remainder (walk cap, missing context).
    Other,
}

/// Number of [`Stage`] variants.
pub const STAGES: usize = 12;

/// All stages in discriminant order.
pub const ALL_STAGES: [Stage; STAGES] = [
    Stage::NocSer,
    Stage::NocContend,
    Stage::FaultReplay,
    Stage::Bus,
    Stage::DirQueue,
    Stage::DirService,
    Stage::AmuQueue,
    Stage::AmuExec,
    Stage::CpuSpin,
    Stage::CpuBackoff,
    Stage::CpuLocal,
    Stage::Other,
];

impl Stage {
    /// Dense index for attribution arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used in reports and grepped by CI.
    pub fn label(self) -> &'static str {
        match self {
            Stage::NocSer => "noc_ser",
            Stage::NocContend => "noc_contend",
            Stage::FaultReplay => "fault_replay",
            Stage::Bus => "bus",
            Stage::DirQueue => "dir_queue",
            Stage::DirService => "dir_service",
            Stage::AmuQueue => "amu_queue",
            Stage::AmuExec => "amu_exec",
            Stage::CpuSpin => "cpu_spin",
            Stage::CpuBackoff => "cpu_backoff",
            Stage::CpuLocal => "cpu_local",
            Stage::Other => "other",
        }
    }
}

/// Which mark scheme the trace's episodes use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Barrier episodes: enter mark `2e`, exit mark `2e+1` (e ≥ 1).
    /// One episode per `e`, ending at the *last* exit mark.
    Barrier,
    /// Lock episodes: acquire mark `2r` (r ≥ 1). One "handoff" episode
    /// between consecutive acquires, machine-wide.
    Lock,
}

impl Workload {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Barrier => "barrier",
            Workload::Lock => "lock",
        }
    }
}

/// Why a critical path could not be extracted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CritPathError {
    /// The ring tracer overwrote events: the causal DAG has holes, so
    /// any attribution would silently lie. Re-run with a larger
    /// `trace_cap`.
    IncompleteDag {
        /// Events the ring dropped.
        dropped: u64,
    },
    /// No episode boundaries (Mark events) found in the trace.
    NoEpisodes,
}

impl fmt::Display for CritPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CritPathError::IncompleteDag { dropped } => write!(
                f,
                "incomplete causal DAG: the ring tracer dropped {dropped} events; \
                 re-run with a larger trace capacity"
            ),
            CritPathError::NoEpisodes => {
                write!(f, "no episode marks in trace (nothing to attribute)")
            }
        }
    }
}

impl std::error::Error for CritPathError {}

/// One episode's critical path: end-to-end latency split by stage.
#[derive(Clone, Debug)]
pub struct EpisodePath {
    /// Human-readable episode label (`barrier_ep3`, `handoff7`).
    pub label: String,
    /// Episode start cycle.
    pub start: Cycle,
    /// Episode end cycle.
    pub end: Cycle,
    /// `end - start`; equals the sum of `stages` exactly.
    pub total: Cycle,
    /// Cycles attributed to each stage, indexed by [`Stage::index`].
    pub stages: [u64; STAGES],
    /// Walk steps taken (diagnostics).
    pub steps: usize,
}

impl EpisodePath {
    /// True iff the stage sums reconstruct the episode latency exactly.
    pub fn conserved(&self) -> bool {
        self.stages.iter().sum::<u64>() == self.total
    }
}

/// Aggregated critical-path attribution for one traced run.
#[derive(Clone, Debug)]
pub struct CritPathReport {
    /// Mark scheme the episodes were extracted under.
    pub workload: Workload,
    /// Trace events analyzed.
    pub events: usize,
    /// Per-episode critical paths, in episode order.
    pub episodes: Vec<EpisodePath>,
    /// Stage totals across all episodes, indexed by [`Stage::index`].
    pub totals: [u64; STAGES],
    /// Sum of episode latencies.
    pub total_cycles: u64,
}

impl CritPathReport {
    /// True iff every episode's stage sums equal its latency.
    pub fn conserved(&self) -> bool {
        self.episodes.iter().all(|e| e.conserved())
            && self.totals.iter().sum::<u64>() == self.total_cycles
    }

    /// Render the report as `amo-critpath-v1` JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.kv_str("schema", "amo-critpath-v1");
        w.kv_str("workload", self.workload.label());
        w.kv_u64("events", self.events as u64);
        w.kv_u64("dropped", 0);
        w.kv_u64("episodes_n", self.episodes.len() as u64);
        w.kv_u64("total_cycles", self.total_cycles);
        w.kv_str(
            "conservation",
            if self.conserved() {
                "exact"
            } else {
                "violated"
            },
        );
        w.key("totals");
        w.begin_obj();
        for s in ALL_STAGES {
            w.kv_u64(s.label(), self.totals[s.index()]);
        }
        w.end_obj();
        w.key("episodes");
        w.begin_arr();
        for ep in &self.episodes {
            w.begin_obj();
            w.kv_str("label", &ep.label);
            w.kv_u64("start", ep.start);
            w.kv_u64("end", ep.end);
            w.kv_u64("total", ep.total);
            w.kv_u64("steps", ep.steps as u64);
            w.key("stages");
            w.begin_obj();
            for s in ALL_STAGES {
                if ep.stages[s.index()] > 0 {
                    w.kv_u64(s.label(), ep.stages[s.index()]);
                }
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Render a human-readable attribution table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# critical-path attribution ({} episodes, {} workload)",
            self.episodes.len(),
            self.workload.label()
        );
        let _ = writeln!(
            out,
            "# conservation: {} (stage sums == end-to-end latency)",
            if self.conserved() {
                "exact"
            } else {
                "VIOLATED"
            }
        );
        let _ = writeln!(out, "{:<14} {:>14} {:>8}", "stage", "cycles", "share");
        let total = self.total_cycles.max(1);
        for s in ALL_STAGES {
            let c = self.totals[s.index()];
            if c == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>14} {:>7.2}%",
                s.label(),
                c,
                c as f64 * 100.0 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>14} {:>7.2}%",
            "total", self.total_cycles, 100.0
        );
        for ep in &self.episodes {
            let mut top: Vec<(Stage, u64)> = ALL_STAGES
                .iter()
                .map(|&s| (s, ep.stages[s.index()]))
                .filter(|&(_, c)| c > 0)
                .collect();
            top.sort_by_key(|&(_, cycles)| std::cmp::Reverse(cycles));
            let tops: Vec<String> = top
                .iter()
                .take(3)
                .map(|(s, c)| format!("{}={}", s.label(), c))
                .collect();
            let _ = writeln!(
                out,
                "  {} [{}..{}] {} cycles: {}",
                ep.label,
                ep.start,
                ep.end,
                ep.total,
                tops.join(" ")
            );
        }
        out
    }
}

const NO_PROC: u16 = TraceEvent::NO_PROC;

fn end_of(e: &TraceEvent) -> Cycle {
    e.when + e.dur
}

/// Indexes over one trace, built once per [`analyze`] call.
struct Dag<'a> {
    ev: &'a [TraceEvent],
    /// Events of each flow, in recording order.
    per_flow: FxHashMap<u64, Vec<usize>>,
    /// Per-processor events (delivery, completion, injection, marks),
    /// sorted by (end, seq).
    per_proc: FxHashMap<u16, Vec<usize>>,
    /// MsgRecv per node, sorted by (when, seq).
    recv_by_node: FxHashMap<u16, Vec<usize>>,
    /// WordUpdate MsgSend per destination node (the event's `a` arg),
    /// sorted by (end, seq).
    wu_send_by_dst: FxHashMap<u16, Vec<usize>>,
    /// Link-replay cycles charged at (node, send-start).
    link_retry: FxHashMap<(u16, Cycle), u64>,
    /// flow → parent flow, from any event that carried the link.
    flow_parent: FxHashMap<u64, u64>,
}

impl<'a> Dag<'a> {
    fn build(ev: &'a [TraceEvent]) -> Self {
        let mut dag = Dag {
            ev,
            per_flow: FxHashMap::default(),
            per_proc: FxHashMap::default(),
            recv_by_node: FxHashMap::default(),
            wu_send_by_dst: FxHashMap::default(),
            link_retry: FxHashMap::default(),
            flow_parent: FxHashMap::default(),
        };
        let wu = MsgClass::WordUpdate.index() as u8;
        for (i, e) in ev.iter().enumerate() {
            if e.flow != 0 {
                dag.per_flow.entry(e.flow).or_default().push(i);
                if e.parent != 0 {
                    dag.flow_parent.insert(e.flow, e.parent);
                }
            }
            match e.kind {
                TraceKind::ProcRecv
                | TraceKind::OpComplete
                | TraceKind::MsgSend
                | TraceKind::Mark
                | TraceKind::KernelDone
                    if e.proc != NO_PROC =>
                {
                    dag.per_proc.entry(e.proc).or_default().push(i);
                }
                _ => {}
            }
            match e.kind {
                TraceKind::MsgRecv => dag.recv_by_node.entry(e.node).or_default().push(i),
                TraceKind::MsgSend if e.class == wu => {
                    dag.wu_send_by_dst.entry(e.a as u16).or_default().push(i)
                }
                TraceKind::LinkRetry => {
                    *dag.link_retry.entry((e.node, e.when)).or_insert(0) += e.b;
                }
                _ => {}
            }
        }
        for v in dag.per_proc.values_mut() {
            v.sort_by_key(|&i| (end_of(&ev[i]), i));
        }
        for v in dag.recv_by_node.values_mut() {
            v.sort_by_key(|&i| (ev[i].when, i));
        }
        for v in dag.wu_send_by_dst.values_mut() {
            v.sort_by_key(|&i| (end_of(&ev[i]), i));
        }
        dag
    }

    /// Latest event in `list` (sorted by end) with `end <= t`, passing
    /// `keep`, excluding already-visited events (a backward walk
    /// consumes each event at most once — ties at the same cycle would
    /// otherwise cycle forever).
    fn latest_by_end(
        &self,
        list: Option<&Vec<usize>>,
        t: Cycle,
        visited: &[bool],
        keep: impl Fn(&TraceEvent) -> bool,
    ) -> Option<usize> {
        let list = list?;
        // Partition point: first index with end > t.
        let hi = list.partition_point(|&i| end_of(&self.ev[i]) <= t);
        list[..hi]
            .iter()
            .rev()
            .find(|&&i| !visited[i] && keep(&self.ev[i]))
            .copied()
    }

    /// Max-end unvisited event of `flow` with `end <= t` and a kind in
    /// `kinds`. Flow lists are small (one request's life).
    fn flow_pred(
        &self,
        flow: u64,
        t: Cycle,
        visited: &[bool],
        kinds: &[TraceKind],
    ) -> Option<usize> {
        let list = self.per_flow.get(&flow)?;
        list.iter()
            .copied()
            .filter(|&i| {
                !visited[i] && kinds.contains(&self.ev[i].kind) && end_of(&self.ev[i]) <= t
            })
            .max_by_key(|&i| (end_of(&self.ev[i]), i))
    }

    /// Does `flow` causally belong to op root `root` (same flow, or
    /// linked to it via a parent edge)?
    fn belongs_to(&self, flow: u64, root: u64) -> bool {
        flow == root || self.flow_parent.get(&flow) == Some(&root)
    }
}

/// Walk one episode backwards from its end Mark, attributing every
/// cycle of `[start, end]` to a stage. Exact by construction.
fn walk(dag: &Dag<'_>, end_idx: usize, ep_start: Cycle, stages: &mut [u64; STAGES]) -> usize {
    let ev = dag.ev;
    let mut cur = end_idx;
    let mut cursor = end_of(&ev[end_idx]);
    let mut steps = 0usize;
    let cap = 4 * ev.len() + 64;
    let mut visited = vec![false; ev.len()];
    let add = |stages: &mut [u64; STAGES], s: Stage, lo: Cycle, hi: Cycle| {
        if hi > lo {
            stages[s.index()] += hi - lo;
        }
    };
    while cursor > ep_start {
        steps += 1;
        if steps > cap {
            // Backstop: dump the unexplained remainder.
            add(stages, Stage::Other, ep_start, cursor);
            break;
        }
        visited[cur] = true;
        let e = &ev[cur];
        let span_lo = e.when.max(ep_start);

        // 1. The event's own span, clipped to [span_lo, cursor].
        match e.kind {
            TraceKind::MsgSend => {
                let t = cursor.saturating_sub(span_lo);
                let replay = dag
                    .link_retry
                    .get(&(e.node, e.when))
                    .copied()
                    .unwrap_or(0)
                    .min(t);
                let ser = e.b.min(t - replay);
                add(stages, Stage::FaultReplay, 0, replay);
                add(stages, Stage::NocSer, 0, ser);
                add(stages, Stage::NocContend, 0, t - replay - ser);
                cursor = span_lo;
            }
            TraceKind::DirService => {
                add(stages, Stage::DirService, span_lo, cursor);
                cursor = span_lo;
            }
            TraceKind::AmuOp => {
                add(stages, Stage::AmuExec, span_lo, cursor);
                cursor = span_lo;
            }
            TraceKind::OpComplete => {
                // Find the delivery that satisfied the op: the latest
                // ProcRecv on this processor inside the op's span.
                let delivery =
                    dag.latest_by_end(dag.per_proc.get(&e.proc), cursor, &visited, |p| {
                        p.kind == TraceKind::ProcRecv && p.when >= e.when
                    });
                match delivery {
                    Some(d) => {
                        let del = &ev[d];
                        // Tail after the delivery: spin if the delivery
                        // belongs to a foreign flow (we were waiting on
                        // someone else), local completion otherwise.
                        let tail =
                            if del.flow != 0 && e.flow != 0 && !dag.belongs_to(del.flow, e.flow) {
                                Stage::CpuSpin
                            } else {
                                Stage::CpuLocal
                            };
                        let j = del.when.max(ep_start);
                        add(stages, tail, j, cursor);
                        cursor = j;
                        cur = d;
                        continue; // the delivery IS the predecessor
                    }
                    None => {
                        // The op never left the core (or its messages
                        // predate the window): all local.
                        add(stages, Stage::CpuLocal, span_lo, cursor);
                        cursor = span_lo;
                    }
                }
            }
            // Instants (ProcRecv, MsgRecv, Mark, KernelDone, AmuNack…):
            // zero-width, nothing to attribute for the event itself.
            _ => {
                cursor = cursor.min(e.when).max(ep_start);
            }
        }
        if cursor <= ep_start {
            break;
        }
        let j = cursor;

        // 2. Find the predecessor and attribute the gap.
        let (pred, gap) = predecessor(dag, cur, j, &visited);
        let Some(p) = pred else {
            let fallback = if e.proc != NO_PROC {
                Stage::CpuLocal
            } else {
                Stage::Other
            };
            add(stages, fallback, ep_start, cursor);
            break;
        };
        let pe = end_of(&ev[p]).min(cursor).max(ep_start);
        add(stages, gap, pe, cursor);
        cursor = pe;
        cur = p;
    }
    steps
}

/// Predecessor of `cur` at junction time `j`, plus the stage the gap
/// between them belongs to. `visited` excludes events the walk already
/// consumed.
fn predecessor(dag: &Dag<'_>, cur: usize, j: Cycle, visited: &[bool]) -> (Option<usize>, Stage) {
    let ev = dag.ev;
    let e = &ev[cur];
    match e.kind {
        TraceKind::ProcRecv => {
            if e.flow != 0 {
                if let Some(p) = dag.flow_pred(e.flow, j, visited, &[TraceKind::MsgSend]) {
                    return (Some(p), Stage::Bus);
                }
            }
            // Flow-less word updates: join on the fanout send targeting
            // this node.
            if e.class == MsgClass::WordUpdate.index() as u8 {
                if let Some(p) =
                    dag.latest_by_end(dag.wu_send_by_dst.get(&e.node), j, visited, |_| true)
                {
                    return (Some(p), Stage::Bus);
                }
            }
            (
                dag.latest_by_end(dag.per_proc.get(&e.proc), j, visited, |_| true),
                Stage::CpuLocal,
            )
        }
        TraceKind::MsgRecv => {
            if e.flow != 0 {
                if let Some(p) = dag.flow_pred(e.flow, j, visited, &[TraceKind::MsgSend]) {
                    return (Some(p), Stage::Bus);
                }
            }
            (
                dag.latest_by_end(dag.wu_send_by_dst.get(&e.node), j, visited, |_| true),
                Stage::Bus,
            )
        }
        TraceKind::DirService => {
            if e.flow != 0 {
                if let Some(p) = dag.flow_pred(e.flow, j, visited, &[TraceKind::MsgRecv]) {
                    return (Some(p), Stage::DirQueue);
                }
            }
            (
                dag.latest_by_end(dag.recv_by_node.get(&e.node), j, visited, |p| {
                    p.class == e.class
                }),
                Stage::DirQueue,
            )
        }
        TraceKind::AmuOp => (
            dag.flow_pred(e.flow, j, visited, &[TraceKind::MsgRecv]),
            Stage::AmuQueue,
        ),
        TraceKind::MsgSend => {
            if e.proc != NO_PROC {
                // Processor-originated injection: what was the core
                // doing just before? A delivery of the same flow means
                // a NACK/retry backoff; anything else is local compute.
                let p = dag.latest_by_end(dag.per_proc.get(&e.proc), j, visited, |_| true);
                let gap = match p {
                    Some(i)
                        if e.flow != 0
                            && ev[i].flow == e.flow
                            && matches!(ev[i].kind, TraceKind::ProcRecv | TraceKind::MsgSend) =>
                    {
                        Stage::CpuBackoff
                    }
                    _ => Stage::CpuLocal,
                };
                return (p, gap);
            }
            // Hub-originated (reply, fanout): the service that produced
            // it. Directory replies can trail the service span by the
            // full memory/protocol latency — that time IS directory
            // service.
            if e.flow != 0 {
                if let Some(p) = dag.flow_pred(
                    e.flow,
                    j,
                    visited,
                    &[TraceKind::AmuOp, TraceKind::DirService],
                ) {
                    let gap = if ev[p].kind == TraceKind::DirService {
                        Stage::DirService
                    } else {
                        Stage::Other
                    };
                    return (Some(p), gap);
                }
                if let Some(p) = dag.flow_pred(e.flow, j, visited, &[TraceKind::MsgRecv]) {
                    return (Some(p), Stage::AmuQueue);
                }
            }
            (None, Stage::Other)
        }
        // Mark / KernelDone / OpComplete-fallback / anything on a core:
        // the previous thing the core did.
        _ if e.proc != NO_PROC => (
            dag.latest_by_end(dag.per_proc.get(&e.proc), j, visited, |_| true),
            Stage::CpuLocal,
        ),
        _ => (None, Stage::Other),
    }
}

/// Episode boundaries extracted from Mark events.
struct Episode {
    label: String,
    start: Cycle,
    end_idx: usize,
}

fn extract_episodes(ev: &[TraceEvent], workload: Workload) -> Vec<Episode> {
    let marks: Vec<usize> = (0..ev.len())
        .filter(|&i| ev[i].kind == TraceKind::Mark)
        .collect();
    match workload {
        Workload::Barrier => {
            // exit mark 2e+1 closes episode e; the slowest (last) exit
            // defines the release.
            let mut last_exit: FxHashMap<u64, usize> = FxHashMap::default();
            let mut first_enter: FxHashMap<u64, Cycle> = FxHashMap::default();
            for &i in &marks {
                let a = ev[i].a;
                if a >= 3 && a % 2 == 1 {
                    let e = (a - 1) / 2;
                    let cur = last_exit.entry(e).or_insert(i);
                    if (ev[i].when, i) > (ev[*cur].when, *cur) {
                        *cur = i;
                    }
                } else if a >= 2 && a.is_multiple_of(2) {
                    let e = a / 2;
                    let w = first_enter.entry(e).or_insert(ev[i].when);
                    *w = (*w).min(ev[i].when);
                }
            }
            let mut eps: Vec<u64> = last_exit.keys().copied().collect();
            eps.sort_unstable();
            let mut out = Vec::new();
            for &e in &eps {
                let end_idx = last_exit[&e];
                let start = last_exit
                    .get(&(e - 1))
                    .map(|&i| ev[i].when)
                    .or_else(|| first_enter.get(&e).copied());
                let Some(start) = start else { continue };
                if ev[end_idx].when <= start {
                    continue;
                }
                out.push(Episode {
                    label: format!("barrier_ep{e}"),
                    start,
                    end_idx,
                });
            }
            out
        }
        Workload::Lock => {
            // Acquire marks (even ids ≥ 2) across all processors, in
            // time order; each consecutive pair is one handoff.
            let mut acq: Vec<usize> = marks
                .iter()
                .copied()
                .filter(|&i| ev[i].a >= 2 && ev[i].a.is_multiple_of(2))
                .collect();
            acq.sort_by_key(|&i| (ev[i].when, i));
            acq.windows(2)
                .enumerate()
                .filter(|(_, w)| ev[w[1]].when > ev[w[0]].when)
                .map(|(n, w)| Episode {
                    label: format!("handoff{}", n + 1),
                    start: ev[w[0]].when,
                    end_idx: w[1],
                })
                .collect()
        }
    }
}

/// Extract per-episode critical paths and stage attribution from a
/// drained trace.
///
/// Fails with [`CritPathError::IncompleteDag`] if the ring dropped
/// events (the DAG has holes — any attribution would be silently
/// wrong) and [`CritPathError::NoEpisodes`] if the trace carries no
/// usable Mark events.
pub fn analyze(buf: &TraceBuf, workload: Workload) -> Result<CritPathReport, CritPathError> {
    if buf.dropped > 0 {
        return Err(CritPathError::IncompleteDag {
            dropped: buf.dropped,
        });
    }
    let episodes = extract_episodes(&buf.events, workload);
    if episodes.is_empty() {
        return Err(CritPathError::NoEpisodes);
    }
    let dag = Dag::build(&buf.events);
    let mut out = Vec::with_capacity(episodes.len());
    let mut totals = [0u64; STAGES];
    let mut total_cycles = 0u64;
    for ep in episodes {
        let end = end_of(&buf.events[ep.end_idx]);
        let mut stages = [0u64; STAGES];
        let steps = walk(&dag, ep.end_idx, ep.start, &mut stages);
        let total = end - ep.start;
        debug_assert_eq!(
            stages.iter().sum::<u64>(),
            total,
            "conservation violated for {}",
            ep.label
        );
        for (t, s) in totals.iter_mut().zip(stages.iter()) {
            *t += s;
        }
        total_cycles += total;
        out.push(EpisodePath {
            label: ep.label,
            start: ep.start,
            end,
            total,
            stages,
            steps,
        });
    }
    Ok(CritPathReport {
        workload,
        events: buf.events.len(),
        episodes: out,
        totals,
        total_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(proc: u16, node: u16, a: u64, when: Cycle) -> TraceEvent {
        TraceEvent::instant(TraceKind::Mark, node, when)
            .on_proc(proc)
            .args(a, 0)
    }

    /// A hand-built trace of one barrier episode on one node:
    ///   enter(2)@100 → send req [100,140] (zero-load 30) →
    ///   recv@140 → dir [150,170] → reply send [170,190] (zero-load 20)
    ///   → deliver@195 → op [95,200] → exit(3)@200
    fn tiny_barrier_trace() -> TraceBuf {
        let f = 42u64;
        let events = vec![
            mark(0, 0, 2, 100),
            TraceEvent::span(TraceKind::OpComplete, 0, 95, 200)
                .on_proc(0)
                .flow(f),
            TraceEvent::span(TraceKind::MsgSend, 0, 100, 140)
                .on_proc(0)
                .args(1, 30)
                .flow(f),
            TraceEvent::instant(TraceKind::MsgRecv, 1, 140).flow(f),
            TraceEvent::span(TraceKind::DirService, 1, 150, 170).flow(f),
            TraceEvent::span(TraceKind::MsgSend, 1, 170, 190)
                .args(0, 20)
                .flow(f),
            TraceEvent::instant(TraceKind::ProcRecv, 0, 195)
                .on_proc(0)
                .flow(f),
            mark(0, 0, 3, 200),
        ];
        TraceBuf { events, dropped: 0 }
    }

    #[test]
    fn conservation_is_exact_on_a_hand_built_episode() {
        let buf = tiny_barrier_trace();
        let rep = analyze(&buf, Workload::Barrier).unwrap();
        assert_eq!(rep.episodes.len(), 1);
        let ep = &rep.episodes[0];
        assert_eq!(ep.label, "barrier_ep1");
        assert_eq!((ep.start, ep.end), (100, 200));
        assert_eq!(ep.total, 100);
        assert!(
            ep.conserved(),
            "stages {:?} != total {}",
            ep.stages,
            ep.total
        );
        assert!(rep.conserved());
        // The directory span is on the path.
        assert!(ep.stages[Stage::DirService.index()] >= 20);
        // Zero-load serialization of both sends.
        assert!(ep.stages[Stage::NocSer.index()] >= 50);
        // Queue wait before the directory (140→150).
        assert!(ep.stages[Stage::DirQueue.index()] >= 10);
    }

    #[test]
    fn dropped_events_refuse_analysis_with_typed_error() {
        let mut buf = tiny_barrier_trace();
        buf.dropped = 7;
        assert_eq!(
            analyze(&buf, Workload::Barrier).unwrap_err(),
            CritPathError::IncompleteDag { dropped: 7 }
        );
    }

    #[test]
    fn no_marks_is_a_typed_error() {
        let buf = TraceBuf {
            events: vec![TraceEvent::instant(TraceKind::MsgRecv, 0, 5)],
            dropped: 0,
        };
        assert_eq!(
            analyze(&buf, Workload::Barrier).unwrap_err(),
            CritPathError::NoEpisodes
        );
    }

    #[test]
    fn lock_handoffs_pair_consecutive_acquires() {
        let events = vec![
            mark(0, 0, 2, 100), // acquire round 1
            mark(1, 0, 4, 400), // acquire round 2
            mark(0, 0, 6, 900), // acquire round 3
        ];
        let buf = TraceBuf { events, dropped: 0 };
        let rep = analyze(&buf, Workload::Lock).unwrap();
        assert_eq!(rep.episodes.len(), 2);
        assert_eq!(rep.episodes[0].total, 300);
        assert_eq!(rep.episodes[1].total, 500);
        assert!(rep.conserved());
    }

    #[test]
    fn report_json_carries_schema_and_conservation() {
        let rep = analyze(&tiny_barrier_trace(), Workload::Barrier).unwrap();
        let json = rep.to_json();
        assert!(json.contains("\"schema\":\"amo-critpath-v1\""));
        assert!(json.contains("\"conservation\":\"exact\""));
        assert!(json.contains("\"dropped\":0"));
        assert!(json.contains("\"dir_service\":"));
        let text = rep.render_text();
        assert!(text.contains("conservation: exact"));
        assert!(text.contains("barrier_ep1"));
    }
}
