use amo_sim::Machine;
use amo_sync::*;
use amo_types::{NodeId, ProcId, SystemConfig};

fn main() {
    let cfg = SystemConfig::with_procs(4);
    let mut machine = Machine::new(cfg);
    machine.enable_trace();
    let mut alloc = VarAlloc::new();
    let spec = BarrierSpec::build(&mut alloc, Mechanism::Mao, NodeId(0), 4, 1);
    for p in 0..4u16 {
        let work = vec![100 + p as u64 * 37];
        machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
    }
    let res = machine.run(3_000_000);
    for l in machine.trace().iter().take(200) { println!("{l}"); }
    println!("finished={:?} mao_ops={}", res.finished, machine.stats().mao_ops);
}
