//! Spin locks: ticket locks and Anderson array-based queuing locks
//! (paper Sec. 3.3.2 and 4.2.3), over all five mechanisms.
//!
//! Both use cumulative counts. A ticket lock's `now_serving` only ever
//! increments; an array lock's per-slot flag counts how many times the
//! slot has been granted, so the holder of ticket `t` spins on
//! `flags[t % n] ≥ t/n + 1` and releases by bringing
//! `flags[(t+1) % n]` to `(t+1)/n + 1`.
//!
//! Under MAO only the *sequencer* lives in uncached space (it is the
//! only word needing atomicity); grant words stay coherent and releases
//! are ordinary stores — which is why the paper's MAO locks perform like
//! the conventional ones. Under AMO the release is an `amo.fetchadd`
//! whose immediate put pushes the new value into every waiting cache.
//!
//! The array lock is Anderson's: the conventional release performs *two*
//! writes (reset your own slot, grant the next), which is what makes it
//! slower than the ticket lock on small machines; the AMO recoding drops
//! the reset ("using AMOs makes it a moot point", paper Sec. 3.3.2).

use crate::mechanism::{FetchAddSub, Mechanism, MsgOpSub, ReleaseSub, SpinSub, Step};
use crate::VarAlloc;
use amo_cpu::{Kernel, Op, Outcome};
use amo_types::HandlerKind;
use amo_types::{Addr, Cycle, NodeId, SpinPred, Word};
use std::cell::Cell;
use std::rc::Rc;

/// Marker ids recorded by lock kernels: round `r` (1-based) acquires at
/// mark `2r` and releases at mark `2r + 1`.
pub fn acquire_mark(round: u32) -> u32 {
    round * 2
}

/// See [`acquire_mark`].
pub fn release_mark(round: u32) -> u32 {
    round * 2 + 1
}

/// Optional in-simulation mutual-exclusion checker: each holder scribbles
/// its tag into a shared word on entry and verifies it on exit; any
/// mismatch means two processors were inside simultaneously.
#[derive(Clone)]
pub struct ExclusionCheck {
    /// Shared scribble word (coherent).
    pub addr: Addr,
    /// Violation counter shared with the test harness.
    pub violations: Rc<Cell<u64>>,
}

/// Shared description of a ticket lock.
#[derive(Clone, Copy, Debug)]
pub struct TicketLockSpec {
    /// Mechanism implementing fetch-and-add / release / spin.
    pub mech: Mechanism,
    /// The sequencer (`next_ticket`).
    pub next_ticket: Addr,
    /// The grant counter (`now_serving`).
    pub now_serving: Addr,
    /// Active-message service counter for the sequencer.
    pub ctr_id: u16,
    /// Active-message service counter holding the grant count (the
    /// ActMsg ticket lock keeps `now_serving` at the home processor and
    /// waiters poll it with messages).
    pub ctr_serving: u16,
    /// Acquisitions each participant performs.
    pub rounds: u32,
    /// Critical-section length in cycles.
    pub cs_cycles: Cycle,
}

impl TicketLockSpec {
    /// Allocate a ticket lock homed on `home`.
    pub fn build(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        home: NodeId,
        rounds: u32,
        cs_cycles: Cycle,
    ) -> Self {
        TicketLockSpec {
            mech,
            // Only the sequencer needs atomicity; under MAO it lives in
            // uncached space. The grant counter is always coherent.
            next_ticket: alloc.counter_for(mech, home),
            now_serving: alloc.word(home),
            ctr_id: alloc.ctr(home),
            ctr_serving: alloc.ctr(home),
            rounds,
            cs_cycles,
        }
    }
}

#[derive(Debug)]
enum LockPhase {
    StartRound,
    ThinkWait,
    Acquire(AcqSub),
    Waiting(WaitSub),
    AcqMarkWait,
    ScribbleWait,
    CsWait,
    VerifyWait,
    ResetWait,
    Release(RelSub),
    RelMarkWait,
    Done,
}

/// How a ticket is obtained: a mechanism fetch-add, or a home-mediated
/// acquire message whose ack is the deferred grant (ActMsg ticket lock).
#[derive(Debug)]
enum AcqSub {
    Fa(FetchAddSub),
    Msg(MsgOpSub),
}

impl AcqSub {
    fn poll(&mut self, last: Option<Outcome>) -> Step {
        match self {
            AcqSub::Fa(f) => f.poll(last),
            AcqSub::Msg(m) => m.poll(last),
        }
    }
}

/// How a waiter waits: a cached spin — or nothing at all, when the
/// acquire's ack already was the grant (ActMsg ticket lock).
#[derive(Debug)]
enum WaitSub {
    Spin(SpinSub),
    Granted,
}

impl WaitSub {
    fn poll(&mut self, last: Option<Outcome>) -> Step {
        match self {
            WaitSub::Spin(s) => s.poll(last),
            WaitSub::Granted => Step::Ready(0),
        }
    }
}

/// How a release happens: a release write, or a home-mediated release
/// message (ActMsg ticket lock).
#[derive(Debug)]
enum RelSub {
    Rel(ReleaseSub),
    Msg(MsgOpSub),
}

impl RelSub {
    fn poll(&mut self, last: Option<Outcome>) -> Step {
        match self {
            RelSub::Rel(r) => r.poll(last),
            RelSub::Msg(m) => m.poll(last),
        }
    }
}

/// One participant's ticket-lock benchmark kernel: `rounds` iterations
/// of think → acquire → critical section → release.
pub struct TicketLockKernel {
    spec: TicketLockSpec,
    think: Vec<Cycle>,
    tag: Word,
    check: Option<ExclusionCheck>,
    r: u32,
    my_ticket: Word,
    state: LockPhase,
}

impl TicketLockKernel {
    /// Build the kernel. `think[i]` is the local delay before round
    /// `i+1`; `tag` must be unique and nonzero per participant when an
    /// exclusion check is attached.
    pub fn new(
        spec: TicketLockSpec,
        think: Vec<Cycle>,
        tag: Word,
        check: Option<ExclusionCheck>,
    ) -> Self {
        assert_eq!(think.len(), spec.rounds as usize);
        TicketLockKernel {
            spec,
            think,
            tag,
            check,
            r: 1,
            my_ticket: 0,
            state: LockPhase::StartRound,
        }
    }

    fn acquire_sub(&self) -> AcqSub {
        match self.spec.mech {
            // Home-mediated: the ack is the deferred grant. Waiting
            // happens inside this one message exchange; long waits make
            // the requester's timer retransmit, and every duplicate
            // invocation burns home-CPU time — the paper's
            // heavy-contention interference and traffic blow-up.
            Mechanism::ActMsg => AcqSub::Msg(MsgOpSub::new(
                self.spec.now_serving.home(),
                HandlerKind::LockAcquire {
                    lock: self.spec.ctr_serving,
                },
            )),
            _ => AcqSub::Fa(FetchAddSub::new(
                self.spec.mech,
                self.spec.next_ticket,
                1,
                self.spec.ctr_id,
            )),
        }
    }

    fn wait_sub(&self) -> WaitSub {
        match self.spec.mech {
            // The grant already arrived with the acquire's ack.
            Mechanism::ActMsg => WaitSub::Granted,
            _ => WaitSub::Spin(SpinSub::coherent(
                self.spec.now_serving,
                SpinPred::Ge(self.my_ticket),
            )),
        }
    }

    fn release_sub(&self) -> RelSub {
        let new_value = self.my_ticket + 1;
        match self.spec.mech {
            Mechanism::ActMsg => RelSub::Msg(MsgOpSub::new(
                self.spec.now_serving.home(),
                HandlerKind::LockRelease {
                    lock: self.spec.ctr_serving,
                },
            )),
            // The grant counter is coherent; MAO releases it with an
            // ordinary store.
            Mechanism::Mao => {
                RelSub::Rel(ReleaseSub::coherent_store(self.spec.now_serving, new_value))
            }
            _ => RelSub::Rel(ReleaseSub::new(
                self.spec.mech,
                self.spec.now_serving,
                new_value,
            )),
        }
    }
}

impl Kernel for TicketLockKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        loop {
            match &mut self.state {
                LockPhase::StartRound => {
                    if self.r > self.spec.rounds {
                        self.state = LockPhase::Done;
                        continue;
                    }
                    self.state = LockPhase::ThinkWait;
                    return Op::Delay {
                        cycles: self.think[(self.r - 1) as usize],
                    };
                }
                LockPhase::ThinkWait => {
                    self.state = LockPhase::Acquire(self.acquire_sub());
                    last = None;
                }
                LockPhase::Acquire(fa) => match fa.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(ticket) => {
                        self.my_ticket = ticket;
                        self.state = LockPhase::Waiting(self.wait_sub());
                    }
                },
                LockPhase::Waiting(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = LockPhase::AcqMarkWait;
                        return Op::Mark {
                            id: acquire_mark(self.r),
                        };
                    }
                },
                LockPhase::AcqMarkWait => {
                    if let Some(c) = &self.check {
                        self.state = LockPhase::ScribbleWait;
                        return Op::Store {
                            addr: c.addr,
                            value: self.tag,
                        };
                    }
                    self.state = LockPhase::CsWait;
                    return Op::Delay {
                        cycles: self.spec.cs_cycles,
                    };
                }
                LockPhase::ScribbleWait => {
                    self.state = LockPhase::CsWait;
                    return Op::Delay {
                        cycles: self.spec.cs_cycles,
                    };
                }
                LockPhase::CsWait => {
                    if let Some(c) = &self.check {
                        self.state = LockPhase::VerifyWait;
                        return Op::Load { addr: c.addr };
                    }
                    // Release marks record *initiation*: the grant becomes
                    // visible to the next holder while the releaser's own
                    // completion (reply/ack) is still in flight.
                    self.state = LockPhase::RelMarkWait;
                    return Op::Mark {
                        id: release_mark(self.r),
                    };
                }
                LockPhase::VerifyWait => {
                    if let Some(Outcome::Value(v)) = last.take() {
                        let c = self.check.as_ref().expect("verify without check");
                        if v != self.tag {
                            c.violations.set(c.violations.get() + 1);
                        }
                    }
                    self.state = LockPhase::RelMarkWait;
                    return Op::Mark {
                        id: release_mark(self.r),
                    };
                }
                LockPhase::ResetWait => unreachable!("ticket locks have no reset write"),
                LockPhase::RelMarkWait => {
                    self.state = LockPhase::Release(self.release_sub());
                    last = None;
                }
                LockPhase::Release(rel) => match rel.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.r += 1;
                        self.state = LockPhase::StartRound;
                        last = None;
                    }
                },
                LockPhase::Done => return Op::Done,
            }
        }
    }
}

/// Shared description of an Anderson array-based queuing lock.
#[derive(Clone, Debug)]
pub struct ArrayLockSpec {
    /// Mechanism implementing fetch-and-add / release / spin.
    pub mech: Mechanism,
    /// The sequencer handing out slots.
    pub sequencer: Addr,
    /// Per-slot grant-count flags, each in its own block.
    pub flags: Vec<Addr>,
    /// Active-message service counter for the sequencer.
    pub ctr_id: u16,
    /// Acquisitions each participant performs.
    pub rounds: u32,
    /// Critical-section length in cycles.
    pub cs_cycles: Cycle,
}

impl ArrayLockSpec {
    /// Allocate an array lock with `slots` flags, all homed on `home`
    /// (as a contiguously-allocated flag array would be).
    pub fn build(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        home: NodeId,
        slots: u16,
        rounds: u32,
        cs_cycles: Cycle,
    ) -> Self {
        assert!(slots >= 2);
        ArrayLockSpec {
            mech,
            // Only the sequencer needs atomicity (uncached under MAO);
            // flags are coherent words, one per block.
            sequencer: alloc.counter_for(mech, home),
            flags: (0..slots).map(|_| alloc.word(home)).collect(),
            ctr_id: alloc.ctr(home),
            rounds,
            cs_cycles,
        }
    }

    /// Program initialization: slot 0 starts granted (the lock is free).
    /// Must be applied to the machine before the run.
    pub fn init<T: amo_obs::Tracer, P: amo_obs::HostProf>(
        &self,
        machine: &mut amo_sim::Machine<T, P>,
    ) {
        machine.init_word(self.flags[0], 1);
    }

    fn slot(&self, ticket: Word) -> usize {
        (ticket % self.flags.len() as Word) as usize
    }

    fn grant(&self, ticket: Word) -> Word {
        ticket / self.flags.len() as Word + 1
    }
}

/// One participant's array-lock benchmark kernel.
pub struct ArrayLockKernel {
    spec: ArrayLockSpec,
    think: Vec<Cycle>,
    tag: Word,
    check: Option<ExclusionCheck>,
    r: u32,
    my_ticket: Word,
    state: LockPhase,
}

impl ArrayLockKernel {
    /// Build the kernel (see [`TicketLockKernel::new`]).
    pub fn new(
        spec: ArrayLockSpec,
        think: Vec<Cycle>,
        tag: Word,
        check: Option<ExclusionCheck>,
    ) -> Self {
        assert_eq!(think.len(), spec.rounds as usize);
        ArrayLockKernel {
            spec,
            think,
            tag,
            check,
            r: 1,
            my_ticket: 0,
            state: LockPhase::StartRound,
        }
    }

    fn wait_sub(&self) -> WaitSub {
        let slot = self.spec.slot(self.my_ticket);
        let grant = self.spec.grant(self.my_ticket);
        WaitSub::Spin(SpinSub::coherent(
            self.spec.flags[slot],
            SpinPred::Ge(grant),
        ))
    }

    fn release_sub(&self) -> RelSub {
        let next = self.my_ticket + 1;
        let slot = self.spec.slot(next);
        let addr = self.spec.flags[slot];
        let grant = self.spec.grant(next);
        // Flags are coherent for every mechanism (the array lock's whole
        // point is local spinning); MAO and ActMsg release with ordinary
        // stores, AMO pushes.
        match self.spec.mech {
            Mechanism::Mao | Mechanism::ActMsg => {
                RelSub::Rel(ReleaseSub::coherent_store(addr, grant))
            }
            _ => RelSub::Rel(ReleaseSub::new(self.spec.mech, addr, grant)),
        }
    }

    /// Anderson's release performs a second write: reset your own slot
    /// to "must wait" before granting the next. With cumulative grant
    /// counts the value is semantically inert, but the coherence traffic
    /// and latency it costs are exactly the original algorithm's. AMO
    /// recodings drop it.
    fn reset_op(&self) -> Op {
        let slot = self.spec.slot(self.my_ticket);
        Op::Store {
            addr: self.spec.flags[slot],
            value: self.spec.grant(self.my_ticket),
        }
    }
}

impl Kernel for ArrayLockKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        loop {
            match &mut self.state {
                LockPhase::StartRound => {
                    if self.r > self.spec.rounds {
                        self.state = LockPhase::Done;
                        continue;
                    }
                    self.state = LockPhase::ThinkWait;
                    return Op::Delay {
                        cycles: self.think[(self.r - 1) as usize],
                    };
                }
                LockPhase::ThinkWait => {
                    self.state = LockPhase::Acquire(AcqSub::Fa(FetchAddSub::new(
                        self.spec.mech,
                        self.spec.sequencer,
                        1,
                        self.spec.ctr_id,
                    )));
                    last = None;
                }
                LockPhase::Acquire(fa) => match fa.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(ticket) => {
                        self.my_ticket = ticket;
                        self.state = LockPhase::Waiting(self.wait_sub());
                    }
                },
                LockPhase::Waiting(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = LockPhase::AcqMarkWait;
                        return Op::Mark {
                            id: acquire_mark(self.r),
                        };
                    }
                },
                LockPhase::AcqMarkWait => {
                    if let Some(c) = &self.check {
                        self.state = LockPhase::ScribbleWait;
                        return Op::Store {
                            addr: c.addr,
                            value: self.tag,
                        };
                    }
                    self.state = LockPhase::CsWait;
                    return Op::Delay {
                        cycles: self.spec.cs_cycles,
                    };
                }
                LockPhase::ScribbleWait => {
                    self.state = LockPhase::CsWait;
                    return Op::Delay {
                        cycles: self.spec.cs_cycles,
                    };
                }
                LockPhase::CsWait => {
                    if let Some(c) = &self.check {
                        self.state = LockPhase::VerifyWait;
                        return Op::Load { addr: c.addr };
                    }
                    if self.spec.mech != Mechanism::Amo {
                        self.state = LockPhase::ResetWait;
                        return self.reset_op();
                    }
                    self.state = LockPhase::RelMarkWait;
                    return Op::Mark {
                        id: release_mark(self.r),
                    };
                }
                LockPhase::VerifyWait => {
                    if let Some(Outcome::Value(v)) = last.take() {
                        let c = self.check.as_ref().expect("verify without check");
                        if v != self.tag {
                            c.violations.set(c.violations.get() + 1);
                        }
                    }
                    if self.spec.mech != Mechanism::Amo {
                        self.state = LockPhase::ResetWait;
                        return self.reset_op();
                    }
                    self.state = LockPhase::RelMarkWait;
                    return Op::Mark {
                        id: release_mark(self.r),
                    };
                }
                LockPhase::ResetWait => {
                    self.state = LockPhase::RelMarkWait;
                    return Op::Mark {
                        id: release_mark(self.r),
                    };
                }
                LockPhase::RelMarkWait => {
                    self.state = LockPhase::Release(self.release_sub());
                    last = None;
                }
                LockPhase::Release(rel) => match rel.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.r += 1;
                        self.state = LockPhase::StartRound;
                        last = None;
                    }
                },
                LockPhase::Done => return Op::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::Machine;
    use amo_types::{ProcId, SystemConfig};

    fn run_ticket(mech: Mechanism, procs: u16, rounds: u32) -> (Machine, u64) {
        let cfg = SystemConfig::with_procs(procs);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = TicketLockSpec::build(&mut alloc, mech, NodeId(0), rounds, 200);
        let check = ExclusionCheck {
            addr: alloc.word(NodeId(0)),
            violations: Rc::new(Cell::new(0)),
        };
        for p in 0..procs {
            let think: Vec<Cycle> = (0..rounds)
                .map(|r| 100 + (p as u64 * 41 + r as u64 * 17) % 500)
                .collect();
            machine.install_kernel(
                ProcId(p),
                Box::new(TicketLockKernel::new(
                    spec,
                    think,
                    p as Word + 1,
                    Some(check.clone()),
                )),
                0,
            );
        }
        let res = machine.run(2_000_000_000);
        assert!(res.all_finished, "{mech:?}: {:?}", res.finished);
        assert_eq!(
            check.violations.get(),
            0,
            "{mech:?} violated mutual exclusion"
        );
        (machine, res.last_finish())
    }

    fn run_array(mech: Mechanism, procs: u16, rounds: u32) -> (Machine, u64) {
        let cfg = SystemConfig::with_procs(procs);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = ArrayLockSpec::build(&mut alloc, mech, NodeId(0), procs, rounds, 200);
        spec.init(&mut machine);
        let check = ExclusionCheck {
            addr: alloc.word(NodeId(0)),
            violations: Rc::new(Cell::new(0)),
        };
        for p in 0..procs {
            let think: Vec<Cycle> = (0..rounds)
                .map(|r| 100 + (p as u64 * 43 + r as u64 * 19) % 500)
                .collect();
            machine.install_kernel(
                ProcId(p),
                Box::new(ArrayLockKernel::new(
                    spec.clone(),
                    think,
                    p as Word + 1,
                    Some(check.clone()),
                )),
                0,
            );
        }
        let res = machine.run(2_000_000_000);
        assert!(res.all_finished, "{mech:?}: {:?}", res.finished);
        assert_eq!(
            check.violations.get(),
            0,
            "{mech:?} violated mutual exclusion"
        );
        (machine, res.last_finish())
    }

    #[test]
    fn ticket_lock_mutual_exclusion_all_mechanisms() {
        for mech in Mechanism::ALL {
            run_ticket(mech, 4, 3);
        }
    }

    #[test]
    fn array_lock_mutual_exclusion_all_mechanisms() {
        for mech in Mechanism::ALL {
            run_array(mech, 4, 3);
        }
    }

    #[test]
    fn ticket_lock_grants_fifo() {
        // With a coherent ticket lock, acquisition order must follow
        // ticket order; verify via marks: acquire times are strictly
        // ordered and never overlap with the previous holder's release.
        let (machine, _) = run_ticket(Mechanism::Atomic, 4, 3);
        let mut acquires: Vec<(u64, ProcId)> = machine
            .marks()
            .iter()
            .filter(|(_, id, _)| id % 2 == 0 && *id >= 2)
            .map(|&(p, _, t)| (t, p))
            .collect();
        let mut releases: Vec<u64> = machine
            .marks()
            .iter()
            .filter(|(_, id, _)| id % 2 == 1 && *id >= 3)
            .map(|&(_, _, t)| t)
            .collect();
        acquires.sort_unstable();
        releases.sort_unstable();
        assert_eq!(acquires.len(), releases.len());
        // k-th acquire happens at/after (k-1)-th release.
        for k in 1..acquires.len() {
            assert!(
                acquires[k].0 >= releases[k - 1],
                "overlap: acquire {} before release {}",
                acquires[k].0,
                releases[k - 1]
            );
        }
    }

    #[test]
    fn amo_ticket_lock_beats_llsc_at_8() {
        let (_, amo) = run_ticket(Mechanism::Amo, 8, 4);
        let (_, llsc) = run_ticket(Mechanism::LlSc, 8, 4);
        assert!(amo < llsc, "AMO {amo} should beat LL/SC {llsc}");
    }

    #[test]
    fn array_lock_slot_arithmetic() {
        let mut alloc = VarAlloc::new();
        let spec = ArrayLockSpec::build(&mut alloc, Mechanism::Atomic, NodeId(0), 4, 1, 100);
        assert_eq!(spec.slot(0), 0);
        assert_eq!(spec.slot(5), 1);
        assert_eq!(spec.grant(0), 1);
        assert_eq!(spec.grant(4), 2);
        assert_eq!(spec.grant(5), 2);
        // Flags are in distinct blocks.
        assert_ne!(spec.flags[0].block(128), spec.flags[1].block(128));
    }
}
