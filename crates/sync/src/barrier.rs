//! Centralized barriers (paper Fig. 3).
//!
//! All styles use a *cumulative* count: episode `e` completes when the
//! counter reaches `e × P`, so the counter never needs a racy reset and
//! the AMO test value is simply that target.
//!
//! * [`BarrierStyle::Naive`] — Fig. 3(a): spin directly on the barrier
//!   variable. Efficient only with AMOs (word updates wake the
//!   spinners); with conventional mechanisms the spinners' reloads fight
//!   the increments.
//! * [`BarrierStyle::SpinVariable`] — Fig. 3(b): the last arriver
//!   releases a separate spin variable, eliminating false sharing
//!   between spins and increments at the cost of one more write. This is
//!   the paper's "highly optimized conventional barrier" baseline.
//!
//! Per mechanism, the default style follows the paper: AMO uses the
//! naive coding (Fig. 3(c)); everything else uses the spin variable.

use crate::layout::cumulative_target;
use crate::mechanism::{BackoffCfg, FetchAddSub, Mechanism, ReleaseSub, SpinSub, Step};
use crate::VarAlloc;
use amo_cpu::{Kernel, Op, Outcome};
use amo_types::{Addr, Cycle, NodeId, Publish, SpinPred, Word};

/// Which word the processors spin on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BarrierStyle {
    /// Spin on the barrier counter itself (Fig. 3(a)/(c)).
    Naive,
    /// Last arriver releases a separate spin variable (Fig. 3(b)).
    SpinVariable,
    /// Ablation of the delayed update (Sec. 4.2.1): like `Naive`, but an
    /// AMO barrier pushes a word update after *every* increment
    /// (`amo.fetchadd` without a test value) instead of only at the
    /// target count. Quantifies what the test-value mechanism buys.
    /// Non-AMO mechanisms treat this exactly like `Naive`.
    EagerUpdates,
    /// The textbook sense-reversing formulation: the counter is *reset*
    /// by the last arriver each episode (instead of counting
    /// cumulatively) before the release flag advances. Functionally
    /// equivalent to `SpinVariable`; the reset costs one more coherent
    /// store per episode — and under AMO it exercises the
    /// exclusive-grant path that flushes the AMU's dirty count.
    SenseReversing,
}

/// Shared description of one centralized barrier.
#[derive(Clone, Copy, Debug)]
pub struct BarrierSpec {
    /// Mechanism implementing the atomic increment.
    pub mech: Mechanism,
    /// Spin placement.
    pub style: BarrierStyle,
    /// Number of participating processors (0..P take part).
    pub participants: u16,
    /// Barrier episodes each participant executes.
    pub episodes: u32,
    /// The barrier counter (uncached for MAO).
    pub counter: Addr,
    /// The separate spin variable (used by `SpinVariable` style).
    pub spin: Addr,
    /// Active-message service counter id at the home processor.
    pub ctr_id: u16,
}

impl BarrierSpec {
    /// Allocate a barrier homed on `home`, with the paper's default
    /// style for the mechanism.
    pub fn build(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        home: NodeId,
        participants: u16,
        episodes: u32,
    ) -> Self {
        let style = match mech {
            Mechanism::Amo => BarrierStyle::Naive,
            _ => BarrierStyle::SpinVariable,
        };
        Self::build_styled(alloc, mech, style, home, participants, episodes)
    }

    /// Allocate a barrier with an explicit style (ablations).
    pub fn build_styled(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        style: BarrierStyle,
        home: NodeId,
        participants: u16,
        episodes: u32,
    ) -> Self {
        BarrierSpec {
            mech,
            style,
            participants,
            episodes,
            counter: alloc.counter_for(mech, home),
            spin: alloc.word(home),
            ctr_id: alloc.ctr(home),
        }
    }

    /// Mark id recorded when a processor enters episode `e` (1-based).
    pub fn enter_mark(e: u32) -> u32 {
        e * 2
    }

    /// Mark id recorded when a processor exits episode `e`.
    pub fn exit_mark(e: u32) -> u32 {
        e * 2 + 1
    }
}

#[derive(Debug)]
enum BState {
    StartEpisode,
    WorkWait,
    EnterMarkWait,
    FaRun(FetchAddSub),
    /// Sense-reversing only: the last arriver zeroes the counter before
    /// releasing.
    ResetWait,
    RelRun(ReleaseSub),
    SpinRun(SpinSub),
    ExitMarkWait,
    Done,
}

/// One participant's barrier kernel.
///
/// ```
/// use amo_sim::Machine;
/// use amo_sync::{BarrierKernel, BarrierSpec, Mechanism, VarAlloc};
/// use amo_types::{NodeId, ProcId, SystemConfig};
///
/// let mut machine = Machine::new(SystemConfig::with_procs(4));
/// let mut alloc = VarAlloc::new();
/// let spec = BarrierSpec::build(&mut alloc, Mechanism::Amo, NodeId(0), 4, 2);
/// for p in 0..4 {
///     let work = vec![100 * (p as u64 + 1); 2]; // per-episode skew
///     machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
/// }
/// assert!(machine.run(10_000_000).all_finished);
/// assert_eq!(machine.stats().puts, 2, "one delayed put per episode");
/// ```
pub struct BarrierKernel {
    spec: BarrierSpec,
    /// Pre-episode local work (arrival skew), one entry per episode.
    work: Vec<Cycle>,
    e: u32,
    state: BState,
}

impl BarrierKernel {
    /// Build the kernel for one participant. `work[i]` is the local
    /// computation time before episode `i+1`.
    pub fn new(spec: BarrierSpec, work: Vec<Cycle>) -> Self {
        assert_eq!(
            work.len(),
            spec.episodes as usize,
            "one work entry per episode"
        );
        BarrierKernel {
            spec,
            work,
            e: 1,
            state: BState::StartEpisode,
        }
    }

    fn make_fa(&self) -> FetchAddSub {
        let s = &self.spec;
        let target = cumulative_target(self.e, s.participants);
        let fa = FetchAddSub::new(s.mech, s.counter, 1, s.ctr_id);
        match (s.mech, s.style) {
            // The AMO barrier's delayed put fires at the target count.
            (Mechanism::Amo, BarrierStyle::Naive) => fa.with_test(target),
            // Sense-reversing counters reset each episode; the AMU cache
            // just accumulates (dirty) until the reset flushes it.
            (Mechanism::Amo, BarrierStyle::SenseReversing) => fa.as_inc(),
            (Mechanism::ActMsg, BarrierStyle::SenseReversing) => {
                // The handler publishes the release at the per-episode
                // target and resets its service counter itself — the
                // closest active-message analogue.
                fa.with_publish(Publish {
                    addr: s.spin,
                    when_count: Some(s.participants as Word),
                    value: Some(self.e as Word),
                    reset: true,
                })
            }
            // Eager ablation: push after every increment. `FetchAddSub`
            // emits amo.fetchadd (no test) which puts unconditionally.
            (Mechanism::Amo, BarrierStyle::EagerUpdates) => fa,
            // An AMO driving a separate spin variable doesn't test; the
            // release below pushes the spin variable instead.
            (Mechanism::Amo, BarrierStyle::SpinVariable) => fa,
            // The active-message handler publishes the release when the
            // count reaches the target.
            (Mechanism::ActMsg, _) => fa.with_publish(Publish {
                addr: s.spin,
                when_count: Some(target),
                value: Some(self.e as Word),
                reset: false,
            }),
            _ => fa,
        }
    }

    fn after_increment(&self, old: Word) -> BState {
        let s = &self.spec;
        let target = cumulative_target(self.e, s.participants);
        match s.style {
            BarrierStyle::Naive | BarrierStyle::EagerUpdates => {
                // An active-message "counter" is a service counter at the
                // home processor, not a coherent word — there is nothing
                // to spin on directly, so ActMsg always uses the
                // handler-published spin variable regardless of style.
                if s.mech == Mechanism::ActMsg {
                    return BState::SpinRun(SpinSub::coherent(
                        s.spin,
                        SpinPred::Ge(self.e as Word),
                    ));
                }
                // Everyone spins on the counter itself.
                if s.mech == Mechanism::Mao {
                    BState::SpinRun(SpinSub::uncached(
                        s.counter,
                        SpinPred::Ge(target),
                        BackoffCfg {
                            target,
                            ..BackoffCfg::default()
                        },
                    ))
                } else {
                    BState::SpinRun(SpinSub::coherent(s.counter, SpinPred::Ge(target)))
                }
            }
            BarrierStyle::SenseReversing => {
                let release_val = self.e as Word;
                if s.mech == Mechanism::ActMsg {
                    // The handler resets and publishes; everyone spins.
                    return BState::SpinRun(SpinSub::coherent(s.spin, SpinPred::Ge(release_val)));
                }
                // Per-episode (non-cumulative) target: the counter was
                // reset to zero by the previous episode's last arriver.
                if old + 1 == s.participants as Word {
                    BState::ResetWait
                } else {
                    BState::SpinRun(SpinSub::coherent(s.spin, SpinPred::Ge(release_val)))
                }
            }
            BarrierStyle::SpinVariable => {
                let release_val = self.e as Word;
                if s.mech == Mechanism::ActMsg {
                    // The handler publishes; everyone (including the last
                    // arriver) just spins.
                    return BState::SpinRun(SpinSub::coherent(s.spin, SpinPred::Ge(release_val)));
                }
                if old + 1 == target {
                    // The spin variable is always coherent — under MAO
                    // this is the paper's "optimized" variant: the MC
                    // counts arrivals, the release is an ordinary store.
                    let rel = if s.mech == Mechanism::Mao {
                        ReleaseSub::coherent_store(s.spin, release_val)
                    } else {
                        ReleaseSub::new(s.mech, s.spin, release_val)
                    };
                    BState::RelRun(rel)
                } else {
                    BState::SpinRun(SpinSub::coherent(s.spin, SpinPred::Ge(release_val)))
                }
            }
        }
    }
}

impl Kernel for BarrierKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        loop {
            match &mut self.state {
                BState::StartEpisode => {
                    if self.e > self.spec.episodes {
                        self.state = BState::Done;
                        continue;
                    }
                    self.state = BState::WorkWait;
                    return Op::Delay {
                        cycles: self.work[(self.e - 1) as usize],
                    };
                }
                BState::WorkWait => {
                    self.state = BState::EnterMarkWait;
                    return Op::Mark {
                        id: BarrierSpec::enter_mark(self.e),
                    };
                }
                BState::EnterMarkWait => {
                    self.state = BState::FaRun(self.make_fa());
                    last = None;
                }
                BState::FaRun(fa) => match fa.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(old) => {
                        self.state = self.after_increment(old);
                        if matches!(self.state, BState::ResetWait) {
                            // Zero the counter before releasing. MAO
                            // counters live in uncached space; coherent
                            // ones are reset with an ordinary store whose
                            // exclusive grant flushes any dirty AMU copy.
                            return if self.spec.mech == Mechanism::Mao {
                                Op::UncachedStore {
                                    addr: self.spec.counter,
                                    value: 0,
                                }
                            } else {
                                Op::Store {
                                    addr: self.spec.counter,
                                    value: 0,
                                }
                            };
                        }
                    }
                },
                BState::ResetWait => {
                    let rel = if self.spec.mech == Mechanism::Mao {
                        ReleaseSub::coherent_store(self.spec.spin, self.e as Word)
                    } else {
                        ReleaseSub::new(self.spec.mech, self.spec.spin, self.e as Word)
                    };
                    self.state = BState::RelRun(rel);
                    last = None;
                }
                BState::RelRun(rel) => match rel.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = BState::ExitMarkWait;
                        return Op::Mark {
                            id: BarrierSpec::exit_mark(self.e),
                        };
                    }
                },
                BState::SpinRun(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = BState::ExitMarkWait;
                        return Op::Mark {
                            id: BarrierSpec::exit_mark(self.e),
                        };
                    }
                },
                BState::ExitMarkWait => {
                    self.e += 1;
                    self.state = BState::StartEpisode;
                    last = None;
                }
                BState::Done => return Op::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::Machine;
    use amo_types::{ProcId, SystemConfig};

    /// Run one barrier configuration to completion on a small machine
    /// and sanity-check it synchronized: for every episode, every
    /// processor's exit is at or after every processor's enter.
    fn run_barrier(mech: Mechanism, procs: u16, episodes: u32) -> (Machine, u64) {
        let cfg = SystemConfig::with_procs(procs);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = BarrierSpec::build(&mut alloc, mech, NodeId(0), procs, episodes);
        for p in 0..procs {
            let work: Vec<Cycle> = (0..episodes)
                .map(|e| 100 + (p as u64 * 37 + e as u64 * 13) % 400)
                .collect();
            machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
        }
        let res = machine.run(500_000_000);
        assert!(res.all_finished, "{mech:?}: {:?}", res.finished);
        let end = res.last_finish();
        // Barrier semantics: within each episode, no exit before every
        // enter.
        for e in 1..=episodes {
            let enters: Vec<Cycle> = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::enter_mark(e))
                .map(|&(_, _, t)| t)
                .collect();
            let exits: Vec<Cycle> = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::exit_mark(e))
                .map(|&(_, _, t)| t)
                .collect();
            assert_eq!(enters.len(), procs as usize);
            assert_eq!(exits.len(), procs as usize);
            let last_enter = *enters.iter().max().unwrap();
            let first_exit = *exits.iter().min().unwrap();
            assert!(
                first_exit >= last_enter,
                "{mech:?} episode {e}: exit {first_exit} before last enter {last_enter}"
            );
        }
        (machine, end)
    }

    #[test]
    fn llsc_barrier_synchronizes() {
        let (m, _) = run_barrier(Mechanism::LlSc, 4, 3);
        assert!(m.stats().ll_issued >= 12);
        assert!(m.stats().sc_successes == 12);
    }

    #[test]
    fn atomic_barrier_synchronizes() {
        let (m, _) = run_barrier(Mechanism::Atomic, 4, 3);
        assert_eq!(m.stats().atomic_ops, 12);
    }

    #[test]
    fn actmsg_barrier_synchronizes() {
        let (m, _) = run_barrier(Mechanism::ActMsg, 4, 3);
        assert_eq!(m.stats().handlers_run, 12);
    }

    #[test]
    fn mao_barrier_synchronizes() {
        let (m, _) = run_barrier(Mechanism::Mao, 4, 3);
        assert_eq!(m.stats().mao_ops, 12);
    }

    #[test]
    fn amo_barrier_synchronizes_with_one_put_per_episode() {
        let (m, _) = run_barrier(Mechanism::Amo, 4, 3);
        assert_eq!(m.stats().amo_ops, 12);
        assert_eq!(m.stats().puts, 3, "one delayed put per episode");
        assert_eq!(
            m.stats().invalidations_sent,
            0,
            "AMO barrier never invalidates"
        );
    }

    #[test]
    fn amo_barrier_is_fastest_at_8_procs() {
        let times: Vec<(Mechanism, u64)> = Mechanism::ALL
            .iter()
            .map(|&mech| (mech, run_barrier(mech, 8, 4).1))
            .collect();
        let amo = times.iter().find(|(m, _)| *m == Mechanism::Amo).unwrap().1;
        for &(mech, t) in &times {
            if mech != Mechanism::Amo {
                assert!(
                    amo < t,
                    "AMO ({amo}) should beat {mech:?} ({t}); all: {times:?}"
                );
            }
        }
    }

    #[test]
    fn every_style_synchronizes_every_mechanism() {
        for style in [
            BarrierStyle::Naive,
            BarrierStyle::SpinVariable,
            BarrierStyle::EagerUpdates,
            BarrierStyle::SenseReversing,
        ] {
            for mech in Mechanism::ALL {
                let cfg = SystemConfig::with_procs(4);
                let mut machine = Machine::new(cfg);
                let mut alloc = VarAlloc::new();
                let spec = BarrierSpec::build_styled(&mut alloc, mech, style, NodeId(0), 4, 2);
                for p in 0..4u16 {
                    let work: Vec<Cycle> = (0..2)
                        .map(|e| 100 + (p as u64 * 37 + e * 13) % 400)
                        .collect();
                    machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
                }
                let res = machine.run(500_000_000);
                assert!(res.all_finished, "{mech:?} {style:?}: {:?}", res.finished);
            }
        }
    }

    #[test]
    fn sense_reversing_synchronizes_all_mechanisms() {
        for mech in Mechanism::ALL {
            let cfg = SystemConfig::with_procs(4);
            let mut machine = Machine::new(cfg);
            let mut alloc = VarAlloc::new();
            let spec = BarrierSpec::build_styled(
                &mut alloc,
                mech,
                BarrierStyle::SenseReversing,
                NodeId(0),
                4,
                3,
            );
            for p in 0..4u16 {
                let work: Vec<Cycle> = (0..3)
                    .map(|e| 100 + (p as u64 * 37 + e * 13) % 400)
                    .collect();
                machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
            }
            let res = machine.run(500_000_000);
            assert!(res.all_finished, "{mech:?}: {:?}", res.finished);
            for e in 1..=3u32 {
                let last_enter = machine
                    .marks()
                    .iter()
                    .filter(|(_, id, _)| *id == BarrierSpec::enter_mark(e))
                    .map(|&(_, _, t)| t)
                    .max()
                    .unwrap();
                let first_exit = machine
                    .marks()
                    .iter()
                    .filter(|(_, id, _)| *id == BarrierSpec::exit_mark(e))
                    .map(|&(_, _, t)| t)
                    .min()
                    .unwrap();
                assert!(first_exit >= last_enter, "{mech:?} episode {e}");
            }
            // Completing episodes 2 and 3 *is* the reset working: with a
            // stale counter the per-episode target P would never be hit
            // again. (Home memory may lag the reset — the zero lives in
            // the resetter's Modified line.)
        }
    }

    #[test]
    fn sense_reversing_amo_flushes_the_dirty_amu_count() {
        // The AMO sense-reversing barrier's counter accumulates dirty in
        // the AMU; the reset's exclusive grant must flush it. Episode 2
        // would count wrong otherwise, so finishing IS the proof; check
        // the flush-visible effect explicitly too.
        let cfg = SystemConfig::with_procs(4);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = BarrierSpec::build_styled(
            &mut alloc,
            Mechanism::Amo,
            BarrierStyle::SenseReversing,
            NodeId(0),
            4,
            2,
        );
        for p in 0..4u16 {
            machine.install_kernel(
                ProcId(p),
                Box::new(BarrierKernel::new(spec, vec![100 + p as u64 * 50; 2])),
                0,
            );
        }
        let res = machine.run(500_000_000);
        assert!(res.all_finished, "{:?}", res.finished);
        // 8 increments plus 2 pushing releases of the spin variable.
        assert_eq!(machine.stats().amo_ops, 10);
        assert_eq!(machine.stats().puts, 2, "only the releases push");
        // Each episode's reset store grabbed exclusive ownership of the
        // counter block, which must have flushed the AMU's dirty count.
        assert_eq!(machine.stats().amu_evictions, 0);
        assert!(machine.stats().amu_misses >= 2, "post-flush AMOs re-fetch");
    }

    #[test]
    fn naive_llsc_barrier_also_works_but_slower() {
        let cfg = SystemConfig::with_procs(4);
        let run = |style| {
            let mut machine = Machine::new(cfg);
            let mut alloc = VarAlloc::new();
            let spec =
                BarrierSpec::build_styled(&mut alloc, Mechanism::LlSc, style, NodeId(0), 4, 3);
            for p in 0..4u16 {
                let work = vec![200; 3];
                machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
            }
            let res = machine.run(500_000_000);
            assert!(res.all_finished);
            res.last_finish()
        };
        let naive = run(BarrierStyle::Naive);
        let optimized = run(BarrierStyle::SpinVariable);
        // Tiny configs may not show a large gap, but naive must at least
        // not be dramatically faster — it suffers spin/increment
        // interference.
        assert!(
            naive * 2 > optimized,
            "naive {naive} vs optimized {optimized}"
        );
    }
}
