//! Software combining-tree barriers (Yew, Tzeng & Lawrie; paper
//! Sec. 4.2.2).
//!
//! A two-level tree, as in the paper: processors are partitioned into
//! groups of `branching` leaves; the last processor to arrive in a group
//! increments the root counter; the last to arrive at the root releases
//! the root, and each group leader then releases its group. Group
//! counters are distributed round-robin across home nodes, which is the
//! whole point of the tree — spreading the hot spot.
//!
//! Counts are cumulative across episodes (episode `e` completes a group
//! of size `s` at `e × s`), so no resets are needed.

use crate::layout::cumulative_target;
use crate::mechanism::{FetchAddSub, Mechanism, ReleaseSub, SpinSub, Step};
use crate::{BarrierSpec, VarAlloc};
use amo_cpu::{Kernel, Op, Outcome};
use amo_types::{Addr, Cycle, NodeId, SpinPred, Word};

/// One group's variables.
#[derive(Clone, Copy, Debug)]
pub struct GroupSpec {
    /// Arrival counter (uncached for MAO).
    pub counter: Addr,
    /// Release word the group members spin on.
    pub release: Addr,
    /// Active-message service counter id at the group's home.
    pub ctr_id: u16,
    /// Number of processors in this group.
    pub size: u16,
}

/// Shared description of a two-level combining-tree barrier.
#[derive(Clone, Debug)]
pub struct TreeBarrierSpec {
    /// Mechanism implementing the atomic increments.
    pub mech: Mechanism,
    /// Total participating processors.
    pub participants: u16,
    /// Episodes to run.
    pub episodes: u32,
    /// Leaf fan-in (group size); the paper searches the best value.
    pub branching: u16,
    /// Per-group variables.
    pub groups: Vec<GroupSpec>,
    /// Root arrival counter.
    pub root_counter: Addr,
    /// Root release word the group leaders spin on.
    pub root_release: Addr,
    /// Active-message counter id for the root.
    pub root_ctr_id: u16,
}

impl TreeBarrierSpec {
    /// Build a tree with the given branching factor; group variables are
    /// homed round-robin across the machine's nodes, the root on node 0.
    pub fn build(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        participants: u16,
        episodes: u32,
        branching: u16,
        num_nodes: u16,
    ) -> Self {
        assert!(branching >= 2, "tree needs fan-in of at least 2");
        assert!(
            participants > branching,
            "tree smaller than one group is pointless"
        );
        let num_groups = participants.div_ceil(branching);
        let groups = (0..num_groups)
            .map(|g| {
                let home = NodeId(g % num_nodes);
                let size = branching.min(participants - g * branching);
                GroupSpec {
                    counter: alloc.counter_for(mech, home),
                    release: alloc.word(home),
                    ctr_id: alloc.ctr(home),
                    size,
                }
            })
            .collect();
        TreeBarrierSpec {
            mech,
            participants,
            episodes,
            branching,
            groups,
            root_counter: alloc.counter_for(mech, NodeId(0)),
            root_release: alloc.word(NodeId(0)),
            root_ctr_id: alloc.ctr(NodeId(0)),
        }
    }

    /// Group index of processor `p`.
    pub fn group_of(&self, p: u16) -> usize {
        (p / self.branching) as usize
    }

    /// Number of groups (root fan-in).
    pub fn num_groups(&self) -> u16 {
        self.groups.len() as u16
    }
}

#[derive(Debug)]
enum TState {
    StartEpisode,
    WorkWait,
    EnterMarkWait,
    GroupFa(FetchAddSub),
    RootFa(FetchAddSub),
    RootRel(ReleaseSub),
    RootSpin(SpinSub),
    GroupRel(ReleaseSub),
    GroupSpin(SpinSub),
    ExitMarkWait,
    Done,
}

/// One participant's tree-barrier kernel.
pub struct TreeBarrierKernel {
    spec: TreeBarrierSpec,
    group: usize,
    work: Vec<Cycle>,
    e: u32,
    state: TState,
}

impl TreeBarrierKernel {
    /// Build the kernel for participant `p` (its group is derived).
    pub fn new(spec: TreeBarrierSpec, p: u16, work: Vec<Cycle>) -> Self {
        assert_eq!(work.len(), spec.episodes as usize);
        let group = spec.group_of(p);
        TreeBarrierKernel {
            spec,
            group,
            work,
            e: 1,
            state: TState::StartEpisode,
        }
    }

    fn spin_for(&self, addr: Addr, target: Word) -> SpinSub {
        // Releases are always coherent words (even under MAO, the
        // optimized spin-variable discipline applies), so spins are
        // coherent too.
        SpinSub::coherent(addr, SpinPred::Ge(target))
    }

    fn release_for(&self, addr: Addr, new_value: Word) -> ReleaseSub {
        // Tree release words are coherent even under MAO (optimized
        // spin-variable discipline), so MAO releases are plain stores.
        if self.spec.mech == Mechanism::Mao {
            ReleaseSub::coherent_store(addr, new_value)
        } else {
            ReleaseSub::new(self.spec.mech, addr, new_value)
        }
    }
}

impl Kernel for TreeBarrierKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        loop {
            let e = self.e;
            let g = &self.spec.groups[self.group];
            match &mut self.state {
                TState::StartEpisode => {
                    if e > self.spec.episodes {
                        self.state = TState::Done;
                        continue;
                    }
                    self.state = TState::WorkWait;
                    return Op::Delay {
                        cycles: self.work[(e - 1) as usize],
                    };
                }
                TState::WorkWait => {
                    self.state = TState::EnterMarkWait;
                    return Op::Mark {
                        id: BarrierSpec::enter_mark(e),
                    };
                }
                TState::EnterMarkWait => {
                    self.state =
                        TState::GroupFa(FetchAddSub::new(self.spec.mech, g.counter, 1, g.ctr_id));
                    last = None;
                }
                TState::GroupFa(fa) => match fa.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(old) => {
                        let target = cumulative_target(e, g.size);
                        if old + 1 == target {
                            // Group leader: climb to the root.
                            self.state = TState::RootFa(FetchAddSub::new(
                                self.spec.mech,
                                self.spec.root_counter,
                                1,
                                self.spec.root_ctr_id,
                            ));
                        } else {
                            self.state = TState::GroupSpin(self.spin_for(g.release, e as Word));
                        }
                    }
                },
                TState::RootFa(fa) => match fa.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(old) => {
                        let target = cumulative_target(e, self.spec.num_groups());
                        if old + 1 == target {
                            self.state = TState::RootRel(
                                self.release_for(self.spec.root_release, e as Word),
                            );
                        } else {
                            self.state =
                                TState::RootSpin(self.spin_for(self.spec.root_release, e as Word));
                        }
                    }
                },
                TState::RootRel(rel) => match rel.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = TState::GroupRel(self.release_for(g.release, e as Word));
                        last = None;
                    }
                },
                TState::RootSpin(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = TState::GroupRel(self.release_for(g.release, e as Word));
                        last = None;
                    }
                },
                TState::GroupRel(rel) => match rel.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = TState::ExitMarkWait;
                        return Op::Mark {
                            id: BarrierSpec::exit_mark(e),
                        };
                    }
                },
                TState::GroupSpin(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = TState::ExitMarkWait;
                        return Op::Mark {
                            id: BarrierSpec::exit_mark(e),
                        };
                    }
                },
                TState::ExitMarkWait => {
                    self.e += 1;
                    self.state = TState::StartEpisode;
                    last = None;
                }
                TState::Done => return Op::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::Machine;
    use amo_types::{ProcId, SystemConfig};

    fn run_tree(mech: Mechanism, procs: u16, branching: u16, episodes: u32) -> Machine {
        let cfg = SystemConfig::with_procs(procs);
        let nodes = cfg.num_nodes();
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = TreeBarrierSpec::build(&mut alloc, mech, procs, episodes, branching, nodes);
        for p in 0..procs {
            let work: Vec<Cycle> = (0..episodes)
                .map(|e| 100 + (p as u64 * 31 + e as u64 * 7) % 300)
                .collect();
            machine.install_kernel(
                ProcId(p),
                Box::new(TreeBarrierKernel::new(spec.clone(), p, work)),
                0,
            );
        }
        let res = machine.run(1_000_000_000);
        assert!(res.all_finished, "{mech:?}: {:?}", res.finished);
        // Barrier property per episode.
        for e in 1..=episodes {
            let last_enter = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::enter_mark(e))
                .map(|&(_, _, t)| t)
                .max()
                .unwrap();
            let first_exit = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::exit_mark(e))
                .map(|&(_, _, t)| t)
                .min()
                .unwrap();
            assert!(first_exit >= last_enter, "{mech:?} episode {e} violated");
        }
        machine
    }

    #[test]
    fn tree_barrier_all_mechanisms_8_procs() {
        for mech in Mechanism::ALL {
            run_tree(mech, 8, 4, 3);
        }
    }

    #[test]
    fn uneven_group_sizes_work() {
        // 10 procs with branching 4: groups of 4, 4, 2.
        run_tree(Mechanism::Atomic, 10, 4, 2);
    }

    #[test]
    fn group_assignment() {
        let mut alloc = VarAlloc::new();
        let spec = TreeBarrierSpec::build(&mut alloc, Mechanism::LlSc, 16, 1, 4, 8);
        assert_eq!(spec.num_groups(), 4);
        assert_eq!(spec.group_of(0), 0);
        assert_eq!(spec.group_of(3), 0);
        assert_eq!(spec.group_of(4), 1);
        assert_eq!(spec.group_of(15), 3);
        assert_eq!(spec.groups[3].size, 4);
        // Group homes are distributed.
        assert_ne!(spec.groups[0].counter.home(), spec.groups[1].counter.home());
    }
}
