//! K-level software combining-tree barriers — the generalization the
//! paper leaves as future work: "determining whether or not tree-based
//! AMO barriers can provide extra benefits on very large-scale systems".
//!
//! The two-level tree of [`crate::tree`] is the paper's evaluated
//! configuration; this module builds arbitrarily deep trees with a
//! uniform branching factor. The last arriver of each group climbs one
//! level; the last arriver at the root starts a downward release wave,
//! with every climber releasing the groups it climbed out of, top-down.
//! Counts are cumulative per episode as everywhere else in this crate.

use crate::barrier::BarrierSpec;
use crate::layout::cumulative_target;
use crate::mechanism::{FetchAddSub, Mechanism, ReleaseSub, SpinSub, Step};
use crate::VarAlloc;
use amo_cpu::{Kernel, Op, Outcome};
use amo_types::{Addr, Cycle, NodeId, SpinPred, Word};

/// One group at one level of the tree.
#[derive(Clone, Copy, Debug)]
pub struct KGroup {
    /// Arrival counter (uncached for MAO).
    pub counter: Addr,
    /// Release word the group's members spin on.
    pub release: Addr,
    /// Active-message service counter id.
    pub ctr_id: u16,
    /// Members of this group (processors at level 0, child groups above).
    pub size: u16,
}

/// Shared description of a k-level combining tree.
#[derive(Clone, Debug)]
pub struct KTreeSpec {
    /// Mechanism implementing the increments.
    pub mech: Mechanism,
    /// Participants.
    pub participants: u16,
    /// Episodes to run.
    pub episodes: u32,
    /// Uniform branching factor.
    pub branching: u16,
    /// `levels[l]` — the groups at level `l`; the last level has one
    /// group (the root).
    pub levels: Vec<Vec<KGroup>>,
}

impl KTreeSpec {
    /// Build a tree of the depth implied by `participants` and
    /// `branching`; group variables distribute round-robin across nodes,
    /// the root lives on node 0.
    pub fn build(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        participants: u16,
        episodes: u32,
        branching: u16,
        num_nodes: u16,
    ) -> Self {
        assert!(branching >= 2);
        assert!(participants > 1);
        let mut levels = Vec::new();
        let mut members = participants;
        loop {
            let num_groups = members.div_ceil(branching);
            let level: Vec<KGroup> = (0..num_groups)
                .map(|g| {
                    let home = if num_groups == 1 {
                        NodeId(0)
                    } else {
                        NodeId((g * 7 + levels.len() as u16 * 3) % num_nodes)
                    };
                    KGroup {
                        counter: alloc.counter_for(mech, home),
                        release: alloc.word(home),
                        ctr_id: alloc.ctr(home),
                        size: branching.min(members - g * branching),
                    }
                })
                .collect();
            levels.push(level);
            if num_groups == 1 {
                break;
            }
            members = num_groups;
        }
        KTreeSpec {
            mech,
            participants,
            episodes,
            branching,
            levels,
        }
    }

    /// Tree depth (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The group index of member `m` at level `l` (member = processor at
    /// level 0, child-group index above).
    pub fn group_at(&self, mut m: u16, l: usize) -> u16 {
        for _ in 0..l {
            m /= self.branching;
        }
        m / self.branching
    }
}

#[derive(Debug)]
enum KState {
    StartEpisode,
    WorkWait,
    EnterMarkWait,
    /// Climbing: increment level `l`'s group counter.
    Climb(FetchAddSub),
    /// Not last at the stop level: wait for its release.
    WaitRelease(SpinSub),
    /// Downward wave: release the group at `descend_level`.
    Descend(ReleaseSub),
    ExitMarkWait,
    Done,
}

/// One participant's k-level tree-barrier kernel.
pub struct KTreeKernel {
    spec: KTreeSpec,
    me: u16,
    work: Vec<Cycle>,
    e: u32,
    /// Level currently being climbed.
    level: usize,
    /// Level the downward wave is currently releasing.
    descend_level: usize,
    state: KState,
}

impl KTreeKernel {
    /// Build the kernel for participant `me`.
    pub fn new(spec: KTreeSpec, me: u16, work: Vec<Cycle>) -> Self {
        assert_eq!(work.len(), spec.episodes as usize);
        KTreeKernel {
            spec,
            me,
            work,
            e: 1,
            level: 0,
            descend_level: 0,
            state: KState::StartEpisode,
        }
    }

    fn group(&self, l: usize) -> &KGroup {
        &self.spec.levels[l][self.spec.group_at(self.me, l) as usize]
    }

    fn climb_sub(&self, l: usize) -> FetchAddSub {
        let g = self.group(l);
        FetchAddSub::new(self.spec.mech, g.counter, 1, g.ctr_id)
    }

    fn release_sub(&self, l: usize) -> ReleaseSub {
        let g = self.group(l);
        if self.spec.mech == Mechanism::Mao {
            ReleaseSub::coherent_store(g.release, self.e as Word)
        } else {
            ReleaseSub::new(self.spec.mech, g.release, self.e as Word)
        }
    }

    fn wait_sub(&self, l: usize) -> SpinSub {
        SpinSub::coherent(self.group(l).release, SpinPred::Ge(self.e as Word))
    }
}

impl Kernel for KTreeKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        loop {
            match &mut self.state {
                KState::StartEpisode => {
                    if self.e > self.spec.episodes {
                        self.state = KState::Done;
                        continue;
                    }
                    self.state = KState::WorkWait;
                    return Op::Delay {
                        cycles: self.work[(self.e - 1) as usize],
                    };
                }
                KState::WorkWait => {
                    self.state = KState::EnterMarkWait;
                    return Op::Mark {
                        id: BarrierSpec::enter_mark(self.e),
                    };
                }
                KState::EnterMarkWait => {
                    self.level = 0;
                    self.state = KState::Climb(self.climb_sub(0));
                    last = None;
                }
                KState::Climb(fa) => match fa.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(old) => {
                        let size = self.group(self.level).size;
                        let target = cumulative_target(self.e, size);
                        let is_last = old + 1 == target;
                        let is_root = self.level + 1 == self.spec.depth();
                        if is_last && !is_root {
                            self.level += 1;
                            self.state = KState::Climb(self.climb_sub(self.level));
                        } else if is_last && is_root {
                            // Root completion: start the downward wave
                            // from the root itself.
                            self.descend_level = self.level;
                            self.state = KState::Descend(self.release_sub(self.level));
                        } else {
                            self.state = KState::WaitRelease(self.wait_sub(self.level));
                        }
                    }
                },
                KState::WaitRelease(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        if self.level == 0 {
                            self.state = KState::ExitMarkWait;
                            return Op::Mark {
                                id: BarrierSpec::exit_mark(self.e),
                            };
                        }
                        // We climbed out of levels 0..self.level; release
                        // them top-down.
                        self.descend_level = self.level - 1;
                        self.state = KState::Descend(self.release_sub(self.level - 1));
                    }
                },
                KState::Descend(rel) => match rel.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        if self.descend_level == 0 {
                            self.state = KState::ExitMarkWait;
                            return Op::Mark {
                                id: BarrierSpec::exit_mark(self.e),
                            };
                        }
                        self.descend_level -= 1;
                        self.state = KState::Descend(self.release_sub(self.descend_level));
                    }
                },
                KState::ExitMarkWait => {
                    self.e += 1;
                    self.state = KState::StartEpisode;
                    last = None;
                }
                KState::Done => return Op::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::Machine;
    use amo_types::{ProcId, SystemConfig};

    fn run_ktree(mech: Mechanism, procs: u16, branching: u16, episodes: u32) -> (Machine, u64) {
        let cfg = SystemConfig::with_procs(procs);
        let nodes = cfg.num_nodes();
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = KTreeSpec::build(&mut alloc, mech, procs, episodes, branching, nodes);
        for p in 0..procs {
            let work: Vec<Cycle> = (0..episodes)
                .map(|e| 100 + (p as u64 * 31 + e as u64 * 7) % 300)
                .collect();
            machine.install_kernel(
                ProcId(p),
                Box::new(KTreeKernel::new(spec.clone(), p, work)),
                0,
            );
        }
        let res = machine.run(4_000_000_000);
        assert!(
            res.all_finished,
            "{mech:?} b={branching}: {:?}",
            res.finished
        );
        for e in 1..=episodes {
            let last_enter = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::enter_mark(e))
                .map(|&(_, _, t)| t)
                .max()
                .unwrap();
            let first_exit = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::exit_mark(e))
                .map(|&(_, _, t)| t)
                .min()
                .unwrap();
            assert!(first_exit >= last_enter, "{mech:?} episode {e} violated");
        }
        (machine, res.last_finish())
    }

    #[test]
    fn depth_and_grouping() {
        let mut alloc = VarAlloc::new();
        let spec = KTreeSpec::build(&mut alloc, Mechanism::LlSc, 16, 1, 2, 8);
        // 16 -> 8 -> 4 -> 2 -> 1 groups: 4 levels of grouping.
        assert_eq!(spec.depth(), 4);
        assert_eq!(spec.levels[0].len(), 8);
        assert_eq!(spec.levels[3].len(), 1);
        assert_eq!(spec.group_at(5, 0), 2);
        assert_eq!(spec.group_at(5, 1), 1);
        assert_eq!(spec.group_at(5, 2), 0);
    }

    #[test]
    fn uneven_participants() {
        let mut alloc = VarAlloc::new();
        let spec = KTreeSpec::build(&mut alloc, Mechanism::LlSc, 10, 1, 4, 4);
        // 10 -> 3 -> 1.
        assert_eq!(spec.depth(), 2);
        assert_eq!(spec.levels[0].len(), 3);
        assert_eq!(spec.levels[0][2].size, 2);
        assert_eq!(spec.levels[1][0].size, 3);
    }

    #[test]
    fn deep_trees_synchronize_all_mechanisms() {
        for mech in Mechanism::ALL {
            run_ktree(mech, 16, 2, 2); // depth 4
        }
    }

    #[test]
    fn wider_tree_is_shallower_and_works() {
        run_ktree(Mechanism::Atomic, 16, 4, 3); // 16 -> 4 -> 1: depth 2
        run_ktree(Mechanism::Amo, 32, 8, 2); // 32 -> 4 -> 1: depth 2
    }

    #[test]
    fn two_level_ktree_matches_tree_module_shape() {
        // A ktree with branching b over b^2 procs has the same structure
        // as the paper's two-level tree; sanity-check relative timing is
        // in the same ballpark (within 2x) for LL/SC.
        use crate::{TreeBarrierKernel, TreeBarrierSpec};
        let procs = 16u16;
        let episodes = 3;
        let (_, kt) = run_ktree(Mechanism::LlSc, procs, 4, episodes);

        let cfg = SystemConfig::with_procs(procs);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = TreeBarrierSpec::build(
            &mut alloc,
            Mechanism::LlSc,
            procs,
            episodes,
            4,
            cfg.num_nodes(),
        );
        for p in 0..procs {
            let work: Vec<Cycle> = (0..episodes)
                .map(|e| 100 + (p as u64 * 31 + e as u64 * 7) % 300)
                .collect();
            machine.install_kernel(
                ProcId(p),
                Box::new(TreeBarrierKernel::new(spec.clone(), p, work)),
                0,
            );
        }
        let res = machine.run(2_000_000_000);
        assert!(res.all_finished);
        let two = res.last_finish();
        assert!(
            kt < two * 2 && two < kt * 2,
            "ktree {kt} vs two-level {two}"
        );
    }
}
