//! Dissemination barrier (Hensgen/Finkel/Manber; popularized by
//! Mellor-Crummey & Scott, the paper's reference \[17\]).
//!
//! ⌈log₂ P⌉ rounds; in round `r`, processor `i` notifies processor
//! `(i + 2^r) mod P` and waits for the notification from
//! `(i − 2^r) mod P`. Every processor spins only on its **own** flags
//! (homed on its own node), and there is no hot spot at all — the
//! classic software answer to the centralized barrier's serialization,
//! and a natural extra baseline for the AMO comparison.
//!
//! Flags hold cumulative episode counts (notify episode `e` by bringing
//! the peer's flag for that round to `e`), so no sense reversal or
//! resets are needed. Each flag has exactly one writer, so conventional
//! mechanisms notify with a plain coherent store; AMO notifies with an
//! `amo.fetchadd` whose put lands the count directly in the waiting
//! cache.

use crate::barrier::BarrierSpec;
use crate::mechanism::{Mechanism, ReleaseSub, SpinSub, Step};
use crate::VarAlloc;
use amo_cpu::{Kernel, Op, Outcome};
use amo_types::{Addr, Cycle, ProcId, SpinPred, Word};

/// Shared description of a dissemination barrier.
#[derive(Clone, Debug)]
pub struct DisseminationSpec {
    /// Mechanism implementing the notifications.
    pub mech: Mechanism,
    /// Participants.
    pub participants: u16,
    /// Episodes to run.
    pub episodes: u32,
    /// `flags[i][r]`: processor `i`'s round-`r` flag, homed on `i`'s
    /// node — local spinning is the algorithm's point.
    pub flags: Vec<Vec<Addr>>,
}

impl DisseminationSpec {
    /// Number of rounds for `participants`.
    pub fn rounds_for(participants: u16) -> u32 {
        assert!(participants >= 2);
        (participants as f64).log2().ceil() as u32
    }

    /// Allocate the flag matrix.
    pub fn build(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        participants: u16,
        procs_per_node: u16,
        episodes: u32,
    ) -> Self {
        let rounds = Self::rounds_for(participants);
        let flags = (0..participants)
            .map(|p| {
                let node = ProcId(p).node(procs_per_node);
                (0..rounds).map(|_| alloc.word(node)).collect()
            })
            .collect();
        DisseminationSpec {
            mech,
            participants,
            episodes,
            flags,
        }
    }

    /// The peer processor `i` notifies in round `r`.
    pub fn notify_target(&self, i: u16, r: u32) -> u16 {
        ((i as u32 + (1 << r)) % self.participants as u32) as u16
    }
}

#[derive(Debug)]
enum DState {
    StartEpisode,
    WorkWait,
    EnterMarkWait,
    Notify(ReleaseSub),
    Wait(SpinSub),
    ExitMarkWait,
    Done,
}

/// One participant's dissemination-barrier kernel.
pub struct DisseminationKernel {
    spec: DisseminationSpec,
    me: u16,
    work: Vec<Cycle>,
    e: u32,
    round: u32,
    state: DState,
}

impl DisseminationKernel {
    /// Build the kernel for participant `me`.
    pub fn new(spec: DisseminationSpec, me: u16, work: Vec<Cycle>) -> Self {
        assert_eq!(work.len(), spec.episodes as usize);
        assert!((me as usize) < spec.flags.len());
        DisseminationKernel {
            spec,
            me,
            work,
            e: 1,
            round: 0,
            state: DState::StartEpisode,
        }
    }

    fn notify_sub(&self) -> ReleaseSub {
        let peer = self.spec.notify_target(self.me, self.round);
        let addr = self.spec.flags[peer as usize][self.round as usize];
        // One writer per flag: conventional mechanisms store, AMO pushes.
        match self.spec.mech {
            Mechanism::Amo => ReleaseSub::new(Mechanism::Amo, addr, self.e as Word),
            _ => ReleaseSub::coherent_store(addr, self.e as Word),
        }
    }

    fn wait_sub(&self) -> SpinSub {
        let addr = self.spec.flags[self.me as usize][self.round as usize];
        SpinSub::coherent(addr, SpinPred::Ge(self.e as Word))
    }

    fn rounds(&self) -> u32 {
        self.spec.flags[0].len() as u32
    }
}

impl Kernel for DisseminationKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        loop {
            match &mut self.state {
                DState::StartEpisode => {
                    if self.e > self.spec.episodes {
                        self.state = DState::Done;
                        continue;
                    }
                    self.state = DState::WorkWait;
                    return Op::Delay {
                        cycles: self.work[(self.e - 1) as usize],
                    };
                }
                DState::WorkWait => {
                    self.state = DState::EnterMarkWait;
                    return Op::Mark {
                        id: BarrierSpec::enter_mark(self.e),
                    };
                }
                DState::EnterMarkWait => {
                    self.round = 0;
                    self.state = DState::Notify(self.notify_sub());
                    last = None;
                }
                DState::Notify(rel) => match rel.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = DState::Wait(self.wait_sub());
                    }
                },
                DState::Wait(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.round += 1;
                        if self.round < self.rounds() {
                            self.state = DState::Notify(self.notify_sub());
                        } else {
                            self.state = DState::ExitMarkWait;
                            return Op::Mark {
                                id: BarrierSpec::exit_mark(self.e),
                            };
                        }
                    }
                },
                DState::ExitMarkWait => {
                    self.e += 1;
                    self.state = DState::StartEpisode;
                    last = None;
                }
                DState::Done => return Op::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::Machine;
    use amo_types::SystemConfig;

    fn run_dissemination(mech: Mechanism, procs: u16, episodes: u32) -> (Machine, u64) {
        let cfg = SystemConfig::with_procs(procs);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = DisseminationSpec::build(&mut alloc, mech, procs, cfg.procs_per_node, episodes);
        for p in 0..procs {
            let work: Vec<Cycle> = (0..episodes)
                .map(|e| 100 + (p as u64 * 37 + e as u64 * 13) % 400)
                .collect();
            machine.install_kernel(
                ProcId(p),
                Box::new(DisseminationKernel::new(spec.clone(), p, work)),
                0,
            );
        }
        let res = machine.run(2_000_000_000);
        assert!(res.all_finished, "{mech:?}: {:?}", res.finished);
        // Barrier property.
        for e in 1..=episodes {
            let last_enter = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::enter_mark(e))
                .map(|&(_, _, t)| t)
                .max()
                .unwrap();
            let first_exit = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| *id == BarrierSpec::exit_mark(e))
                .map(|&(_, _, t)| t)
                .min()
                .unwrap();
            assert!(first_exit >= last_enter, "{mech:?} episode {e} violated");
        }
        (machine, res.last_finish())
    }

    #[test]
    fn rounds_formula() {
        assert_eq!(DisseminationSpec::rounds_for(2), 1);
        assert_eq!(DisseminationSpec::rounds_for(4), 2);
        assert_eq!(DisseminationSpec::rounds_for(5), 3);
        assert_eq!(DisseminationSpec::rounds_for(8), 3);
        assert_eq!(DisseminationSpec::rounds_for(256), 8);
    }

    #[test]
    fn notify_partners_wrap() {
        let mut alloc = VarAlloc::new();
        let spec = DisseminationSpec::build(&mut alloc, Mechanism::Atomic, 8, 2, 1);
        assert_eq!(spec.notify_target(0, 0), 1);
        assert_eq!(spec.notify_target(7, 0), 0);
        assert_eq!(spec.notify_target(6, 2), 2);
    }

    #[test]
    fn dissemination_synchronizes_all_mechanisms() {
        for mech in Mechanism::ALL {
            run_dissemination(mech, 8, 3);
        }
    }

    #[test]
    fn works_with_non_power_of_two() {
        run_dissemination(Mechanism::LlSc, 6, 2);
        run_dissemination(Mechanism::Amo, 10, 2);
    }

    #[test]
    fn flags_are_home_placed() {
        let mut alloc = VarAlloc::new();
        let spec = DisseminationSpec::build(&mut alloc, Mechanism::LlSc, 8, 2, 1);
        for p in 0..8u16 {
            for f in &spec.flags[p as usize] {
                assert_eq!(f.home(), ProcId(p).node(2));
            }
        }
    }

    #[test]
    fn beats_centralized_llsc_at_scale() {
        use crate::BarrierKernel;
        let procs = 32u16;
        let episodes = 4;
        let (_, diss) = run_dissemination(Mechanism::LlSc, procs, episodes);
        // Centralized LL/SC for comparison.
        let cfg = SystemConfig::with_procs(procs);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = BarrierSpec::build(
            &mut alloc,
            Mechanism::LlSc,
            amo_types::NodeId(0),
            procs,
            episodes,
        );
        for p in 0..procs {
            let work: Vec<Cycle> = (0..episodes)
                .map(|e| 100 + (p as u64 * 37 + e as u64 * 13) % 400)
                .collect();
            machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
        }
        let res = machine.run(2_000_000_000);
        assert!(res.all_finished);
        let central = res.last_finish();
        assert!(
            diss < central,
            "dissemination {diss} should beat centralized LL/SC {central} at {procs} CPUs"
        );
    }
}
