//! Synchronization-variable placement.
//!
//! Allocates words so that distinct variables never share a cache block
//! (the paper's "programmers must make sure that `barrier_variable` and
//! `spin_variable` do not reside in the same block"), places MAO
//! variables in a separate uncached region, and hands out active-message
//! service-counter ids per home node.

use amo_types::{Addr, NodeId, Word};
use std::collections::HashMap;

/// Base offset of the coherent synchronization-variable region.
const COHERENT_BASE: u64 = 0x10_000;
/// Base offset of the uncached (MAO) region — never accessed coherently.
const UNCACHED_BASE: u64 = 0x8000_0000;
/// Spacing between variables: two 128-byte blocks, so no two variables
/// share a block even with conservative prefetching assumptions.
const SPACING: u64 = 256;

/// Allocator for synchronization variables.
#[derive(Default)]
pub struct VarAlloc {
    coherent_next: HashMap<u16, u64>,
    uncached_next: HashMap<u16, u64>,
    ctr_next: HashMap<u16, u16>,
}

impl VarAlloc {
    /// Fresh allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a coherent word homed on `node`, in its own block.
    pub fn word(&mut self, node: NodeId) -> Addr {
        let next = self.coherent_next.entry(node.0).or_insert(COHERENT_BASE);
        let a = Addr::on_node(node, *next);
        *next += SPACING;
        a
    }

    /// Allocate an uncached (MAO) word homed on `node`.
    pub fn uncached_word(&mut self, node: NodeId) -> Addr {
        let next = self.uncached_next.entry(node.0).or_insert(UNCACHED_BASE);
        let a = Addr::on_node(node, *next);
        *next += SPACING;
        a
    }

    /// Allocate an active-message service counter id on `node`'s handler
    /// processor.
    pub fn ctr(&mut self, node: NodeId) -> u16 {
        let next = self.ctr_next.entry(node.0).or_insert(0);
        let id = *next;
        *next += 1;
        id
    }

    /// Allocate a word appropriate for the mechanism: uncached for MAO,
    /// coherent otherwise.
    pub fn counter_for(&mut self, mech: crate::Mechanism, node: NodeId) -> Addr {
        if mech.uses_uncached_vars() {
            self.uncached_word(node)
        } else {
            self.word(node)
        }
    }
}

/// Convenience: the cumulative target count for episode `e` (1-based)
/// with `n` participants.
pub fn cumulative_target(episode: u32, n: u16) -> Word {
    episode as Word * n as Word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_get_distinct_blocks() {
        let mut v = VarAlloc::new();
        let a = v.word(NodeId(0));
        let b = v.word(NodeId(0));
        assert_ne!(a.block(128), b.block(128));
        assert_eq!(a.home(), NodeId(0));
    }

    #[test]
    fn nodes_are_independent() {
        let mut v = VarAlloc::new();
        let a = v.word(NodeId(0));
        let b = v.word(NodeId(1));
        assert_eq!(a.offset(), b.offset());
        assert_ne!(a, b);
    }

    #[test]
    fn uncached_region_is_disjoint() {
        let mut v = VarAlloc::new();
        let c = v.word(NodeId(0));
        let u = v.uncached_word(NodeId(0));
        assert!(u.offset() >= UNCACHED_BASE);
        assert!(c.offset() < UNCACHED_BASE);
    }

    #[test]
    fn ctr_ids_increment_per_node() {
        let mut v = VarAlloc::new();
        assert_eq!(v.ctr(NodeId(0)), 0);
        assert_eq!(v.ctr(NodeId(0)), 1);
        assert_eq!(v.ctr(NodeId(1)), 0);
    }

    #[test]
    fn cumulative_targets() {
        assert_eq!(cumulative_target(1, 4), 4);
        assert_eq!(cumulative_target(3, 256), 768);
    }
}
