//! MCS list-based queue lock (Mellor-Crummey & Scott, the paper's
//! reference \[17\] — the canonical scalable software lock), over the
//! mechanisms that provide the `swap`/`cas` it needs: LL/SC, Atomic,
//! MAO, and AMO.
//!
//! Each processor owns a queue node homed on *its own* node: a `next`
//! link (written by its successor) and a `granted` counter (bumped by
//! its predecessor's release). That placement is the MCS hallmark — all
//! spinning is node-local, and a release touches exactly one remote
//! line. Under AMO the grant increment is an `amo.fetchadd` whose put
//! lands the new count straight in the waiter's cache, and the tail
//! swap/cas are 2-cycle AMU-cache operations instead of block
//! migrations.
//!
//! Counts are cumulative: `granted[p]` counts lifetime grants to `p`,
//! so `p`'s k-th *contended* acquire waits for `granted[p] ≥ k` and no
//! flag resets exist. The `next` link is cleared by its owner before
//! each tail swap, exactly as in the original algorithm.

use crate::lock::{acquire_mark, release_mark, ExclusionCheck};
use crate::mechanism::{Mechanism, RmwSub, SpinSub, Step};
use crate::VarAlloc;
use amo_cpu::{Kernel, Op, Outcome};
use amo_types::{Addr, AmoKind, Cycle, NodeId, ProcId, SpinPred, Word};

/// Shared description of an MCS lock.
#[derive(Clone, Debug)]
pub struct McsLockSpec {
    /// Mechanism implementing swap / cas / grant increments.
    pub mech: Mechanism,
    /// The queue tail: 0 = free, `p + 1` = processor `p` is last in line.
    pub tail: Addr,
    /// Per-processor successor links, each homed on its owner's node.
    pub next: Vec<Addr>,
    /// Per-processor cumulative grant counters, likewise home-placed.
    pub granted: Vec<Addr>,
    /// Acquisitions per participant.
    pub rounds: u32,
    /// Critical-section length in cycles.
    pub cs_cycles: Cycle,
}

impl McsLockSpec {
    /// Allocate an MCS lock: the tail on `home`, each processor's queue
    /// node on its own node.
    pub fn build(
        alloc: &mut VarAlloc,
        mech: Mechanism,
        home: NodeId,
        procs: u16,
        procs_per_node: u16,
        rounds: u32,
        cs_cycles: Cycle,
    ) -> Self {
        assert!(
            mech != Mechanism::ActMsg,
            "MCS needs swap/cas; the active-message lock is home-mediated instead"
        );
        McsLockSpec {
            mech,
            tail: alloc.counter_for(mech, home),
            next: (0..procs)
                .map(|p| alloc.word(ProcId(p).node(procs_per_node)))
                .collect(),
            granted: (0..procs)
                .map(|p| alloc.word(ProcId(p).node(procs_per_node)))
                .collect(),
            rounds,
            cs_cycles,
        }
    }
}

#[derive(Debug)]
enum McsPhase {
    StartRound,
    ThinkWait,
    /// Clear our own `next` link before publishing ourselves.
    ClearNext,
    /// `swap(tail, me+1)` — the enqueue.
    Swap(RmwSub),
    /// Link ourselves behind the predecessor: `next[pred] = me+1`.
    LinkPred,
    /// Contended: wait for the grant counter to reach our wait count.
    WaitGrant(SpinSub),
    AcqMarkWait,
    ScribbleWait,
    CsWait,
    VerifyWait,
    RelMarkWait,
    /// `cas(tail, me+1, 0)` — uncontended release attempt.
    ReleaseCas(RmwSub),
    /// CAS failed: a successor exists; wait for it to link itself.
    WaitNext(SpinSub),
    /// Bump the successor's grant counter.
    GrantSucc(RmwSub),
    Done,
}

/// One participant's MCS-lock benchmark kernel.
pub struct McsLockKernel {
    spec: McsLockSpec,
    me: u16,
    think: Vec<Cycle>,
    tag: Word,
    check: Option<ExclusionCheck>,
    r: u32,
    /// Contended acquires so far (the spin target for `granted[me]`).
    waits: Word,
    state: McsPhase,
}

impl McsLockKernel {
    /// Build the kernel for participant `me`.
    pub fn new(
        spec: McsLockSpec,
        me: u16,
        think: Vec<Cycle>,
        tag: Word,
        check: Option<ExclusionCheck>,
    ) -> Self {
        assert_eq!(think.len(), spec.rounds as usize);
        assert!((me as usize) < spec.next.len());
        McsLockKernel {
            spec,
            me,
            think,
            tag,
            check,
            r: 1,
            waits: 0,
            state: McsPhase::StartRound,
        }
    }

    fn my_id(&self) -> Word {
        self.me as Word + 1
    }

    fn grant_sub(&self, succ: u16) -> RmwSub {
        let addr = self.spec.granted[succ as usize];
        match self.spec.mech {
            // amo.fetchadd: the put pushes the new count into the
            // waiter's cache — a one-way wake-up.
            Mechanism::Amo => RmwSub::new(Mechanism::Amo, AmoKind::FetchAdd, addr, 1),
            // MAO's grant counters are coherent (only the tail needs the
            // AMU); the cumulative count is unknown to the releaser, so
            // it uses a processor-side fetch-add like Atomic. LL/SC uses
            // its retry pair.
            Mechanism::Mao | Mechanism::Atomic => {
                RmwSub::new(Mechanism::Atomic, AmoKind::FetchAdd, addr, 1)
            }
            Mechanism::LlSc => RmwSub::new(Mechanism::LlSc, AmoKind::FetchAdd, addr, 1),
            Mechanism::ActMsg => unreachable!("rejected at build"),
        }
    }
}

impl Kernel for McsLockKernel {
    fn next(&mut self, mut last: Option<Outcome>) -> Op {
        loop {
            match &mut self.state {
                McsPhase::StartRound => {
                    if self.r > self.spec.rounds {
                        self.state = McsPhase::Done;
                        continue;
                    }
                    self.state = McsPhase::ThinkWait;
                    return Op::Delay {
                        cycles: self.think[(self.r - 1) as usize],
                    };
                }
                McsPhase::ThinkWait => {
                    self.state = McsPhase::ClearNext;
                    return Op::Store {
                        addr: self.spec.next[self.me as usize],
                        value: 0,
                    };
                }
                McsPhase::ClearNext => {
                    self.state = McsPhase::Swap(RmwSub::new(
                        self.spec.mech,
                        AmoKind::Swap,
                        self.spec.tail,
                        self.my_id(),
                    ));
                    last = None;
                }
                McsPhase::Swap(sub) => match sub.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(pred) => {
                        if pred == 0 {
                            // Queue was empty: lock acquired outright.
                            self.state = McsPhase::AcqMarkWait;
                            return Op::Mark {
                                id: acquire_mark(self.r),
                            };
                        }
                        self.waits += 1;
                        self.state = McsPhase::LinkPred;
                        return Op::Store {
                            addr: self.spec.next[(pred - 1) as usize],
                            value: self.my_id(),
                        };
                    }
                },
                McsPhase::LinkPred => {
                    self.state = McsPhase::WaitGrant(SpinSub::coherent(
                        self.spec.granted[self.me as usize],
                        SpinPred::Ge(self.waits),
                    ));
                    last = None;
                }
                McsPhase::WaitGrant(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.state = McsPhase::AcqMarkWait;
                        return Op::Mark {
                            id: acquire_mark(self.r),
                        };
                    }
                },
                McsPhase::AcqMarkWait => {
                    if let Some(c) = &self.check {
                        self.state = McsPhase::ScribbleWait;
                        return Op::Store {
                            addr: c.addr,
                            value: self.tag,
                        };
                    }
                    self.state = McsPhase::CsWait;
                    return Op::Delay {
                        cycles: self.spec.cs_cycles,
                    };
                }
                McsPhase::ScribbleWait => {
                    self.state = McsPhase::CsWait;
                    return Op::Delay {
                        cycles: self.spec.cs_cycles,
                    };
                }
                McsPhase::CsWait => {
                    if let Some(c) = &self.check {
                        self.state = McsPhase::VerifyWait;
                        return Op::Load { addr: c.addr };
                    }
                    self.state = McsPhase::RelMarkWait;
                    return Op::Mark {
                        id: release_mark(self.r),
                    };
                }
                McsPhase::VerifyWait => {
                    if let Some(Outcome::Value(v)) = last.take() {
                        let c = self.check.as_ref().expect("verify without check");
                        if v != self.tag {
                            c.violations.set(c.violations.get() + 1);
                        }
                    }
                    self.state = McsPhase::RelMarkWait;
                    return Op::Mark {
                        id: release_mark(self.r),
                    };
                }
                McsPhase::RelMarkWait => {
                    self.state = McsPhase::ReleaseCas(RmwSub::new(
                        self.spec.mech,
                        AmoKind::Cas {
                            expected: self.my_id(),
                        },
                        self.spec.tail,
                        0,
                    ));
                    last = None;
                }
                McsPhase::ReleaseCas(sub) => match sub.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(old) => {
                        if old == self.my_id() {
                            // No successor: the lock is free again.
                            self.r += 1;
                            self.state = McsPhase::StartRound;
                            last = None;
                        } else {
                            // A successor swapped in; wait for its link.
                            self.state = McsPhase::WaitNext(SpinSub::coherent(
                                self.spec.next[self.me as usize],
                                SpinPred::Ne(0),
                            ));
                            last = None;
                        }
                    }
                },
                McsPhase::WaitNext(sp) => match sp.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(succ_id) => {
                        let succ = (succ_id - 1) as u16;
                        self.state = McsPhase::GrantSucc(self.grant_sub(succ));
                        last = None;
                    }
                },
                McsPhase::GrantSucc(sub) => match sub.poll(last.take()) {
                    Step::Issue(op) => return op,
                    Step::Ready(_) => {
                        self.r += 1;
                        self.state = McsPhase::StartRound;
                        last = None;
                    }
                },
                McsPhase::Done => return Op::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sim::Machine;
    use amo_types::{ProcId, SystemConfig};
    use std::cell::Cell;
    use std::rc::Rc;

    fn run_mcs(mech: Mechanism, procs: u16, rounds: u32) -> (Machine, u64) {
        let cfg = SystemConfig::with_procs(procs);
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let spec = McsLockSpec::build(
            &mut alloc,
            mech,
            NodeId(0),
            procs,
            cfg.procs_per_node,
            rounds,
            200,
        );
        let check = ExclusionCheck {
            addr: alloc.word(NodeId(0)),
            violations: Rc::new(Cell::new(0)),
        };
        for p in 0..procs {
            let think: Vec<Cycle> = (0..rounds)
                .map(|r| 100 + (p as u64 * 53 + r as u64 * 23) % 700)
                .collect();
            machine.install_kernel(
                ProcId(p),
                Box::new(McsLockKernel::new(
                    spec.clone(),
                    p,
                    think,
                    p as Word + 1,
                    Some(check.clone()),
                )),
                0,
            );
        }
        let res = machine.run(4_000_000_000);
        assert!(res.all_finished, "{mech:?}: {:?}", res.finished);
        assert_eq!(
            check.violations.get(),
            0,
            "{mech:?} violated mutual exclusion"
        );
        (machine, res.last_finish())
    }

    #[test]
    fn mcs_mutual_exclusion_all_supported_mechanisms() {
        for mech in [
            Mechanism::LlSc,
            Mechanism::Atomic,
            Mechanism::Mao,
            Mechanism::Amo,
        ] {
            run_mcs(mech, 4, 3);
        }
    }

    #[test]
    fn mcs_under_contention_8_procs() {
        for mech in [Mechanism::LlSc, Mechanism::Amo] {
            let (machine, _) = run_mcs(mech, 8, 4);
            // Every round's acquire/release happened.
            let acquires = machine
                .marks()
                .iter()
                .filter(|(_, id, _)| id % 2 == 0)
                .count();
            assert_eq!(acquires, 8 * 4);
        }
    }

    #[test]
    fn amo_mcs_beats_llsc_mcs() {
        let (_, amo) = run_mcs(Mechanism::Amo, 8, 4);
        let (_, llsc) = run_mcs(Mechanism::LlSc, 8, 4);
        assert!(amo < llsc, "AMO MCS {amo} should beat LL/SC MCS {llsc}");
    }

    #[test]
    fn handoffs_are_fifo_by_marks() {
        let (machine, _) = run_mcs(Mechanism::Atomic, 6, 3);
        let mut acquires: Vec<Cycle> = machine
            .marks()
            .iter()
            .filter(|(_, id, _)| id % 2 == 0)
            .map(|&(_, _, t)| t)
            .collect();
        let mut releases: Vec<Cycle> = machine
            .marks()
            .iter()
            .filter(|(_, id, _)| id % 2 == 1)
            .map(|&(_, _, t)| t)
            .collect();
        acquires.sort_unstable();
        releases.sort_unstable();
        for k in 1..acquires.len() {
            assert!(
                acquires[k] >= releases[k - 1],
                "holder overlap: {} vs {}",
                acquires[k],
                releases[k - 1]
            );
        }
    }

    #[test]
    #[should_panic(expected = "home-mediated")]
    fn actmsg_is_rejected() {
        let mut alloc = VarAlloc::new();
        let _ = McsLockSpec::build(&mut alloc, Mechanism::ActMsg, NodeId(0), 4, 2, 1, 100);
    }
}
