//! The five synchronization mechanisms and their reusable sub-state
//! machines (fetch-and-add, release write, spin).
//!
//! Kernels compose these: a sub-machine's `poll` either asks the
//! processor to perform an [`Op`] or reports completion with a value.

use amo_cpu::{Op, Outcome};
use amo_types::{Addr, AmoKind, Cycle, HandlerKind, Publish, SpinPred, Word};

/// Which hardware/software mechanism implements the atomic operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mechanism {
    /// Load-linked / store-conditional retry loops (the paper's baseline).
    LlSc,
    /// Processor-side atomic read-modify-write instructions.
    Atomic,
    /// Active messages executed by the home node's processor.
    ActMsg,
    /// Conventional memory-side atomic operations (uncached, SGI Origin
    /// 2000 / Cray T3E style).
    Mao,
    /// Active Memory Operations (the paper's contribution).
    Amo,
}

impl Mechanism {
    /// All mechanisms, in the order the paper's tables list them.
    pub const ALL: [Mechanism; 5] = [
        Mechanism::LlSc,
        Mechanism::ActMsg,
        Mechanism::Atomic,
        Mechanism::Mao,
        Mechanism::Amo,
    ];

    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::LlSc => "LL/SC",
            Mechanism::Atomic => "Atomic",
            Mechanism::ActMsg => "ActMsg",
            Mechanism::Mao => "MAO",
            Mechanism::Amo => "AMO",
        }
    }

    /// Whether this mechanism's synchronization variables live in
    /// uncached (IO) space rather than the coherent domain.
    pub fn uses_uncached_vars(self) -> bool {
        matches!(self, Mechanism::Mao)
    }
}

/// One step of a sub-machine: either an operation for the processor to
/// perform, or completion with a result value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Perform this op; feed the outcome back into `poll`.
    Issue(Op),
    /// Sub-machine complete; the carried value is mechanism-specific
    /// (old value for fetch-adds, satisfying value for spins, 0 for
    /// releases).
    Ready(Word),
}

/// Mechanism-generic atomic fetch-and-add on `addr`, returning the old
/// value.
///
/// ```
/// use amo_sync::mechanism::{FetchAddSub, Mechanism, Step};
/// use amo_cpu::{Op, Outcome};
/// use amo_types::{Addr, NodeId};
///
/// // An LL/SC fetch-add is a retry loop: the sub-machine re-issues the
/// // pair until the conditional store lands.
/// let addr = Addr::on_node(NodeId(0), 0x1000);
/// let mut fa = FetchAddSub::new(Mechanism::LlSc, addr, 1, 0);
/// assert_eq!(fa.poll(None), Step::Issue(Op::LoadLinked { addr }));
/// assert_eq!(
///     fa.poll(Some(Outcome::Value(6))),
///     Step::Issue(Op::StoreConditional { addr, value: 7 })
/// );
/// assert_eq!(fa.poll(Some(Outcome::ScResult(true))), Step::Ready(6));
/// ```
#[derive(Clone, Debug)]
pub struct FetchAddSub {
    mech: Mechanism,
    addr: Addr,
    operand: Word,
    /// AMO delayed-put test value (`amo.inc` barriers).
    test: Option<Word>,
    /// Force `amo.inc` (silent accumulation, no eager put) even without
    /// a test value — sense-reversing counters want this.
    force_inc: bool,
    /// Active-message handler parameters: service counter id and
    /// optional publish side effect (barriers).
    actmsg_ctr: u16,
    publish: Option<Publish>,
    state: FaState,
}

#[derive(Clone, Copy, Debug)]
enum FaState {
    Init,
    LlWait,
    ScWait { old: Word },
    ReplyWait,
}

impl FetchAddSub {
    /// Plain fetch-add (locks, tree counters).
    pub fn new(mech: Mechanism, addr: Addr, operand: Word, actmsg_ctr: u16) -> Self {
        FetchAddSub {
            mech,
            addr,
            operand,
            test: None,
            force_inc: false,
            actmsg_ctr,
            publish: None,
            state: FaState::Init,
        }
    }

    /// Fetch-add with an AMO test value (delayed put).
    pub fn with_test(mut self, test: Word) -> Self {
        self.test = Some(test);
        self
    }

    /// Use `amo.inc` under AMO even without a test value, so the count
    /// accumulates silently in the AMU cache (no eager puts). Requires
    /// operand 1.
    pub fn as_inc(mut self) -> Self {
        assert_eq!(self.operand, 1, "amo.inc increments by one");
        self.force_inc = true;
        self
    }

    /// Fetch-add whose active-message handler publishes on a count.
    pub fn with_publish(mut self, publish: Publish) -> Self {
        self.publish = Some(publish);
        self
    }

    /// Advance; `last` is the outcome of the previously issued op.
    pub fn poll(&mut self, last: Option<Outcome>) -> Step {
        match (self.state, last) {
            (FaState::Init, _) => match self.mech {
                Mechanism::LlSc => {
                    self.state = FaState::LlWait;
                    Step::Issue(Op::LoadLinked { addr: self.addr })
                }
                Mechanism::Atomic => {
                    self.state = FaState::ReplyWait;
                    Step::Issue(Op::AtomicRmw {
                        kind: AmoKind::FetchAdd,
                        addr: self.addr,
                        operand: self.operand,
                    })
                }
                Mechanism::ActMsg => {
                    self.state = FaState::ReplyWait;
                    Step::Issue(Op::ActiveMsg {
                        home: self.addr.home(),
                        handler: HandlerKind::FetchAdd {
                            ctr: self.actmsg_ctr,
                            operand: self.operand,
                            publish: self.publish,
                        },
                    })
                }
                Mechanism::Mao => {
                    self.state = FaState::ReplyWait;
                    Step::Issue(Op::Mao {
                        kind: AmoKind::FetchAdd,
                        addr: self.addr,
                        operand: self.operand,
                    })
                }
                Mechanism::Amo => {
                    self.state = FaState::ReplyWait;
                    let kind = if self.operand == 1 && (self.test.is_some() || self.force_inc) {
                        AmoKind::Inc
                    } else {
                        AmoKind::FetchAdd
                    };
                    Step::Issue(Op::Amo {
                        kind,
                        addr: self.addr,
                        operand: self.operand,
                        test: self.test,
                    })
                }
            },
            (FaState::LlWait, Some(Outcome::Value(old))) => {
                self.state = FaState::ScWait { old };
                Step::Issue(Op::StoreConditional {
                    addr: self.addr,
                    value: old.wrapping_add(self.operand),
                })
            }
            (FaState::ScWait { old }, Some(Outcome::ScResult(true))) => Step::Ready(old),
            (FaState::ScWait { .. }, Some(Outcome::ScResult(false))) => {
                // Retry the whole LL/SC pair.
                self.state = FaState::LlWait;
                Step::Issue(Op::LoadLinked { addr: self.addr })
            }
            (FaState::ReplyWait, Some(Outcome::Value(old) | Outcome::Acked(old))) => {
                Step::Ready(old)
            }
            (s, l) => panic!("FetchAddSub: unexpected ({s:?}, {l:?})"),
        }
    }
}

/// How a release write reaches the spinners.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelMode {
    /// Coherent store: invalidates every spinner, who then reloads (the
    /// conventional wake-up storm).
    Store,
    /// Uncached AMU fetch-add: spinners must poll the home node (MAO
    /// locks).
    MaoInc,
    /// AMU fetch-add with an immediate put: one-way word updates land in
    /// every spinner's cache (AMO).
    AmoPush,
}

/// Mechanism-generic release: make a +1 increment of the release word
/// visible to spinners. The caller supplies the post-increment value
/// (releases have a single writer, so it is always known).
#[derive(Clone, Debug)]
pub struct ReleaseSub {
    mode: RelMode,
    addr: Addr,
    new_value: Word,
    issued: bool,
}

impl ReleaseSub {
    /// Default release for a mechanism whose *release word lives where
    /// its spinners look*: coherent store for LL/SC, Atomic, and ActMsg;
    /// uncached increment for MAO (whose lock words are uncached);
    /// pushing fetch-add for AMO.
    ///
    /// Algorithms that keep a **coherent** spin variable under MAO (the
    /// paper's optimized MAO barrier) must use
    /// [`ReleaseSub::coherent_store`] instead.
    pub fn new(mech: Mechanism, addr: Addr, new_value: Word) -> Self {
        let mode = match mech {
            Mechanism::LlSc | Mechanism::Atomic | Mechanism::ActMsg => RelMode::Store,
            Mechanism::Mao => RelMode::MaoInc,
            Mechanism::Amo => RelMode::AmoPush,
        };
        ReleaseSub {
            mode,
            addr,
            new_value,
            issued: false,
        }
    }

    /// A plain coherent-store release regardless of mechanism.
    pub fn coherent_store(addr: Addr, new_value: Word) -> Self {
        ReleaseSub {
            mode: RelMode::Store,
            addr,
            new_value,
            issued: false,
        }
    }

    /// Advance; `last` is the outcome of the previously issued op.
    pub fn poll(&mut self, last: Option<Outcome>) -> Step {
        if !self.issued {
            self.issued = true;
            return Step::Issue(match self.mode {
                RelMode::Store => Op::Store {
                    addr: self.addr,
                    value: self.new_value,
                },
                RelMode::MaoInc => Op::Mao {
                    kind: AmoKind::FetchAdd,
                    addr: self.addr,
                    operand: 1,
                },
                RelMode::AmoPush => Op::Amo {
                    kind: AmoKind::FetchAdd,
                    addr: self.addr,
                    operand: 1,
                    test: None,
                },
            });
        }
        match last {
            Some(Outcome::Stored | Outcome::Value(_)) => Step::Ready(0),
            l => panic!("ReleaseSub: unexpected {l:?}"),
        }
    }
}

/// Mechanism-generic spin until a word satisfies a predicate. Coherent
/// spins sleep in the cache; the MAO variant polls the home node with
/// MCS-style proportional backoff.
#[derive(Clone, Debug)]
pub struct SpinSub {
    addr: Addr,
    pred: SpinPred,
    uncached: Option<BackoffCfg>,
    state: SpinState,
}

/// Backoff parameters for uncached (MAO) spinning.
#[derive(Clone, Copy, Debug)]
pub struct BackoffCfg {
    /// Base delay per unit of distance from the target (proportional
    /// backoff: waiting behind k holders waits ~k× longer).
    pub base: Cycle,
    /// Cap on a single backoff delay.
    pub cap: Cycle,
    /// Target value used to compute the distance.
    pub target: Word,
}

impl Default for BackoffCfg {
    fn default() -> Self {
        BackoffCfg {
            base: 400,
            cap: 20_000,
            target: 0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum SpinState {
    Init,
    Waiting,
    Backoff,
}

impl SpinSub {
    /// Coherent cached spin (LL/SC, Atomic, ActMsg, AMO — and the
    /// optimized MAO barrier's separate spin variable).
    pub fn coherent(addr: Addr, pred: SpinPred) -> Self {
        SpinSub {
            addr,
            pred,
            uncached: None,
            state: SpinState::Init,
        }
    }

    /// Uncached remote spin with proportional backoff (MAO locks).
    pub fn uncached(addr: Addr, pred: SpinPred, backoff: BackoffCfg) -> Self {
        SpinSub {
            addr,
            pred,
            uncached: Some(backoff),
            state: SpinState::Init,
        }
    }

    /// Advance; `last` is the outcome of the previously issued op.
    pub fn poll(&mut self, last: Option<Outcome>) -> Step {
        match self.uncached {
            None => match (self.state, last) {
                (SpinState::Init, _) => {
                    self.state = SpinState::Waiting;
                    Step::Issue(Op::SpinUntil {
                        addr: self.addr,
                        pred: self.pred,
                    })
                }
                (SpinState::Waiting, Some(Outcome::SpinDone(v))) => Step::Ready(v),
                (s, l) => panic!("SpinSub: unexpected ({s:?}, {l:?})"),
            },
            Some(cfg) => match (self.state, last) {
                (SpinState::Init | SpinState::Backoff, _) => {
                    self.state = SpinState::Waiting;
                    Step::Issue(Op::UncachedLoad { addr: self.addr })
                }
                (SpinState::Waiting, Some(Outcome::Value(v))) => {
                    if self.pred.eval(v) {
                        Step::Ready(v)
                    } else {
                        self.state = SpinState::Backoff;
                        let dist = cfg.target.saturating_sub(v).max(1);
                        let wait = (cfg.base * dist).min(cfg.cap).max(cfg.base);
                        Step::Issue(Op::Delay { cycles: wait })
                    }
                }
                (s, l) => panic!("SpinSub(uncached): unexpected ({s:?}, {l:?})"),
            },
        }
    }
}

/// Mechanism-generic atomic read-modify-write of arbitrary
/// [`AmoKind`] — the generalization of [`FetchAddSub`] that queue locks
/// need (`swap` on the tail pointer, `cas` on release). Supported for
/// LL/SC, Atomic, MAO, and AMO; active messages have no generic RMW
/// handler (their locks are home-mediated instead).
#[derive(Clone, Debug)]
pub struct RmwSub {
    mech: Mechanism,
    kind: AmoKind,
    addr: Addr,
    operand: Word,
    state: FaState,
}

impl RmwSub {
    /// An atomic `kind` on `addr` with `operand`, returning the old value.
    pub fn new(mech: Mechanism, kind: AmoKind, addr: Addr, operand: Word) -> Self {
        assert!(
            mech != Mechanism::ActMsg,
            "active messages have no generic RMW; use home-mediated handlers"
        );
        RmwSub {
            mech,
            kind,
            addr,
            operand,
            state: FaState::Init,
        }
    }

    /// Advance; `last` is the outcome of the previously issued op.
    pub fn poll(&mut self, last: Option<Outcome>) -> Step {
        match (self.state, last) {
            (FaState::Init, _) => match self.mech {
                Mechanism::LlSc => {
                    self.state = FaState::LlWait;
                    Step::Issue(Op::LoadLinked { addr: self.addr })
                }
                Mechanism::Atomic => {
                    self.state = FaState::ReplyWait;
                    Step::Issue(Op::AtomicRmw {
                        kind: self.kind,
                        addr: self.addr,
                        operand: self.operand,
                    })
                }
                Mechanism::Mao => {
                    self.state = FaState::ReplyWait;
                    Step::Issue(Op::Mao {
                        kind: self.kind,
                        addr: self.addr,
                        operand: self.operand,
                    })
                }
                Mechanism::Amo => {
                    self.state = FaState::ReplyWait;
                    Step::Issue(Op::Amo {
                        kind: self.kind,
                        addr: self.addr,
                        operand: self.operand,
                        test: None,
                    })
                }
                Mechanism::ActMsg => unreachable!("rejected in new()"),
            },
            (FaState::LlWait, Some(Outcome::Value(old))) => {
                let new = self.kind.apply(old, self.operand);
                if new == old {
                    // Failed CAS / no-change max: classic LL/SC skips the
                    // store entirely.
                    return Step::Ready(old);
                }
                self.state = FaState::ScWait { old };
                Step::Issue(Op::StoreConditional {
                    addr: self.addr,
                    value: new,
                })
            }
            (FaState::ScWait { old }, Some(Outcome::ScResult(true))) => Step::Ready(old),
            (FaState::ScWait { .. }, Some(Outcome::ScResult(false))) => {
                self.state = FaState::LlWait;
                Step::Issue(Op::LoadLinked { addr: self.addr })
            }
            (FaState::ReplyWait, Some(Outcome::Value(old))) => Step::Ready(old),
            (s, l) => panic!("RmwSub: unexpected ({s:?}, {l:?})"),
        }
    }
}

/// One-shot active message: issue and wait for the ack. Used for
/// home-mediated lock acquire (where the ack is the deferred grant) and
/// release.
#[derive(Clone, Debug)]
pub struct MsgOpSub {
    home: amo_types::NodeId,
    handler: HandlerKind,
    issued: bool,
}

impl MsgOpSub {
    /// Send `handler` to `home` and complete on the ack.
    pub fn new(home: amo_types::NodeId, handler: HandlerKind) -> Self {
        MsgOpSub {
            home,
            handler,
            issued: false,
        }
    }

    /// Advance; `last` is the outcome of the previously issued op.
    pub fn poll(&mut self, last: Option<Outcome>) -> Step {
        if !self.issued {
            self.issued = true;
            return Step::Issue(Op::ActiveMsg {
                home: self.home,
                handler: self.handler,
            });
        }
        match last {
            Some(Outcome::Acked(v)) => Step::Ready(v),
            l => panic!("MsgOpSub: unexpected {l:?}"),
        }
    }
}

/// Active-message polling wait: repeatedly ask the home processor for a
/// service counter's value (a zero-operand fetch-add) until it reaches
/// the target, with proportional backoff between polls.
///
/// This is how an active-message ticket lock waits: the grant state
/// lives at the home processor, not in coherent memory, so waiting
/// costs messages — and under contention the home CPU saturates,
/// acks outrun their timeouts, and retransmissions multiply (the
/// paper's Figure 7 ActMsg traffic blow-up).
#[derive(Clone, Debug)]
pub struct MsgPollSub {
    home: amo_types::NodeId,
    ctr: u16,
    target: Word,
    backoff: BackoffCfg,
    state: SpinState,
    polls: u64,
}

impl MsgPollSub {
    /// Poll `ctr` at `home` until its value reaches `target`.
    pub fn new(home: amo_types::NodeId, ctr: u16, target: Word, backoff: BackoffCfg) -> Self {
        MsgPollSub {
            home,
            ctr,
            target,
            backoff,
            state: SpinState::Init,
            polls: 0,
        }
    }

    /// Deterministic jitter: desynchronizes poll bursts across waiters
    /// (real schedulers and networks do this for free; a lock-step
    /// discrete-event model must do it explicitly).
    fn jitter(&self) -> Cycle {
        let mut x = (self.target << 17) ^ (self.ctr as u64) << 9 ^ self.polls;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x % self.backoff.base.max(1)
    }

    fn poll_op(&self) -> Op {
        Op::ActiveMsg {
            home: self.home,
            handler: HandlerKind::FetchAdd {
                ctr: self.ctr,
                operand: 0,
                publish: None,
            },
        }
    }

    /// Advance; `last` is the outcome of the previously issued op.
    pub fn poll(&mut self, last: Option<Outcome>) -> Step {
        match (self.state, last) {
            (SpinState::Init | SpinState::Backoff, _) => {
                self.state = SpinState::Waiting;
                Step::Issue(self.poll_op())
            }
            (SpinState::Waiting, Some(Outcome::Acked(v))) => {
                self.polls += 1;
                if v >= self.target {
                    Step::Ready(v)
                } else {
                    self.state = SpinState::Backoff;
                    let dist = self.target.saturating_sub(v).max(1);
                    let wait = (self.backoff.base * dist)
                        .min(self.backoff.cap)
                        .max(self.backoff.base)
                        + self.jitter();
                    Step::Issue(Op::Delay { cycles: wait })
                }
            }
            (s, l) => panic!("MsgPollSub: unexpected ({s:?}, {l:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::NodeId;

    fn a() -> Addr {
        Addr::on_node(NodeId(0), 0x1000)
    }

    #[test]
    fn llsc_retries_until_sc_succeeds() {
        let mut fa = FetchAddSub::new(Mechanism::LlSc, a(), 1, 0);
        assert_eq!(fa.poll(None), Step::Issue(Op::LoadLinked { addr: a() }));
        assert_eq!(
            fa.poll(Some(Outcome::Value(5))),
            Step::Issue(Op::StoreConditional {
                addr: a(),
                value: 6
            })
        );
        // SC fails → retry from LL.
        assert_eq!(
            fa.poll(Some(Outcome::ScResult(false))),
            Step::Issue(Op::LoadLinked { addr: a() })
        );
        assert_eq!(
            fa.poll(Some(Outcome::Value(7))),
            Step::Issue(Op::StoreConditional {
                addr: a(),
                value: 8
            })
        );
        assert_eq!(fa.poll(Some(Outcome::ScResult(true))), Step::Ready(7));
    }

    #[test]
    fn atomic_is_single_op() {
        let mut fa = FetchAddSub::new(Mechanism::Atomic, a(), 2, 0);
        assert_eq!(
            fa.poll(None),
            Step::Issue(Op::AtomicRmw {
                kind: AmoKind::FetchAdd,
                addr: a(),
                operand: 2
            })
        );
        assert_eq!(fa.poll(Some(Outcome::Value(4))), Step::Ready(4));
    }

    #[test]
    fn amo_inc_used_for_tested_increments() {
        let mut fa = FetchAddSub::new(Mechanism::Amo, a(), 1, 0).with_test(8);
        match fa.poll(None) {
            Step::Issue(Op::Amo {
                kind: AmoKind::Inc,
                test: Some(8),
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(fa.poll(Some(Outcome::Value(7))), Step::Ready(7));
    }

    #[test]
    fn actmsg_carries_handler() {
        let mut fa = FetchAddSub::new(Mechanism::ActMsg, a(), 1, 3);
        match fa.poll(None) {
            Step::Issue(Op::ActiveMsg {
                home,
                handler:
                    HandlerKind::FetchAdd {
                        ctr: 3,
                        operand: 1,
                        publish: None,
                    },
            }) => assert_eq!(home, NodeId(0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(fa.poll(Some(Outcome::Acked(9))), Step::Ready(9));
    }

    #[test]
    fn release_variants() {
        let mut r = ReleaseSub::new(Mechanism::Atomic, a(), 3);
        assert_eq!(
            r.poll(None),
            Step::Issue(Op::Store {
                addr: a(),
                value: 3
            })
        );
        assert_eq!(r.poll(Some(Outcome::Stored)), Step::Ready(0));

        let mut r = ReleaseSub::new(Mechanism::Amo, a(), 3);
        match r.poll(None) {
            Step::Issue(Op::Amo {
                kind: AmoKind::FetchAdd,
                operand: 1,
                test: None,
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.poll(Some(Outcome::Value(2))), Step::Ready(0));

        let mut r = ReleaseSub::new(Mechanism::Mao, a(), 3);
        match r.poll(None) {
            Step::Issue(Op::Mao {
                kind: AmoKind::FetchAdd,
                operand: 1,
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn coherent_spin_is_one_op() {
        let mut s = SpinSub::coherent(a(), SpinPred::Ge(4));
        assert_eq!(
            s.poll(None),
            Step::Issue(Op::SpinUntil {
                addr: a(),
                pred: SpinPred::Ge(4)
            })
        );
        assert_eq!(s.poll(Some(Outcome::SpinDone(5))), Step::Ready(5));
    }

    #[test]
    fn rmw_swap_and_cas_via_llsc() {
        let mut s = RmwSub::new(Mechanism::LlSc, AmoKind::Swap, a(), 7);
        assert_eq!(s.poll(None), Step::Issue(Op::LoadLinked { addr: a() }));
        assert_eq!(
            s.poll(Some(Outcome::Value(3))),
            Step::Issue(Op::StoreConditional {
                addr: a(),
                value: 7
            })
        );
        assert_eq!(s.poll(Some(Outcome::ScResult(true))), Step::Ready(3));

        // Failed CAS returns without storing.
        let mut c = RmwSub::new(Mechanism::LlSc, AmoKind::Cas { expected: 9 }, a(), 1);
        c.poll(None);
        assert_eq!(c.poll(Some(Outcome::Value(3))), Step::Ready(3));

        // Successful CAS stores.
        let mut c = RmwSub::new(Mechanism::LlSc, AmoKind::Cas { expected: 3 }, a(), 1);
        c.poll(None);
        assert_eq!(
            c.poll(Some(Outcome::Value(3))),
            Step::Issue(Op::StoreConditional {
                addr: a(),
                value: 1
            })
        );
    }

    #[test]
    fn rmw_amo_issues_untested_amo() {
        let mut s = RmwSub::new(Mechanism::Amo, AmoKind::Swap, a(), 7);
        match s.poll(None) {
            Step::Issue(Op::Amo {
                kind: AmoKind::Swap,
                operand: 7,
                test: None,
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.poll(Some(Outcome::Value(0))), Step::Ready(0));
    }

    #[test]
    #[should_panic(expected = "no generic RMW")]
    fn rmw_rejects_actmsg() {
        let _ = RmwSub::new(Mechanism::ActMsg, AmoKind::Swap, a(), 1);
    }

    #[test]
    fn msg_poll_backs_off_and_completes() {
        let cfg = BackoffCfg {
            base: 500,
            cap: 10_000,
            target: 3,
        };
        let mut m = MsgPollSub::new(NodeId(1), 2, 3, cfg);
        match m.poll(None) {
            Step::Issue(Op::ActiveMsg {
                home,
                handler:
                    HandlerKind::FetchAdd {
                        ctr: 2,
                        operand: 0,
                        publish: None,
                    },
            }) => assert_eq!(home, NodeId(1)),
            other => panic!("unexpected {other:?}"),
        }
        // Value 1: two away → 1000-cycle proportional backoff plus
        // deterministic jitter below one base unit.
        match m.poll(Some(Outcome::Acked(1))) {
            Step::Issue(Op::Delay { cycles }) => {
                assert!((1000..1500).contains(&cycles), "{cycles}")
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            m.poll(Some(Outcome::Delayed)),
            Step::Issue(Op::ActiveMsg { .. })
        ));
        assert_eq!(m.poll(Some(Outcome::Acked(3))), Step::Ready(3));
    }

    #[test]
    fn uncached_spin_backs_off_proportionally() {
        let cfg = BackoffCfg {
            base: 100,
            cap: 10_000,
            target: 10,
        };
        let mut s = SpinSub::uncached(a(), SpinPred::Ge(10), cfg);
        assert_eq!(s.poll(None), Step::Issue(Op::UncachedLoad { addr: a() }));
        // Value 4: six away from the target → 600-cycle backoff.
        assert_eq!(
            s.poll(Some(Outcome::Value(4))),
            Step::Issue(Op::Delay { cycles: 600 })
        );
        assert_eq!(
            s.poll(Some(Outcome::Delayed)),
            Step::Issue(Op::UncachedLoad { addr: a() })
        );
        assert_eq!(s.poll(Some(Outcome::Value(10))), Step::Ready(10));
    }
}
