//! Synchronization algorithms — the paper's evaluation subjects.
//!
//! Every algorithm is implemented once, parameterized by the
//! [`Mechanism`] providing its atomic fetch-and-add, its release write,
//! and its spin:
//!
//! | mechanism | fetch-add | release | spin |
//! |---|---|---|---|
//! | `LlSc` | LL/SC retry loop | coherent store | cached, invalidate-wakes |
//! | `Atomic` | processor RMW (GetX) | coherent store | cached |
//! | `ActMsg` | handler on home CPU | coherent store (handler publish for barriers) | cached |
//! | `Mao` | uncached AMU op | uncached AMU fetch-add | remote uncached + backoff (locks), coherent (optimized barrier) |
//! | `Amo` | AMU op w/ fine-grained get | AMU fetch-add w/ immediate put | cached, word-update-wakes |
//!
//! The algorithms themselves are the paper's: centralized barriers
//! (naive and spin-variable, Fig. 3), two-level software combining-tree
//! barriers (Yew et al.), ticket locks, and Anderson array-based queuing
//! locks (Mellor-Crummey & Scott). All use *cumulative* counts across
//! episodes/rounds, so no reset races exist and the AMO test value is
//! simply `episode × participants`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod dissemination;
pub mod ktree;
pub mod layout;
pub mod lock;
pub mod mcs;
pub mod mechanism;
pub mod tree;

pub use barrier::{BarrierKernel, BarrierSpec, BarrierStyle};
pub use dissemination::{DisseminationKernel, DisseminationSpec};
pub use ktree::{KTreeKernel, KTreeSpec};
pub use layout::VarAlloc;
pub use lock::{ArrayLockKernel, ArrayLockSpec, TicketLockKernel, TicketLockSpec};
pub use mcs::{McsLockKernel, McsLockSpec};
pub use mechanism::Mechanism;
pub use tree::{TreeBarrierKernel, TreeBarrierSpec};
