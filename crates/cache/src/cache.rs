//! A generic set-associative cache with LRU replacement, block data, and
//! coherence-state bookkeeping.

use crate::line::LineState;
use amo_types::{BlockData, CacheConfig, Word};

/// One resident line.
#[derive(Clone, Debug)]
struct Line {
    /// Block-aligned base address (full address bits, acts as the tag).
    block: u64,
    state: LineState,
    data: BlockData,
    lru: u64,
}

/// A line pushed out by [`SetAssocCache::insert`]. The caller must write
/// back `data` if `state` was `Modified`.
#[derive(Clone, Debug)]
pub struct Evicted {
    /// Block-aligned base address of the victim.
    pub block: u64,
    /// Victim's state at eviction.
    pub state: LineState,
    /// Victim's data.
    pub data: BlockData,
}

/// Set-associative cache, addressed by block-aligned base addresses.
///
/// The cache stores whole simulated blocks (with data) and their coherence
/// states. It is deliberately agnostic about *which* level it is — the
/// hierarchy wires two of these together.
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        SetAssocCache {
            cfg,
            sets: (0..sets).map(|_| Vec::with_capacity(cfg.ways)).collect(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// (hits, misses) observed by [`Self::probe`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    #[inline]
    fn set_index(&self, block: u64) -> usize {
        ((block / self.cfg.line_bytes) as usize) & (self.sets.len() - 1)
    }

    fn find(&mut self, block: u64) -> Option<&mut Line> {
        let idx = self.set_index(block);
        self.sets[idx].iter_mut().find(|l| l.block == block)
    }

    /// Look up a block, updating LRU and hit statistics. Returns its state.
    pub fn probe(&mut self, block: u64) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        let state = self.find(block).map(|line| {
            line.lru = tick;
            line.state
        });
        match state {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        state
    }

    /// State of a block without touching LRU or statistics.
    pub fn peek_state(&self, block: u64) -> Option<LineState> {
        let idx = self.set_index(block);
        self.sets[idx]
            .iter()
            .find(|l| l.block == block)
            .map(|l| l.state)
    }

    /// Read a word from a resident block. `word` indexes into the block.
    pub fn read_word(&mut self, block: u64, word: usize) -> Option<Word> {
        self.find(block).map(|l| l.data.word(word))
    }

    /// Write a word into a resident block, transitioning
    /// Exclusive→Modified. Returns false if the block is absent or not
    /// writable.
    pub fn write_word(&mut self, block: u64, word: usize, value: Word) -> bool {
        match self.find(block) {
            Some(line) if line.state.can_write() => {
                line.data.set_word(word, value);
                line.state = LineState::Modified;
                true
            }
            _ => false,
        }
    }

    /// Apply a pushed word update in place (fine-grained "put" landing).
    /// Does not change the coherence state. Returns true if applied.
    pub fn apply_word_update(&mut self, block: u64, word: usize, value: Word) -> bool {
        match self.find(block) {
            Some(line) => {
                line.data.set_word(word, value);
                true
            }
            None => false,
        }
    }

    /// Insert (or replace) a block. Returns the victim if one was evicted.
    pub fn insert(&mut self, block: u64, state: LineState, data: BlockData) -> Option<Evicted> {
        assert_eq!(
            data.len() as u64 * 8,
            self.cfg.line_bytes,
            "data size must match line size"
        );
        self.insert_line(block, state, data)
    }

    /// Insert (or replace) a block with no data — for tag-only levels
    /// (the L1 latency filter) whose values always come from the level
    /// below. Allocation-free: an empty [`BlockData`] owns no storage.
    pub fn insert_tag(&mut self, block: u64, state: LineState) -> Option<Evicted> {
        self.insert_line(block, state, BlockData::empty())
    }

    fn insert_line(&mut self, block: u64, state: LineState, data: BlockData) -> Option<Evicted> {
        assert!(state.is_valid(), "cannot insert an Invalid line");
        self.tick += 1;
        let tick = self.tick;
        if let Some(line) = self.find(block) {
            line.state = state;
            line.data = data;
            line.lru = tick;
            return None;
        }
        let ways = self.cfg.ways;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let mut victim = None;
        if set.len() == ways {
            let v = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let line = set.swap_remove(v);
            victim = Some(Evicted {
                block: line.block,
                state: line.state,
                data: line.data,
            });
        }
        set.push(Line {
            block,
            state,
            data,
            lru: tick,
        });
        victim
    }

    /// Remove a block entirely (invalidation). Returns its state and data
    /// if it was present.
    pub fn invalidate(&mut self, block: u64) -> Option<(LineState, BlockData)> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|l| l.block == block)?;
        let line = set.swap_remove(pos);
        Some((line.state, line.data))
    }

    /// Downgrade Exclusive/Modified to Shared (intervention for a reader).
    /// Returns the block data if the line was dirty (home needs it).
    pub fn downgrade(&mut self, block: u64) -> Option<Option<BlockData>> {
        let line = self.find(block)?;
        let dirty = matches!(line.state, LineState::Modified);
        line.state = LineState::Shared;
        Some(if dirty { Some(line.data.clone()) } else { None })
    }

    /// Change the state of a resident line (e.g. upgrade Shared→Exclusive
    /// when an UpgradeAck arrives). Returns false if the line is absent.
    pub fn set_state(&mut self, block: u64, state: LineState) -> bool {
        match self.find(block) {
            Some(line) => {
                line.state = state;
                true
            }
            None => false,
        }
    }

    /// Number of resident lines (diagnostics).
    pub fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::CacheConfig;

    fn small() -> SetAssocCache {
        // 2 sets x 2 ways x 128B lines = 512B cache.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 128,
            ways: 2,
            hit_latency: 10,
        })
    }

    fn blk(data: &[(usize, Word)]) -> BlockData {
        let mut b = BlockData::zeroed(16);
        for &(i, v) in data {
            b.set_word(i, v);
        }
        b
    }

    #[test]
    fn insert_probe_read() {
        let mut c = small();
        assert_eq!(c.probe(0), None);
        c.insert(0, LineState::Shared, blk(&[(3, 42)]));
        assert_eq!(c.probe(0), Some(LineState::Shared));
        assert_eq!(c.read_word(0, 3), Some(42));
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn write_requires_ownership() {
        let mut c = small();
        c.insert(0, LineState::Shared, blk(&[]));
        assert!(!c.write_word(0, 0, 9), "shared line must refuse writes");
        c.set_state(0, LineState::Exclusive);
        assert!(c.write_word(0, 0, 9));
        assert_eq!(c.peek_state(0), Some(LineState::Modified));
        assert_eq!(c.read_word(0, 0), Some(9));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Set index = (block/128) & 1: blocks 0, 256, 512 share set 0.
        c.insert(0, LineState::Shared, blk(&[]));
        c.insert(256, LineState::Shared, blk(&[]));
        c.probe(0); // touch 0 so 256 is LRU
        let ev = c
            .insert(512, LineState::Shared, blk(&[]))
            .expect("eviction");
        assert_eq!(ev.block, 256);
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn eviction_returns_dirty_data() {
        let mut c = small();
        c.insert(0, LineState::Exclusive, blk(&[]));
        c.write_word(0, 1, 77);
        c.insert(256, LineState::Shared, blk(&[]));
        let ev = c
            .insert(512, LineState::Shared, blk(&[]))
            .expect("eviction");
        // LRU is block 0 (inserted, then written — both touch it; 256 later).
        // write_word touches via find without lru bump, so victim is 0.
        assert_eq!(ev.block, 0);
        assert_eq!(ev.state, LineState::Modified);
        assert_eq!(ev.data.word(1), 77);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(0, LineState::Modified, blk(&[(0, 5)]));
        let (st, data) = c.invalidate(0).expect("was present");
        assert_eq!(st, LineState::Modified);
        assert_eq!(data.word(0), 5);
        assert_eq!(c.probe(0), None);
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn downgrade_reports_dirtiness() {
        let mut c = small();
        c.insert(0, LineState::Exclusive, blk(&[]));
        assert_eq!(
            c.downgrade(0),
            Some(None),
            "clean exclusive: no data needed"
        );
        c.insert(128, LineState::Exclusive, blk(&[]));
        c.write_word(128, 2, 3);
        let d = c.downgrade(128).expect("present");
        assert_eq!(d.expect("dirty data").word(2), 3);
        assert_eq!(c.peek_state(128), Some(LineState::Shared));
    }

    #[test]
    fn word_update_preserves_state() {
        let mut c = small();
        c.insert(0, LineState::Shared, blk(&[]));
        assert!(c.apply_word_update(0, 4, 99));
        assert_eq!(c.peek_state(0), Some(LineState::Shared));
        assert_eq!(c.read_word(0, 4), Some(99));
        assert!(
            !c.apply_word_update(128, 0, 1),
            "absent block ignores updates"
        );
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = small();
        c.insert(0, LineState::Shared, blk(&[(0, 1)]));
        assert!(c.insert(0, LineState::Exclusive, blk(&[(0, 2)])).is_none());
        assert_eq!(c.peek_state(0), Some(LineState::Exclusive));
        assert_eq!(c.read_word(0, 0), Some(2));
        assert_eq!(c.resident(), 1);
    }
}
