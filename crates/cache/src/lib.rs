//! Processor-side cache structures.
//!
//! Coherence state is kept at L2-block granularity (the paper's 128-byte
//! blocks); the L1 is an inclusive latency filter holding 32-byte
//! sub-blocks of L2 lines. Word updates pushed by the home directory (the
//! AMO "put" fanout) are applied in place to both levels without changing
//! coherence state — that is precisely the paper's fine-grained update
//! semantics. A small per-node remote access cache ([`rac::Rac`]) catches
//! updates so they can be absorbed "without processor modifications".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod line;
pub mod llsc;
pub mod rac;

pub use cache::{Evicted, SetAssocCache};
pub use hierarchy::{CacheHierarchy, Probe};
pub use line::LineState;
pub use llsc::LlReservation;
pub use rac::Rac;
