//! Cache-line coherence states.

/// MESI-style state of a cached block, as seen by the owning cache.
///
/// `Exclusive` and `Modified` both mean "sole copy"; `Modified` is dirty
/// with respect to home memory and must be written back on eviction or
/// returned on intervention.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineState {
    /// Not present (only used transiently; absent lines are usually just
    /// missing from the cache).
    Invalid,
    /// Read-only copy; other caches may also hold the block.
    Shared,
    /// Sole clean copy; may be written without a coherence transaction
    /// (silently upgrading to `Modified`).
    Exclusive,
    /// Sole dirty copy.
    Modified,
}

impl LineState {
    /// True for states granting write permission.
    #[inline]
    pub fn can_write(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }

    /// True for any valid (readable) state.
    #[inline]
    pub fn is_valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_permission() {
        assert!(!LineState::Invalid.can_write());
        assert!(!LineState::Shared.can_write());
        assert!(LineState::Exclusive.can_write());
        assert!(LineState::Modified.can_write());
    }

    #[test]
    fn validity() {
        assert!(!LineState::Invalid.is_valid());
        assert!(LineState::Shared.is_valid());
    }
}
