//! Load-linked / store-conditional reservation tracking.
//!
//! The paper's baseline synchronization uses MIPS-style LL/SC: an LL
//! establishes a reservation on the loaded block; any loss of that block
//! (invalidation, intervention, eviction) before the SC completes makes
//! the SC fail. One reservation per processor, as on real MIPS.

use amo_types::BlockAddr;

/// A processor's (single) LL reservation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LlReservation {
    block: Option<BlockAddr>,
}

impl LlReservation {
    /// No reservation held.
    pub fn new() -> Self {
        Self::default()
    }

    /// An LL to `block` replaces any previous reservation.
    pub fn set(&mut self, block: BlockAddr) {
        self.block = Some(block);
    }

    /// True if a reservation on `block` is currently held.
    pub fn holds(&self, block: BlockAddr) -> bool {
        self.block == Some(block)
    }

    /// The block was lost (invalidated / downgraded / evicted): clear the
    /// reservation if it matches. Returns true if a reservation was lost.
    pub fn lose(&mut self, block: BlockAddr) -> bool {
        if self.block == Some(block) {
            self.block = None;
            true
        } else {
            false
        }
    }

    /// Consume the reservation at SC time. Returns true (SC may proceed)
    /// only if the reservation on `block` was still intact.
    pub fn consume(&mut self, block: BlockAddr) -> bool {
        let ok = self.holds(block);
        self.block = None;
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(0x80);
    const C: BlockAddr = BlockAddr(0x100);

    #[test]
    fn reservation_lifecycle() {
        let mut r = LlReservation::new();
        assert!(!r.holds(B));
        r.set(B);
        assert!(r.holds(B));
        assert!(r.consume(B));
        assert!(!r.holds(B), "consume clears");
        assert!(!r.consume(B), "second SC fails");
    }

    #[test]
    fn invalidation_kills_reservation() {
        let mut r = LlReservation::new();
        r.set(B);
        assert!(!r.lose(C), "unrelated block does not clear");
        assert!(r.lose(B));
        assert!(!r.consume(B));
    }

    #[test]
    fn new_ll_replaces_old() {
        let mut r = LlReservation::new();
        r.set(B);
        r.set(C);
        assert!(!r.holds(B));
        assert!(r.consume(C));
    }
}
