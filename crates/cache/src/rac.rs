//! Remote access cache (RAC).
//!
//! The paper assumes "each node contains a remote access cache where
//! updates can be pushed so that word-grained updates can be supported
//! without processor modifications" (Sec. 1). In this model the RAC is a
//! small per-node word store: every word update arriving at a node is
//! recorded here in addition to being applied to any resident processor
//! cache lines, so a processor whose copy raced away can still observe
//! the released value locally.

use amo_types::{Addr, Word};

/// One RAC entry.
#[derive(Clone, Copy, Debug)]
struct Entry {
    addr: Addr,
    value: Word,
    lru: u64,
}

/// A small fully-associative word cache with LRU replacement.
pub struct Rac {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
}

impl Rac {
    /// A RAC holding up to `capacity` words.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Rac {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
        }
    }

    /// Record a pushed word update.
    pub fn push_update(&mut self, addr: Addr, value: Word) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|e| e.addr == addr) {
            e.value = value;
            e.lru = tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full RAC has a victim");
            self.entries.swap_remove(victim);
        }
        self.entries.push(Entry {
            addr,
            value,
            lru: tick,
        });
    }

    /// Look up the most recent pushed value for `addr`.
    pub fn lookup(&mut self, addr: Addr) -> Option<Word> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|e| e.addr == addr).map(|e| {
            e.lru = tick;
            e.value
        })
    }

    /// Drop any entry for `addr` (e.g. the word's block was invalidated,
    /// making the pushed value stale).
    pub fn invalidate(&mut self, addr: Addr) {
        self.entries.retain(|e| e.addr != addr);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the RAC holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::NodeId;

    fn a(off: u64) -> Addr {
        Addr::on_node(NodeId(0), off * 8)
    }

    #[test]
    fn push_and_lookup() {
        let mut r = Rac::new(4);
        r.push_update(a(1), 10);
        r.push_update(a(2), 20);
        assert_eq!(r.lookup(a(1)), Some(10));
        assert_eq!(r.lookup(a(3)), None);
    }

    #[test]
    fn update_in_place() {
        let mut r = Rac::new(2);
        r.push_update(a(1), 10);
        r.push_update(a(1), 11);
        assert_eq!(r.lookup(a(1)), Some(11));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut r = Rac::new(2);
        r.push_update(a(1), 1);
        r.push_update(a(2), 2);
        r.lookup(a(1)); // make a(2) the LRU
        r.push_update(a(3), 3);
        assert_eq!(r.lookup(a(2)), None, "LRU entry evicted");
        assert_eq!(r.lookup(a(1)), Some(1));
        assert_eq!(r.lookup(a(3)), Some(3));
    }

    #[test]
    fn invalidate_drops_entry() {
        let mut r = Rac::new(2);
        r.push_update(a(1), 1);
        r.invalidate(a(1));
        assert!(r.is_empty());
        assert_eq!(r.lookup(a(1)), None);
    }
}
