//! Two-level private cache hierarchy.
//!
//! Coherence state and data live at L2 granularity (128-byte blocks). The
//! L1 is an inclusive, tag-only latency filter over 32-byte sub-blocks:
//! whether a word is "in the L1" decides the access latency, but the data
//! is always read from the L2 copy, so the two levels can never disagree.

use crate::cache::{Evicted, SetAssocCache};
use crate::line::LineState;
use amo_types::{Addr, BlockAddr, BlockData, CacheConfig, Word};

/// Which level satisfied a probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Probe {
    /// Word present in L1 (and necessarily L2).
    L1 {
        /// Coherence state of the containing L2 block.
        state: LineState,
        /// Current value of the word.
        value: Word,
    },
    /// Word present in L2 only; the L1 sub-block has been filled.
    L2 {
        /// Coherence state of the containing L2 block.
        state: LineState,
        /// Current value of the word.
        value: Word,
    },
    /// Word not cached; a coherence transaction is required.
    Miss,
}

/// A private L1+L2 pair belonging to one processor.
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l1_line: u64,
    l2_line: u64,
}

impl CacheHierarchy {
    /// Build an empty hierarchy.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert!(
            l1.line_bytes <= l2.line_bytes,
            "inclusive hierarchy needs L1 lines <= L2 lines"
        );
        CacheHierarchy {
            l1_line: l1.line_bytes,
            l2_line: l2.line_bytes,
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
        }
    }

    /// The L2 block containing `addr`.
    #[inline]
    pub fn l2_block(&self, addr: Addr) -> BlockAddr {
        addr.block(self.l2_line)
    }

    #[inline]
    fn l1_block(&self, addr: Addr) -> u64 {
        addr.block(self.l1_line).0
    }

    /// Probe for a load. L2 hits fill the L1 sub-block (that is what a
    /// real L1 fill does and it keeps subsequent spin reads at L1 cost).
    pub fn probe_load(&mut self, addr: Addr) -> Probe {
        let l2b = self.l2_block(addr);
        let word = addr.word_in_block(self.l2_line);
        let Some(state) = self.l2.probe(l2b.0) else {
            // Inclusivity: nothing can be in L1 either.
            return Probe::Miss;
        };
        let value = self
            .l2
            .read_word(l2b.0, word)
            .expect("probed line has data");
        let l1b = self.l1_block(addr);
        if self.l1.probe(l1b).is_some() {
            Probe::L1 { state, value }
        } else {
            self.fill_l1(l1b, state);
            Probe::L2 { state, value }
        }
    }

    fn fill_l1(&mut self, l1b: u64, state: LineState) {
        // Tag-only: the L1 data is never read, values come from L2, so
        // the fill stores no block (keeps the steady-state allocation-free).
        self.l1.insert_tag(l1b, state);
    }

    /// Probe for a store of `value`. On a hit with write permission the
    /// store is performed. Returns the probe result *before* any upgrade:
    /// `L1`/`L2` with a non-writable state means "present Shared — issue
    /// an Upgrade".
    pub fn probe_store(&mut self, addr: Addr, value: Word) -> Probe {
        let l2b = self.l2_block(addr);
        let word = addr.word_in_block(self.l2_line);
        let Some(state) = self.l2.probe(l2b.0) else {
            return Probe::Miss;
        };
        let l1b = self.l1_block(addr);
        let in_l1 = self.l1.probe(l1b).is_some();
        if state.can_write() {
            assert!(self.l2.write_word(l2b.0, word, value));
            if !in_l1 {
                self.fill_l1(l1b, LineState::Modified);
            }
        }
        let current = self.l2.read_word(l2b.0, word).expect("line present");
        if in_l1 {
            Probe::L1 {
                state,
                value: current,
            }
        } else {
            Probe::L2 {
                state,
                value: current,
            }
        }
    }

    /// Install a block arriving from the home node. Returns the evicted
    /// victim, if any — the caller must send a writeback for Exclusive or
    /// Modified victims (the directory relies on eviction notification to
    /// track owners) and may drop Shared victims silently.
    pub fn fill_block(
        &mut self,
        block: BlockAddr,
        state: LineState,
        data: BlockData,
        accessed: Addr,
    ) -> Option<Evicted> {
        debug_assert_eq!(self.l2_block(accessed), block);
        let victim = self.l2.insert(block.0, state, data);
        if let Some(ev) = &victim {
            self.drop_l1_range(ev.block);
        }
        self.fill_l1(self.l1_block(accessed), state);
        victim
    }

    fn drop_l1_range(&mut self, l2_block: u64) {
        let mut a = l2_block;
        while a < l2_block + self.l2_line {
            self.l1.invalidate(a);
            a += self.l1_line;
        }
    }

    /// Invalidate a whole L2 block (home sent Inv). Returns `(state, data)`
    /// if it was present — data matters when the line was Modified.
    pub fn invalidate_block(&mut self, block: BlockAddr) -> Option<(LineState, BlockData)> {
        self.drop_l1_range(block.0);
        self.l2.invalidate(block.0)
    }

    /// Downgrade an owned block to Shared. `Some(Some(data))` if it was
    /// dirty and home needs the data, `Some(None)` if clean, `None` if
    /// absent.
    pub fn downgrade_block(&mut self, block: BlockAddr) -> Option<Option<BlockData>> {
        let r = self.l2.downgrade(block.0);
        if r.is_some() {
            let mut a = block.0;
            while a < block.0 + self.l2_line {
                self.l1.set_state(a, LineState::Shared);
                a += self.l1_line;
            }
        }
        r
    }

    /// Promote a Shared block to Exclusive (UpgradeAck arrived).
    pub fn grant_exclusive(&mut self, block: BlockAddr) -> bool {
        self.l2.set_state(block.0, LineState::Exclusive)
    }

    /// Apply a pushed word update. State is untouched. Returns true if
    /// the word's block is resident.
    pub fn apply_word_update(&mut self, addr: Addr, value: Word) -> bool {
        let l2b = self.l2_block(addr);
        let word = addr.word_in_block(self.l2_line);
        self.l2.apply_word_update(l2b.0, word, value)
    }

    /// Write a word into an owned resident block (used by local RMW ops
    /// after ownership has been acquired).
    pub fn write_owned_word(&mut self, addr: Addr, value: Word) -> bool {
        let l2b = self.l2_block(addr);
        let word = addr.word_in_block(self.l2_line);
        self.l2.write_word(l2b.0, word, value)
    }

    /// Read a word from a resident block, regardless of state.
    pub fn read_word(&mut self, addr: Addr) -> Option<Word> {
        let l2b = self.l2_block(addr);
        let word = addr.word_in_block(self.l2_line);
        self.l2.read_word(l2b.0, word)
    }

    /// Coherence state of the block containing `addr`, if resident.
    pub fn state_of(&self, addr: Addr) -> Option<LineState> {
        self.l2.peek_state(self.l2_block(addr).0)
    }

    /// (l1_hits, l1_misses, l2_hits, l2_misses).
    pub fn hit_stats(&self) -> (u64, u64, u64, u64) {
        let (h1, m1) = self.l1.hit_stats();
        let (h2, m2) = self.l2.hit_stats();
        (h1, m1, h2, m2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::{NodeId, SystemConfig};

    fn hier() -> CacheHierarchy {
        let c = SystemConfig::default();
        CacheHierarchy::new(c.l1, c.l2)
    }

    fn addr(off: u64) -> Addr {
        Addr::on_node(NodeId(1), off)
    }

    fn block16(vals: &[(usize, Word)]) -> BlockData {
        let mut b = BlockData::zeroed(16);
        for &(i, v) in vals {
            b.set_word(i, v);
        }
        b
    }

    #[test]
    fn miss_then_fill_then_l1_hit() {
        let mut h = hier();
        let a = addr(0x100);
        assert_eq!(h.probe_load(a), Probe::Miss);
        let blk = h.l2_block(a);
        assert!(h
            .fill_block(blk, LineState::Shared, block16(&[(0, 7)]), a)
            .is_none());
        // First probe after fill: L1 was filled by fill_block.
        assert_eq!(
            h.probe_load(a),
            Probe::L1 {
                state: LineState::Shared,
                value: 7
            }
        );
    }

    #[test]
    fn l2_hit_fills_l1_subblock() {
        let mut h = hier();
        let a = addr(0x100); // word 0 of block, L1 sub-block 0
        let b = addr(0x140); // different L2 block? no: 0x140 is next block at 128B... use same block, different sub-block
        let a2 = addr(0x120); // 32 bytes in: word 4, second L1 sub-block of same L2 block
        let blk = h.l2_block(a);
        assert_eq!(h.l2_block(a2), blk);
        h.fill_block(blk, LineState::Shared, block16(&[(4, 9)]), a);
        // a2's sub-block is not in L1 yet → L2 hit, then L1 hit.
        assert_eq!(
            h.probe_load(a2),
            Probe::L2 {
                state: LineState::Shared,
                value: 9
            }
        );
        assert_eq!(
            h.probe_load(a2),
            Probe::L1 {
                state: LineState::Shared,
                value: 9
            }
        );
        let _ = b;
    }

    #[test]
    fn store_needs_ownership() {
        let mut h = hier();
        let a = addr(0x200);
        let blk = h.l2_block(a);
        h.fill_block(blk, LineState::Shared, block16(&[]), a);
        // Shared: store does not happen, value unchanged.
        match h.probe_store(a, 5) {
            Probe::L1 { state, value } => {
                assert_eq!(state, LineState::Shared);
                assert_eq!(value, 0);
            }
            p => panic!("unexpected {p:?}"),
        }
        h.grant_exclusive(blk);
        match h.probe_store(a, 5) {
            Probe::L1 { state, value } => {
                assert!(state.can_write());
                assert_eq!(value, 5);
            }
            p => panic!("unexpected {p:?}"),
        }
        assert_eq!(h.state_of(a), Some(LineState::Modified));
    }

    #[test]
    fn invalidate_clears_both_levels() {
        let mut h = hier();
        let a = addr(0x300);
        let blk = h.l2_block(a);
        h.fill_block(blk, LineState::Exclusive, block16(&[]), a);
        h.probe_store(a, 1);
        let (st, data) = h.invalidate_block(blk).expect("present");
        assert_eq!(st, LineState::Modified);
        assert_eq!(data.word(0), 1);
        assert_eq!(h.probe_load(a), Probe::Miss);
    }

    #[test]
    fn word_update_applies_in_place() {
        let mut h = hier();
        let a = addr(0x400);
        let blk = h.l2_block(a);
        h.fill_block(blk, LineState::Shared, block16(&[]), a);
        assert!(h.apply_word_update(a.offset_by(8), 77));
        assert_eq!(h.state_of(a), Some(LineState::Shared));
        assert_eq!(h.read_word(a.offset_by(8)), Some(77));
        assert!(!h.apply_word_update(addr(0x1000), 1));
    }

    #[test]
    fn downgrade_returns_dirty_data_once() {
        let mut h = hier();
        let a = addr(0x500);
        let blk = h.l2_block(a);
        h.fill_block(blk, LineState::Exclusive, block16(&[]), a);
        h.probe_store(a, 3);
        let d = h.downgrade_block(blk).expect("present").expect("dirty");
        assert_eq!(d.word(0), 3);
        assert_eq!(h.state_of(a), Some(LineState::Shared));
        // Second downgrade: already Shared, clean.
        assert_eq!(h.downgrade_block(blk), Some(None));
    }
}
