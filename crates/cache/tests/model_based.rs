//! Model-based property tests: drive the cache hierarchy with random
//! operation sequences and check it against a trivially-correct
//! reference (a flat map of word values plus residency bookkeeping).

use amo_cache::{CacheHierarchy, LineState, Probe};
use amo_types::{Addr, BlockData, NodeId, SystemConfig, Word};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum CacheOp {
    /// Fill block `b` (of a small working set) with a fresh value seed,
    /// Shared or Exclusive.
    Fill { b: u8, exclusive: bool, seed: Word },
    /// Load a word of block `b`.
    Load { b: u8, w: u8 },
    /// Store to a word of block `b` (only applies if writable).
    Store { b: u8, w: u8, v: Word },
    /// Invalidate block `b`.
    Invalidate { b: u8 },
    /// Downgrade block `b` to Shared.
    Downgrade { b: u8 },
    /// Apply a pushed word update.
    Update { b: u8, w: u8, v: Word },
}

fn arb_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u8..6, any::<bool>(), 1u64..1000).prop_map(|(b, exclusive, seed)| CacheOp::Fill {
            b,
            exclusive,
            seed
        }),
        (0u8..6, 0u8..16).prop_map(|(b, w)| CacheOp::Load { b, w }),
        (0u8..6, 0u8..16, 1u64..1000).prop_map(|(b, w, v)| CacheOp::Store { b, w, v }),
        (0u8..6).prop_map(|b| CacheOp::Invalidate { b }),
        (0u8..6).prop_map(|b| CacheOp::Downgrade { b }),
        (0u8..6, 0u8..16, 1u64..1000).prop_map(|(b, w, v)| CacheOp::Update { b, w, v }),
    ]
}

/// Word-accurate reference: which blocks are resident (and writable),
/// and every resident word's value.
#[derive(Default)]
struct Reference {
    resident: HashMap<u8, bool>, // block -> writable
    words: HashMap<(u8, u8), Word>,
}

fn block_addr(b: u8) -> Addr {
    // Distinct 128-byte blocks on one node.
    Addr::on_node(NodeId(0), 0x4000 + b as u64 * 128)
}

fn word_addr(b: u8, w: u8) -> Addr {
    block_addr(b).offset_by(w as u64 * 8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn hierarchy_matches_reference(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let cfg = SystemConfig::default();
        let mut h = CacheHierarchy::new(cfg.l1, cfg.l2);
        let mut model = Reference::default();
        // The 6-block working set fits comfortably: no capacity
        // evictions can occur, so residency is fully model-predictable.
        for op in ops {
            match op {
                CacheOp::Fill { b, exclusive, seed } => {
                    let mut data = BlockData::zeroed(16);
                    for w in 0..16u8 {
                        data.set_word(w as usize, seed + w as Word);
                        model.words.insert((b, w), seed + w as Word);
                    }
                    let state = if exclusive { LineState::Exclusive } else { LineState::Shared };
                    let victim = h.fill_block(
                        h.l2_block(block_addr(b)),
                        state,
                        data,
                        block_addr(b),
                    );
                    prop_assert!(victim.is_none(), "working set must not evict");
                    model.resident.insert(b, exclusive);
                }
                CacheOp::Load { b, w } => {
                    let got = h.read_word(word_addr(b, w));
                    match model.resident.get(&b) {
                        Some(_) => {
                            prop_assert_eq!(got, model.words.get(&(b, w)).copied());
                        }
                        None => prop_assert_eq!(got, None),
                    }
                }
                CacheOp::Store { b, w, v } => {
                    let ok = h.write_owned_word(word_addr(b, w), v);
                    let writable = model.resident.get(&b).copied().unwrap_or(false);
                    prop_assert_eq!(ok, writable, "stores only hit writable lines");
                    if writable {
                        model.words.insert((b, w), v);
                    }
                }
                CacheOp::Invalidate { b } => {
                    let out = h.invalidate_block(h.l2_block(block_addr(b)));
                    prop_assert_eq!(out.is_some(), model.resident.contains_key(&b));
                    if let Some((_, data)) = out {
                        // The surrendered data must carry our latest values.
                        for w in 0..16u8 {
                            prop_assert_eq!(
                                data.word(w as usize),
                                model.words[&(b, w)],
                                "invalidation data mismatch at word {}", w
                            );
                        }
                    }
                    model.resident.remove(&b);
                }
                CacheOp::Downgrade { b } => {
                    let out = h.downgrade_block(h.l2_block(block_addr(b)));
                    prop_assert_eq!(out.is_some(), model.resident.contains_key(&b));
                    if let std::collections::hash_map::Entry::Occupied(mut e) =
                        model.resident.entry(b)
                    {
                        e.insert(false);
                        // A dirty downgrade must surrender current values.
                        if let Some(Some(data)) = out {
                            for w in 0..16u8 {
                                prop_assert_eq!(data.word(w as usize), model.words[&(b, w)]);
                            }
                        }
                    }
                }
                CacheOp::Update { b, w, v } => {
                    let applied = h.apply_word_update(word_addr(b, w), v);
                    prop_assert_eq!(applied, model.resident.contains_key(&b));
                    if applied {
                        model.words.insert((b, w), v);
                        // Updates never change coherence state.
                        let writable = model.resident[&b];
                        let state = h.state_of(block_addr(b)).expect("resident");
                        prop_assert_eq!(state.can_write(), writable);
                    }
                }
            }
            // Global invariant: residency and writability agree with the
            // model after every operation.
            for b in 0u8..6 {
                let state = h.state_of(block_addr(b));
                match model.resident.get(&b) {
                    None => prop_assert!(state.is_none(), "block {b} should be absent"),
                    Some(&writable) => {
                        let s = state.expect("resident block");
                        // Writability may only exceed the model after a
                        // store promoted Exclusive to Modified (same
                        // permission class).
                        prop_assert_eq!(s.can_write(), writable, "block {} perms", b);
                    }
                }
            }
        }
    }

    /// Probe results always carry the value the last write/update left.
    #[test]
    fn probe_values_track_writes(
        writes in proptest::collection::vec((0u8..16, 1u64..100), 1..40),
    ) {
        let cfg = SystemConfig::default();
        let mut h = CacheHierarchy::new(cfg.l1, cfg.l2);
        let b = block_addr(0);
        h.fill_block(h.l2_block(b), LineState::Exclusive, BlockData::zeroed(16), b);
        let mut last = [0u64; 16];
        for (w, v) in writes {
            prop_assert!(h.write_owned_word(word_addr(0, w), v));
            last[w as usize] = v;
            match h.probe_load(word_addr(0, w)) {
                Probe::L1 { value, .. } | Probe::L2 { value, .. } => {
                    prop_assert_eq!(value, v);
                }
                Probe::Miss => prop_assert!(false, "just-written word cannot miss"),
            }
        }
        for w in 0..16u8 {
            prop_assert_eq!(h.read_word(word_addr(0, w)), Some(last[w as usize]));
        }
    }
}
