//! Figure 7 — network traffic of ticket locks.
//!
//! Criterion benchmarks the traffic-accounted ticket-lock run at 32
//! processors per mechanism; the byte counts of interest are printed
//! once per mechanism before timing. Full series:
//! `cargo run --release -p amo-bench --bin tables -- figure7`.

use amo_sync::Mechanism;
use amo_workloads::{run_lock, LockBench, LockKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure7_ticket_traffic_32cpu");
    g.sample_size(10);
    for mech in Mechanism::ALL {
        let bytes = run_lock(LockBench {
            rounds: 4,
            ..LockBench::paper(mech, LockKind::Ticket, 32)
        })
        .stats
        .total_bytes();
        eprintln!("figure7[32cpu] {}: {} bytes", mech.label(), bytes);
        g.bench_function(mech.label(), |b| {
            b.iter(|| {
                let r = run_lock(black_box(LockBench {
                    rounds: 4,
                    ..LockBench::paper(mech, LockKind::Ticket, 32)
                }));
                black_box(r.stats.total_bytes())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
