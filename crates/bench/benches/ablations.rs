//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * AMU cache size (1 / 8 / 64 words; the paper assumes 8);
//! * delayed (test-value) put vs an update pushed after every increment;
//! * naive vs spin-variable barrier coding for the conventional baseline;
//! * network hop latency 50/100/200 cycles;
//! * active-message invocation overhead;
//! * tree branching factor.
//!
//! Each group prints its measured cycle counts once (the interesting
//! output) and lets Criterion time one representative member.

use amo_sync::{BarrierStyle, Mechanism};
use amo_types::SystemConfig;
use amo_workloads::{run_barrier, BarrierBench};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PROCS: u16 = 32;

fn base(mech: Mechanism) -> BarrierBench {
    BarrierBench {
        episodes: 6,
        warmup: 2,
        ..BarrierBench::paper(mech, PROCS)
    }
}

fn amu_cache_size(c: &mut Criterion) {
    eprintln!("== ablation: AMU cache size (AMO barrier, {PROCS} CPUs) ==");
    for words in [1usize, 8, 64] {
        let mut cfg = SystemConfig::with_procs(PROCS);
        cfg.amu.cache_words = words;
        let r = run_barrier(BarrierBench {
            config: Some(cfg),
            ..base(Mechanism::Amo)
        });
        eprintln!(
            "  {words:>2} words: {:8.0} cycles/episode ({} amu hits, {} misses, {} evictions)",
            r.timing.avg_cycles, r.stats.amu_hits, r.stats.amu_misses, r.stats.amu_evictions
        );
    }
    c.bench_function("ablation_amu_cache_8w", |b| {
        b.iter(|| {
            black_box(run_barrier(base(Mechanism::Amo)))
                .timing
                .avg_cycles
        })
    });
}

fn delayed_vs_eager_updates(c: &mut Criterion) {
    eprintln!("== ablation: delayed put (test value) vs eager per-increment updates ==");
    for (name, style) in [
        ("delayed (paper)", BarrierStyle::Naive),
        ("eager per-increment", BarrierStyle::EagerUpdates),
    ] {
        let r = run_barrier(BarrierBench {
            style: Some(style),
            ..base(Mechanism::Amo)
        });
        eprintln!(
            "  {name:>20}: {:8.0} cycles/episode, {} puts, {} word updates",
            r.timing.avg_cycles, r.stats.puts, r.stats.word_updates_sent
        );
    }
    c.bench_function("ablation_delayed_put", |b| {
        b.iter(|| {
            black_box(run_barrier(BarrierBench {
                style: Some(BarrierStyle::Naive),
                ..base(Mechanism::Amo)
            }))
            .timing
            .avg_cycles
        })
    });
}

fn naive_vs_spin_variable(c: &mut Criterion) {
    eprintln!("== ablation: naive vs spin-variable coding (LL/SC barrier) ==");
    for (name, style) in [
        ("naive (Fig 3a)", BarrierStyle::Naive),
        ("spin variable (Fig 3b)", BarrierStyle::SpinVariable),
    ] {
        let r = run_barrier(BarrierBench {
            style: Some(style),
            ..base(Mechanism::LlSc)
        });
        eprintln!(
            "  {name:>22}: {:8.0} cycles/episode, {} spin reloads, {} SC failures",
            r.timing.avg_cycles, r.stats.spin_reloads, r.stats.sc_failures
        );
    }
    c.bench_function("ablation_spin_variable", |b| {
        b.iter(|| {
            black_box(run_barrier(BarrierBench {
                style: Some(BarrierStyle::SpinVariable),
                ..base(Mechanism::LlSc)
            }))
            .timing
            .avg_cycles
        })
    });
}

fn hop_latency(c: &mut Criterion) {
    eprintln!("== ablation: network hop latency (LL/SC vs AMO barrier) ==");
    for hop in [50u64, 100, 200] {
        let mut cfg = SystemConfig::with_procs(PROCS);
        cfg.network.hop_latency = hop;
        let llsc = run_barrier(BarrierBench {
            config: Some(cfg),
            ..base(Mechanism::LlSc)
        });
        let amo = run_barrier(BarrierBench {
            config: Some(cfg),
            ..base(Mechanism::Amo)
        });
        eprintln!(
            "  hop={hop:>3}: LL/SC {:8.0}, AMO {:7.0}, speedup {:5.1}x",
            llsc.timing.avg_cycles,
            amo.timing.avg_cycles,
            llsc.timing.avg_cycles / amo.timing.avg_cycles
        );
    }
    c.bench_function("ablation_hop_latency_100", |b| {
        b.iter(|| {
            black_box(run_barrier(base(Mechanism::LlSc)))
                .timing
                .avg_cycles
        })
    });
}

fn actmsg_invoke_overhead(c: &mut Criterion) {
    eprintln!("== ablation: active-message invocation overhead ==");
    for invoke in [100u64, 350, 1000] {
        let mut cfg = SystemConfig::with_procs(PROCS);
        cfg.actmsg.invoke_cycles = invoke;
        let r = run_barrier(BarrierBench {
            config: Some(cfg),
            ..base(Mechanism::ActMsg)
        });
        eprintln!(
            "  invoke={invoke:>4}: {:8.0} cycles/episode",
            r.timing.avg_cycles
        );
    }
    c.bench_function("ablation_actmsg_invoke_350", |b| {
        b.iter(|| {
            black_box(run_barrier(base(Mechanism::ActMsg)))
                .timing
                .avg_cycles
        })
    });
}

fn tree_branching(c: &mut Criterion) {
    eprintln!("== ablation: tree branching factor (LL/SC tree barrier, {PROCS} CPUs) ==");
    for branching in [2u16, 4, 8, 16] {
        let r = run_barrier(base(Mechanism::LlSc).with_tree(branching));
        eprintln!(
            "  b={branching:>2}: {:8.0} cycles/episode",
            r.timing.avg_cycles
        );
    }
    c.bench_function("ablation_tree_b8", |b| {
        b.iter(|| {
            black_box(run_barrier(base(Mechanism::LlSc).with_tree(8)))
                .timing
                .avg_cycles
        })
    });
}

/// The single-variable cache-size ablation is flat (one hot word); the
/// paper's claim is that "an N-word AMU cache allows N outstanding
/// synchronization operations". Pressure-test it: 16 independent
/// 2-processor barriers, all homed on node 0, against AMU caches of
/// 2/8/16/64 words.
fn amu_cache_pressure(c: &mut Criterion) {
    use amo_sim::Machine;
    use amo_sync::{BarrierKernel, BarrierSpec, VarAlloc};
    use amo_types::{NodeId, ProcId};

    eprintln!("== ablation: AMU cache pressure (16 concurrent 2-CPU AMO barriers) ==");
    let run = |cache_words: usize| {
        let mut cfg = SystemConfig::with_procs(32);
        cfg.amu.cache_words = cache_words;
        let mut machine = Machine::new(cfg);
        let mut alloc = VarAlloc::new();
        let episodes = 8;
        for g in 0..16u16 {
            // All counters share node 0's AMU — the hot-spot scenario.
            let spec = BarrierSpec::build(&mut alloc, Mechanism::Amo, NodeId(0), 2, episodes);
            for i in 0..2u16 {
                let p = g * 2 + i;
                let work: Vec<u64> = (0..episodes)
                    .map(|e| 100 + (p as u64 * 29 + e as u64 * 11) % 500)
                    .collect();
                // Each group's kernel believes only 2 participants exist —
                // install with a per-group spec so counters are disjoint.
                machine.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
            }
        }
        let res = machine.run(10_000_000_000);
        assert!(res.all_finished);
        let s = machine.stats();
        (res.last_finish(), s.amu_hits, s.amu_misses, s.amu_evictions)
    };
    for words in [2usize, 8, 16, 64] {
        let (t, h, m, e) = run(words);
        eprintln!("  {words:>2} words: finish {t:>8} cycles ({h} hits, {m} misses, {e} evictions)");
    }
    c.bench_function("ablation_amu_pressure_8w", |b| b.iter(|| black_box(run(8))));
}

/// Router-contention sensitivity: does modelling per-link queueing in
/// the fabric core change the barrier story, or is the home node the
/// only hot spot (as the paper's analysis assumes)?
fn router_contention(c: &mut Criterion) {
    eprintln!("== ablation: fabric router contention (64 CPUs) ==");
    for (name, on) in [("endpoint-only", false), ("per-link", true)] {
        let mut cfg = SystemConfig::with_procs(64);
        cfg.network.model_router_contention = on;
        let llsc = run_barrier(BarrierBench {
            config: Some(cfg),
            ..BarrierBench {
                episodes: 6,
                warmup: 2,
                ..BarrierBench::paper(Mechanism::LlSc, 64)
            }
        });
        let amo = run_barrier(BarrierBench {
            config: Some(cfg),
            ..BarrierBench {
                episodes: 6,
                warmup: 2,
                ..BarrierBench::paper(Mechanism::Amo, 64)
            }
        });
        eprintln!(
            "  {name:>13}: LL/SC {:8.0}, AMO {:7.0}, speedup {:5.1}x",
            llsc.timing.avg_cycles,
            amo.timing.avg_cycles,
            llsc.timing.avg_cycles / amo.timing.avg_cycles
        );
    }
    c.bench_function("ablation_router_contention", |b| {
        let mut cfg = SystemConfig::with_procs(64);
        cfg.network.model_router_contention = true;
        b.iter(|| {
            black_box(run_barrier(BarrierBench {
                config: Some(cfg),
                ..BarrierBench {
                    episodes: 4,
                    warmup: 1,
                    ..BarrierBench::paper(Mechanism::LlSc, 64)
                }
            }))
            .timing
            .avg_cycles
        })
    });
}

criterion_group!(
    benches,
    amu_cache_size,
    amu_cache_pressure,
    router_contention,
    delayed_vs_eager_updates,
    naive_vs_spin_variable,
    hop_latency,
    actmsg_invoke_overhead,
    tree_branching
);
criterion_main!(benches);
