//! Table 3 — two-level combining-tree barriers.
//!
//! Criterion benchmarks the tree barrier at 32 processors per mechanism.
//! Full table: `cargo run --release -p amo-bench --bin tables -- table3`.

use amo_sync::Mechanism;
use amo_workloads::{run_barrier, BarrierBench};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_tree_barriers_32cpu");
    g.sample_size(10);
    for mech in Mechanism::ALL {
        g.bench_function(mech.label(), |b| {
            b.iter(|| {
                let r = run_barrier(black_box(
                    BarrierBench {
                        episodes: 5,
                        warmup: 1,
                        ..BarrierBench::paper(mech, 32)
                    }
                    .with_tree(8),
                ));
                black_box(r.timing.avg_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
