//! Table 4 — ticket and array locks.
//!
//! Criterion benchmarks both lock kinds at 16 processors per mechanism.
//! Full table: `cargo run --release -p amo-bench --bin tables -- table4`.

use amo_sync::Mechanism;
use amo_workloads::{run_lock, LockBench, LockKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_locks_16cpu");
    g.sample_size(10);
    for kind in [LockKind::Ticket, LockKind::Array] {
        for mech in Mechanism::ALL {
            let name = format!("{}_{:?}", mech.label(), kind);
            g.bench_function(&name, |b| {
                b.iter(|| {
                    let r = run_lock(black_box(LockBench {
                        rounds: 4,
                        ..LockBench::paper(mech, kind, 16)
                    }));
                    black_box(r.timing.total_cycles)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
