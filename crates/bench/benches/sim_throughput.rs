//! Simulator performance: how many machine events per wall-clock second
//! the discrete-event core dispatches. Not a paper artefact — a
//! regression guard for the simulator itself (the whole paper-size
//! table sweep should stay in the tens of seconds).

use amo_sync::Mechanism;
use amo_workloads::{run_barrier, BarrierBench};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Measure event counts once so Criterion can report elements/sec.
    let events_of = |mech, procs| {
        use amo_sim::Machine;
        use amo_sync::{BarrierKernel, BarrierSpec, VarAlloc};
        use amo_types::{NodeId, ProcId, SystemConfig};
        let mut m = Machine::new(SystemConfig::with_procs(procs));
        let mut alloc = VarAlloc::new();
        let spec = BarrierSpec::build(&mut alloc, mech, NodeId(0), procs, 5);
        for p in 0..procs {
            let work = vec![200; 5];
            m.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
        }
        let res = m.run(10_000_000_000);
        assert!(res.all_finished);
        res.events
    };

    let mut g = c.benchmark_group("sim_throughput");
    for (mech, procs) in [(Mechanism::LlSc, 64u16), (Mechanism::Amo, 256)] {
        let events = events_of(mech, procs);
        g.throughput(Throughput::Elements(events));
        g.bench_function(format!("{}_{}cpu_events", mech.label(), procs), |b| {
            b.iter(|| {
                black_box(run_barrier(BarrierBench {
                    episodes: 5,
                    warmup: 1,
                    max_skew: 1,
                    ..BarrierBench::paper(mech, procs)
                }))
                .timing
                .avg_cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
