//! Figure 6 — cycles-per-processor of tree barriers across machine
//! sizes.
//!
//! Criterion benchmarks the LL/SC+tree and AMO+tree barriers at two
//! sizes. Full series:
//! `cargo run --release -p amo-bench --bin tables -- figure6`.

use amo_sync::Mechanism;
use amo_workloads::{run_barrier, BarrierBench};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure6_tree_cycles_per_proc");
    g.sample_size(10);
    for procs in [16u16, 64] {
        for mech in [Mechanism::LlSc, Mechanism::Amo] {
            g.bench_with_input(
                BenchmarkId::new(mech.label(), procs),
                &procs,
                |b, &procs| {
                    b.iter(|| {
                        let r = run_barrier(black_box(
                            BarrierBench {
                                episodes: 4,
                                warmup: 1,
                                ..BarrierBench::paper(mech, procs)
                            }
                            .with_tree(4),
                        ));
                        black_box(r.timing.cycles_per_proc)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
