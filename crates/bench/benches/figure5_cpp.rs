//! Figure 5 — cycles-per-processor of centralized barriers across
//! machine sizes (the scaling series behind Table 2).
//!
//! Criterion benchmarks the LL/SC and AMO barriers at three sizes.
//! Full series: `cargo run --release -p amo-bench --bin tables -- figure5`.

use amo_sync::Mechanism;
use amo_workloads::{run_barrier, BarrierBench};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure5_cycles_per_proc");
    g.sample_size(10);
    for procs in [8u16, 32, 64] {
        for mech in [Mechanism::LlSc, Mechanism::Amo] {
            g.bench_with_input(
                BenchmarkId::new(mech.label(), procs),
                &procs,
                |b, &procs| {
                    b.iter(|| {
                        let r = run_barrier(black_box(BarrierBench {
                            episodes: 4,
                            warmup: 1,
                            ..BarrierBench::paper(mech, procs)
                        }));
                        black_box(r.timing.cycles_per_proc)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
