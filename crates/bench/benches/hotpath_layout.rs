//! Micro-benchmarks for the hot-path memory layout: the calendar
//! queue's push/pop cycle, slab arenas vs hash maps for id→state
//! lookup, and the precomputed-route `Fabric::send`. Not paper
//! artefacts — these isolate the three layers the layout overhaul
//! touched so a regression shows up with a component name attached
//! instead of as a diffuse `sim_throughput` slowdown.

use amo_engine::{EventQueue, QueueKind};
use amo_noc::Fabric;
use amo_types::{
    BlockAddr, FxHashMap, MsgClass, MsgEndpoint, NodeId, Payload, ProcId, Slab, Stats, SystemConfig,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Calendar-queue push/pop: the self-message pattern the simulator
/// generates (near-future events at mixed offsets), measured per event
/// through a full schedule→drain cycle for both queue kinds.
fn queue_cycle(c: &mut Criterion) {
    const EVENTS: u64 = 4096;
    let mut g = c.benchmark_group("queue_cycle");
    g.throughput(Throughput::Elements(EVENTS));
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        g.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
                let mut t = 0u64;
                for i in 0..EVENTS {
                    // Mixed offsets: same-cycle bursts plus short hops,
                    // like protocol fan-out followed by link latencies.
                    t += [0, 0, 3, 17][(i % 4) as usize];
                    q.schedule(t, i);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

/// Batched drain vs per-event pops over the same tied-run-heavy stream.
fn queue_batch_drain(c: &mut Criterion) {
    const EVENTS: u64 = 4096;
    let mut g = c.benchmark_group("queue_batch_drain");
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("pop_batch_into", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_kind(QueueKind::Calendar);
            for i in 0..EVENTS {
                q.schedule((i / 16) * 40, i); // 16-way ties per cycle
            }
            let mut batch = Vec::new();
            let mut sum = 0u64;
            while q.pop_batch_into(&mut batch).is_some() {
                for e in batch.drain(..) {
                    sum = sum.wrapping_add(e);
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

/// Slab insert/lookup/remove vs `FxHashMap` with the same churn: the
/// directory's transaction-arena access pattern (a few live entries,
/// high turnover, id reuse).
fn slab_vs_hashmap(c: &mut Criterion) {
    const OPS: u64 = 4096;
    const LIVE: usize = 8;
    let mut g = c.benchmark_group("txn_state");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("slab", |b| {
        b.iter(|| {
            let mut slab: Slab<(u64, u64)> = Slab::new();
            let mut ids = Vec::with_capacity(LIVE);
            let mut sum = 0u64;
            for i in 0..OPS {
                ids.push(slab.insert((i, i * 3)));
                if ids.len() == LIVE {
                    for id in ids.drain(..) {
                        sum = sum.wrapping_add(slab.get(id).unwrap().1);
                        slab.remove(id);
                    }
                }
            }
            black_box(sum)
        })
    });
    g.bench_function("fx_hashmap", |b| {
        b.iter(|| {
            let mut map: FxHashMap<u64, (u64, u64)> = FxHashMap::default();
            let mut keys = Vec::with_capacity(LIVE);
            let mut sum = 0u64;
            for i in 0..OPS {
                map.insert(i, (i, i * 3));
                keys.push(i);
                if keys.len() == LIVE {
                    for k in keys.drain(..) {
                        sum = sum.wrapping_add(map.get(&k).unwrap().1);
                        map.remove(&k);
                    }
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

/// `Fabric::send` with the precomputed hop table: remote control
/// messages across a 128-node radix-8 machine, all-pairs traffic.
fn fabric_send(c: &mut Criterion) {
    const NODES: u16 = 128;
    let cfg = SystemConfig::default();
    let payload = Payload::InvAck {
        block: BlockAddr(0x1000),
        from: ProcId(0),
    };
    debug_assert_eq!(payload.class(), MsgClass::InvAck);
    let mut g = c.benchmark_group("fabric_send");
    g.throughput(Throughput::Elements(u64::from(NODES) * u64::from(NODES)));
    g.bench_function(format!("{NODES}nodes_all_pairs"), |b| {
        let mut fabric = Fabric::new(NODES, cfg.network);
        let mut stats = Stats::new();
        let mut now = 0;
        b.iter(|| {
            for s in 0..NODES {
                for d in 0..NODES {
                    now = fabric.send(
                        now,
                        NodeId(s),
                        NodeId(d),
                        &payload,
                        MsgEndpoint::Hub,
                        &mut stats,
                    );
                }
            }
            black_box(now)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    queue_cycle,
    queue_batch_drain,
    slab_vs_hashmap,
    fabric_send
);
criterion_main!(benches);
