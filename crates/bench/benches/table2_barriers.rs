//! Table 2 — centralized barriers: speedups over LL/SC.
//!
//! Criterion benchmarks one representative configuration per mechanism
//! (16 processors). To regenerate the full paper table, run
//! `cargo run --release -p amo-bench --bin tables -- table2`.

use amo_sync::Mechanism;
use amo_workloads::{run_barrier, BarrierBench};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_barriers_16cpu");
    g.sample_size(10);
    for mech in Mechanism::ALL {
        g.bench_function(mech.label(), |b| {
            b.iter(|| {
                let r = run_barrier(black_box(BarrierBench {
                    episodes: 5,
                    warmup: 1,
                    ..BarrierBench::paper(mech, 16)
                }));
                black_box(r.timing.avg_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
