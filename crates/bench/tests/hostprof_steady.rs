//! The runtime check behind the "steady-state dispatch allocates
//! nothing" claim: with [`amo_obs::CountingAlloc`] installed as this
//! test binary's global allocator, a warmed-up barrier run's dispatch
//! scopes must report zero allocations — the calendar queue recycles
//! slab slots, effect buffers are pooled, and L1 fills are tag-only.

use amo_bench::hostprof::profile_steady;
use amo_obs::{hostprof_json, validate_hostprof, CountingAlloc, HostProfSection};
use amo_sim::QueueKind;
use amo_sync::{BarrierKernel, BarrierSpec, Mechanism, VarAlloc};
use amo_types::{NodeId, ProcId, SystemConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_dispatch_allocates_nothing() {
    let procs: u16 = 64;
    let episodes = 8usize;
    let mut alloc = VarAlloc::new();
    let spec = BarrierSpec::build(
        &mut alloc,
        Mechanism::Amo,
        NodeId(0),
        procs,
        episodes as u32,
    );
    let run = profile_steady(
        SystemConfig::with_procs(procs),
        QueueKind::Calendar,
        10_000_000_000,
        |m, start| {
            for p in 0..procs {
                m.install_kernel(
                    ProcId(p),
                    Box::new(BarrierKernel::new(spec, vec![200; episodes])),
                    start,
                );
            }
        },
    );
    assert!(
        run.report.alloc_tracking,
        "CountingAlloc is installed, so allocation numbers must be real"
    );

    let doc = hostprof_json(
        &[("workload", "barrier".into())],
        &[HostProfSection {
            name: "amo_barrier",
            phase: "steady",
            events: run.events,
            report: &run.report,
        }],
    );
    let summaries = validate_hostprof(&doc).expect("document must validate");
    assert_eq!(summaries.len(), 1);
    assert!(summaries[0].alloc_tracking);
    assert_eq!(
        summaries[0].dispatch_self_allocs,
        0,
        "steady-state dispatch must not touch the allocator:\n{}",
        run.report.self_time_table()
    );
}
