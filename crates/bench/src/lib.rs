//! Shared helpers for the benchmark harness binaries: the
//! dependency-free CLI parser, wall-clock timing, steady-state host
//! profiling, and the perf-history ledger + dashboard that `perf_smoke
//! --history` and `perfdash` are built on. The experiment profiles
//! live in `amo_campaign::ArtifactProfile`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod hostprof;
pub mod perfdash;
pub mod timing;

pub use timing::{timed, Stopwatch};

/// Minimal command-line parsing for the `experiment` binary: `--name
/// value` flags and `--bare` switches, no external dependencies.
pub mod cli {
    /// Parsed flags, in order of appearance.
    pub struct Args {
        flags: Vec<(String, Option<String>)>,
        /// Positional arguments that looked malformed.
        pub errors: Vec<String>,
    }

    impl Args {
        /// Parse raw arguments (everything after the subcommand).
        pub fn parse(raw: &[String]) -> Self {
            let mut flags = Vec::new();
            let mut errors = Vec::new();
            let mut it = raw.iter().peekable();
            while let Some(a) = it.next() {
                if let Some(name) = a.strip_prefix("--") {
                    let value = match it.peek() {
                        Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                        _ => None,
                    };
                    flags.push((name.to_string(), value));
                } else {
                    errors.push(a.clone());
                }
            }
            Args { flags, errors }
        }

        /// Value of `--name value`, if present.
        pub fn get(&self, name: &str) -> Option<&str> {
            self.flags
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| v.as_deref())
        }

        /// Whether `--name` appeared (with or without a value).
        pub fn has(&self, name: &str) -> bool {
            self.flags.iter().any(|(n, _)| n == name)
        }

        /// Parse `--name` as a number, with a default and an error sink.
        pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
            match self.get(name) {
                None => Ok(default),
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--{name}: cannot parse '{v}'")),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn s(v: &[&str]) -> Vec<String> {
            v.iter().map(|x| x.to_string()).collect()
        }

        #[test]
        fn flags_with_and_without_values() {
            let a = Args::parse(&s(&["--mech", "amo", "--csv", "--procs", "64"]));
            assert_eq!(a.get("mech"), Some("amo"));
            assert!(a.has("csv"));
            assert_eq!(a.get("csv"), None);
            assert_eq!(a.num("procs", 0u16), Ok(64));
            assert!(a.errors.is_empty());
        }

        #[test]
        fn defaults_and_parse_errors() {
            let a = Args::parse(&s(&["--rounds", "eight"]));
            assert!(a.num::<u32>("rounds", 8).is_err());
            assert_eq!(a.num("episodes", 10u32), Ok(10));
        }

        #[test]
        fn positional_arguments_are_reported() {
            let a = Args::parse(&s(&["oops", "--x", "1"]));
            assert_eq!(a.errors, vec!["oops".to_string()]);
            assert_eq!(a.get("x"), Some("1"));
        }

        #[test]
        fn consecutive_switches_do_not_eat_each_other() {
            let a = Args::parse(&s(&["--csv", "--quick", "--procs", "4"]));
            assert!(a.has("csv") && a.has("quick"));
            assert_eq!(a.num("procs", 0u16), Ok(4));
        }
    }
}
