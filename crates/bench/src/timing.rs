//! Wall-clock measurement shared by the harness binaries.
//!
//! Every binary that used to open-code `let t0 = Instant::now(); ...;
//! t0.elapsed()` goes through [`timed`] instead, which is also the
//! entry point the host profiler rides on (see [`crate::hostprof`]).

use std::time::Instant;

/// Run `f` and return its value together with the elapsed wall-clock
/// seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let value = f();
    (value, t0.elapsed().as_secs_f64())
}

/// A running wall clock, for the binaries that report one elapsed
/// figure at the end of several stages rather than timing one closure.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start the clock.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds since the clock started.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value_and_nonnegative_seconds() {
        let (v, secs) = timed(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
