//! Steady-state host profiling of a simulator workload.
//!
//! The interesting hostprof question is "what does the *steady* hot
//! path cost" — not the first run, which pays one-time container
//! growth (calendar-queue buckets, mark sinks, effect pools). So the
//! harness profiles in two passes over the same machine: a warm-up run
//! that sizes every container, then a reset of the profiler's
//! counters and an identical re-run whose profile is the steady state.
//! With [`amo_obs::CountingAlloc`] installed as the global allocator,
//! the steady pass is where the "dispatch allocates nothing" claim is
//! checked at runtime.

use amo_obs::hostprof::{HostProfReport, HostProfiler};
use amo_obs::NopTracer;
use amo_sim::{Machine, QueueKind};
use amo_types::{Cycle, SystemConfig};

/// A steady-state profile of one workload.
pub struct ProfiledRun {
    /// The steady pass's host profile (the warm-up pass is discarded).
    pub report: HostProfReport,
    /// Simulated events dispatched by the steady pass.
    pub events: u64,
}

/// Profile one workload's steady state.
///
/// `install` must program the machine for one complete run starting at
/// the given cycle; it is called twice — once at cycle 0 for the
/// warm-up pass and once just past the warm-up's end cycle for the
/// profiled pass — and must install the same work both times.
pub fn profile_steady(
    cfg: SystemConfig,
    kind: QueueKind,
    max_cycles: Cycle,
    install: impl Fn(&mut Machine<NopTracer, HostProfiler>, Cycle),
) -> ProfiledRun {
    let mut m = Machine::with_parts(cfg, kind, NopTracer, HostProfiler::new());
    install(&mut m, 0);
    let warm = m.run(max_cycles);
    assert!(warm.all_finished, "hostprof warm-up pass must complete");
    m.clear_marks();
    m.profiler_mut().reset();
    install(&mut m, warm.end + 1);
    let res = m.run(max_cycles);
    assert!(res.all_finished, "hostprof steady pass must complete");
    let report = m.take_hostprof().expect("profiler attached");
    ProfiledRun {
        report,
        events: res.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_sync::{BarrierKernel, BarrierSpec, Mechanism, VarAlloc};
    use amo_types::{NodeId, ProcId};

    #[test]
    fn steady_profile_covers_the_run_and_reruns_cleanly() {
        let procs: u16 = 8;
        let episodes = 4usize;
        let mut alloc = VarAlloc::new();
        let spec = BarrierSpec::build(
            &mut alloc,
            Mechanism::Amo,
            NodeId(0),
            procs,
            episodes as u32,
        );
        let run = profile_steady(
            SystemConfig::with_procs(procs),
            QueueKind::Calendar,
            1_000_000_000,
            |m, start| {
                for p in 0..procs {
                    m.install_kernel(
                        ProcId(p),
                        Box::new(BarrierKernel::new(spec, vec![200; episodes])),
                        start,
                    );
                }
            },
        );
        assert!(run.events > 0, "steady pass dispatched events");
        let dispatched: u64 = run
            .report
            .scopes
            .iter()
            .filter(|s| s.scope.is_dispatch())
            .map(|s| s.count)
            .sum();
        assert_eq!(
            dispatched, run.events,
            "every steady event passed through a dispatch scope"
        );
    }
}
