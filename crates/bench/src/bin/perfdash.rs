//! Render the perf-history trajectory and gate on regressions.
//!
//! ```sh
//! cargo run --release -p amo-bench --bin perfdash                     # BENCH_history.jsonl
//! cargo run --release -p amo-bench --bin perfdash -- --history FILE \
//!     [--tolerance 0.05] [--window 10] [--out FILE.md]
//! ```
//!
//! Prints a markdown table (one row per workload: latest calendar
//! events/s, rolling median, delta, sparkline trend, verdict) and
//! exits nonzero when any workload's newest record fell more than the
//! tolerance below its rolling median — the CI gate on `perf_smoke
//! --history` output.

use amo_bench::cli::Args;
use amo_bench::history::parse_history;
use amo_bench::perfdash::{render, DEFAULT_TOLERANCE, DEFAULT_WINDOW};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    if let Some(e) = args.errors.first() {
        eprintln!("perfdash: unexpected argument: {e}");
        eprintln!("usage: perfdash [--history FILE] [--tolerance F] [--window N] [--out FILE.md]");
        std::process::exit(2);
    }
    let path = args.get("history").unwrap_or("BENCH_history.jsonl");
    let tolerance = args
        .num("tolerance", DEFAULT_TOLERANCE)
        .unwrap_or_else(|e| {
            eprintln!("perfdash: {e}");
            std::process::exit(2);
        });
    let window = args.num("window", DEFAULT_WINDOW).unwrap_or_else(|e| {
        eprintln!("perfdash: {e}");
        std::process::exit(2);
    });

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfdash: {path}: {e}");
        std::process::exit(2);
    });
    let records = parse_history(&text).unwrap_or_else(|e| {
        eprintln!("perfdash: {path}: {e}");
        std::process::exit(2);
    });
    if records.is_empty() {
        eprintln!("perfdash: {path}: no records");
        std::process::exit(2);
    }

    let dash = render(&records, tolerance, window);
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &dash.markdown).unwrap_or_else(|e| {
                eprintln!("perfdash: cannot write {out}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {out}");
        }
        None => print!("{}", dash.markdown),
    }
    for v in dash.verdicts.iter().filter(|v| v.regressed) {
        eprintln!(
            "perfdash: REGRESSION: {} latest {:.0} ev/s is {:.1}% below the rolling median {:.0}",
            v.key,
            v.series.last().copied().unwrap_or(0.0),
            -v.delta.unwrap_or(0.0) * 100.0,
            v.median.unwrap_or(0.0),
        );
    }
    if dash.regressed() {
        std::process::exit(1);
    }
}
