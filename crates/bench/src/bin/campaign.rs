//! Run an experiment campaign: regenerate paper artifacts or execute a
//! declarative spec file, through the content-addressed result cache.
//!
//! ```sh
//! # The paper's full artifact set (this regenerates tables_output.txt):
//! cargo run --release -p amo-bench --bin campaign -- paper
//! # Smoke-sized artifact set:
//! cargo run --release -p amo-bench --bin campaign -- quick
//! # A declarative spec (grid sweep or artifact selection):
//! cargo run --release -p amo-bench --bin campaign -- --spec specs/error-rate-sweep.json
//! ```
//!
//! The cache (default `target/campaign-cache/`) is keyed by run
//! content, so an immediate re-run serves every cell from disk — zero
//! simulations — and renders byte-identical output. Flags:
//!
//! * `--spec FILE` — run an `amo-campaign-v1` spec instead of a named
//!   artifact profile.
//! * `--out FILE` — write the rendered document to FILE instead of
//!   stdout.
//! * `--csv` — CSV renderers for Tables 2–4 / Figure 7.
//! * `--no-cache` — simulate every cell (what the `tables` shim does).
//! * `--cache-dir DIR` — cache location override.
//! * `--metrics-json FILE` — write the campaign's aggregate
//!   `amo-metrics-v1` report (merged run statistics + scheduling
//!   counters).
//! * `--critpath-out FILE` — write an `amo-critpath-diff-v1` sync-tax
//!   attribution document: traced LL/SC and AMO barrier runs at the
//!   campaign's largest size, each analyzed into a per-stage
//!   critical-path report. The per-mechanism reports are cached
//!   content-addressed next to the run results (`<cache>/critpath/`),
//!   so a warm re-run re-renders them without simulating.
//! * `--hostprof-out FILE` — write an `amo-hostprof-v1` host
//!   self-profile of one AMO barrier at the campaign's largest size.
//!   Host wall-clock is not content-addressable, so this run is never
//!   cached; it is a single cold run (see EXPERIMENTS.md on
//!   cold-vs-steady profiles).

use amo_bench::cli::Args;
use amo_bench::Stopwatch;
use amo_campaign::{
    artifacts, render, ArtifactProfile, Campaign, CampaignPlan, CampaignSpec, ResultCache, RunSpec,
};
use amo_obs::{
    analyze, campaign_metrics_json, hostprof_json, validate_hostprof, CampaignSummary,
    HostProfSection, Workload,
};
use amo_sync::Mechanism;
use amo_workloads::{try_run_barrier_obs, BarrierBench, ObsSpec};

fn die(msg: String) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(2);
}

/// One mechanism's critical-path report (`amo-critpath-v1` JSON), served
/// from the blob cache when warm. The blob key is the content address of
/// the *run* (the canonical `RunSpec` document) extended with the
/// analysis version, so any input or code-model change re-addresses it.
fn critpath_report(cache: Option<&ResultCache>, bench: BarrierBench) -> String {
    let spec = RunSpec::Barrier(bench);
    let key =
        amo_types::seed::stable_hash128(format!("{}+critpath-v1", spec.canonical_doc()).as_bytes());
    if let Some(c) = cache {
        if let Some(doc) = c.get_blob("critpath", key) {
            return doc;
        }
    }
    let r = try_run_barrier_obs(
        bench,
        ObsSpec {
            trace_cap: 1 << 21,
            sample_interval: 0,
            hostprof: false,
        },
    )
    .unwrap_or_else(|f| die(format!("critpath run failed: {f}")));
    let buf = r.obs.trace.as_ref().expect("tracing was enabled");
    if buf.dropped > 0 {
        eprintln!(
            "campaign: WARNING: critpath trace dropped {} events; attribution \
             covers only the final window",
            buf.dropped
        );
    }
    let report = analyze(buf, Workload::Barrier)
        .unwrap_or_else(|e| die(format!("critpath analysis failed: {e}")));
    let doc = report.to_json();
    if let Some(c) = cache {
        if let Err(e) = c.put_blob("critpath", key, &doc) {
            eprintln!("campaign: cache write failed ({e}); continuing uncached");
        }
    }
    doc
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);

    // What to run: a spec file, or a named artifact profile.
    let (name, plan) = match args.get("spec") {
        Some(path) => {
            let doc = std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("{path}: {e}")));
            let spec = CampaignSpec::parse(&doc).unwrap_or_else(|e| die(format!("{path}: {e}")));
            (spec.name, spec.plan)
        }
        None => {
            let profile = match args.errors.first().map(String::as_str) {
                None | Some("paper") => ArtifactProfile::paper(),
                Some("quick") => ArtifactProfile::quick(),
                Some(other) => die(format!("unknown profile {other:?} (paper, quick)")),
            };
            let name = args
                .errors
                .first()
                .cloned()
                .unwrap_or_else(|| "paper".into());
            (
                name,
                CampaignPlan::Artifacts {
                    artifacts: Vec::new(),
                    profile,
                },
            )
        }
    };

    let cache = if args.has("no-cache") {
        None
    } else {
        let dir = args
            .get("cache-dir")
            .map(Into::into)
            .unwrap_or_else(ResultCache::default_dir);
        Some(ResultCache::new(dir))
    };
    let mut campaign = Campaign::new(cache);
    let csv = args.has("csv");

    let clock = Stopwatch::new();
    let doc = match &plan {
        CampaignPlan::Artifacts {
            artifacts: names,
            profile,
        } => {
            let want = |n: &str| names.is_empty() || names.iter().any(|w| w == n || w == "all");
            artifacts::render_artifacts(&mut campaign, profile, &want, csv)
        }
        CampaignPlan::Grid(runs) => {
            let specs: Vec<_> = runs.iter().map(|r| r.spec.clone()).collect();
            let outcomes = campaign.run(&specs);
            render::render_grid(runs, &outcomes)
        }
    };

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &doc).unwrap_or_else(|e| die(format!("{path}: {e}")));
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }

    if let Some(path) = args.get("critpath-out") {
        // Attribution runs ride the campaign's sizing: the largest
        // barrier size of the artifact profile, or a 64-CPU default for
        // grid specs.
        let (procs, episodes, warmup) = match &plan {
            CampaignPlan::Artifacts { profile, .. } => (
                *profile.sizes.last().expect("profile has sizes"),
                profile.episodes,
                profile.warmup,
            ),
            CampaignPlan::Grid(_) => (64, 6, 1),
        };
        let mut w = amo_types::JsonWriter::new();
        w.begin_obj();
        w.kv_str("schema", "amo-critpath-diff-v1");
        w.kv_u64("procs", procs as u64);
        w.key("runs");
        w.begin_obj();
        for mech in [Mechanism::LlSc, Mechanism::Amo] {
            let bench = BarrierBench {
                episodes,
                warmup,
                ..BarrierBench::paper(mech, procs)
            };
            w.key(mech.label());
            w.raw_val(&critpath_report(campaign.cache(), bench));
        }
        w.end_obj();
        w.end_obj();
        std::fs::write(path, w.finish()).unwrap_or_else(|e| die(format!("{path}: {e}")));
        eprintln!("wrote {path}");
    }

    if let Some(path) = args.get("hostprof-out") {
        // Host-side cost is a property of this machine and this run,
        // not of the spec — never served from the result cache.
        let (procs, episodes, warmup) = match &plan {
            CampaignPlan::Artifacts { profile, .. } => (
                *profile.sizes.last().expect("profile has sizes"),
                profile.episodes,
                profile.warmup,
            ),
            CampaignPlan::Grid(_) => (64, 6, 1),
        };
        let bench = BarrierBench {
            episodes,
            warmup,
            ..BarrierBench::paper(Mechanism::Amo, procs)
        };
        let r = try_run_barrier_obs(
            bench,
            ObsSpec {
                trace_cap: 0,
                sample_interval: 0,
                hostprof: true,
            },
        )
        .unwrap_or_else(|f| die(format!("hostprof run failed: {f}")));
        let report = r.obs.hostprof.as_ref().expect("profiling was enabled");
        let meta = [
            ("campaign", name.clone()),
            ("workload", "barrier".into()),
            ("mech", "amo".into()),
            ("procs", procs.to_string()),
        ];
        let section = HostProfSection {
            name: "amo_barrier",
            phase: "cold",
            events: r.info.events,
            report,
        };
        let doc = hostprof_json(&meta, &[section]);
        validate_hostprof(&doc).unwrap_or_else(|e| die(format!("{path}: invalid hostprof: {e}")));
        std::fs::write(path, &doc).unwrap_or_else(|e| die(format!("{path}: {e}")));
        eprint!("{}", report.self_time_table());
        eprintln!("wrote {path}");
    }

    let c = campaign.counters;
    if let Some(path) = args.get("metrics-json") {
        let summary = CampaignSummary {
            runs: c.requested,
            unique: c.unique,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            errors: c.errors,
        };
        let report =
            campaign_metrics_json(&summary, &campaign.aggregate, &[("campaign", name.clone())]);
        std::fs::write(path, &report).unwrap_or_else(|e| die(format!("{path}: {e}")));
        eprintln!("wrote {path}");
    }

    eprintln!(
        "campaign '{name}': {} runs ({} unique), cache: {} hits, {} misses, {} errors (in {:.1}s)",
        c.requested,
        c.unique,
        c.cache_hits,
        c.cache_misses,
        c.errors,
        clock.elapsed_secs()
    );
    if c.errors > 0 {
        std::process::exit(1);
    }
}
