//! Run an experiment campaign: regenerate paper artifacts or execute a
//! declarative spec file, through the content-addressed result cache.
//!
//! ```sh
//! # The paper's full artifact set (this regenerates tables_output.txt):
//! cargo run --release -p amo-bench --bin campaign -- paper
//! # Smoke-sized artifact set:
//! cargo run --release -p amo-bench --bin campaign -- quick
//! # A declarative spec (grid sweep or artifact selection):
//! cargo run --release -p amo-bench --bin campaign -- --spec specs/error-rate-sweep.json
//! ```
//!
//! The cache (default `target/campaign-cache/`) is keyed by run
//! content, so an immediate re-run serves every cell from disk — zero
//! simulations — and renders byte-identical output. Flags:
//!
//! * `--spec FILE` — run an `amo-campaign-v1` spec instead of a named
//!   artifact profile.
//! * `--out FILE` — write the rendered document to FILE instead of
//!   stdout.
//! * `--csv` — CSV renderers for Tables 2–4 / Figure 7.
//! * `--no-cache` — simulate every cell (what the `tables` shim does).
//! * `--cache-dir DIR` — cache location override.
//! * `--metrics-json FILE` — write the campaign's aggregate
//!   `amo-metrics-v1` report (merged run statistics + scheduling
//!   counters).

use amo_bench::cli::Args;
use amo_campaign::{
    artifacts, render, ArtifactProfile, Campaign, CampaignPlan, CampaignSpec, ResultCache,
};
use amo_obs::{campaign_metrics_json, CampaignSummary};
use std::time::Instant;

fn die(msg: String) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);

    // What to run: a spec file, or a named artifact profile.
    let (name, plan) = match args.get("spec") {
        Some(path) => {
            let doc = std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("{path}: {e}")));
            let spec = CampaignSpec::parse(&doc).unwrap_or_else(|e| die(format!("{path}: {e}")));
            (spec.name, spec.plan)
        }
        None => {
            let profile = match args.errors.first().map(String::as_str) {
                None | Some("paper") => ArtifactProfile::paper(),
                Some("quick") => ArtifactProfile::quick(),
                Some(other) => die(format!("unknown profile {other:?} (paper, quick)")),
            };
            let name = args
                .errors
                .first()
                .cloned()
                .unwrap_or_else(|| "paper".into());
            (
                name,
                CampaignPlan::Artifacts {
                    artifacts: Vec::new(),
                    profile,
                },
            )
        }
    };

    let cache = if args.has("no-cache") {
        None
    } else {
        let dir = args
            .get("cache-dir")
            .map(Into::into)
            .unwrap_or_else(ResultCache::default_dir);
        Some(ResultCache::new(dir))
    };
    let mut campaign = Campaign::new(cache);
    let csv = args.has("csv");

    let t0 = Instant::now();
    let doc = match &plan {
        CampaignPlan::Artifacts {
            artifacts: names,
            profile,
        } => {
            let want = |n: &str| names.is_empty() || names.iter().any(|w| w == n || w == "all");
            artifacts::render_artifacts(&mut campaign, profile, &want, csv)
        }
        CampaignPlan::Grid(runs) => {
            let specs: Vec<_> = runs.iter().map(|r| r.spec.clone()).collect();
            let outcomes = campaign.run(&specs);
            render::render_grid(runs, &outcomes)
        }
    };

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &doc).unwrap_or_else(|e| die(format!("{path}: {e}")));
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }

    let c = campaign.counters;
    if let Some(path) = args.get("metrics-json") {
        let summary = CampaignSummary {
            runs: c.requested,
            unique: c.unique,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            errors: c.errors,
        };
        let report =
            campaign_metrics_json(&summary, &campaign.aggregate, &[("campaign", name.clone())]);
        std::fs::write(path, &report).unwrap_or_else(|e| die(format!("{path}: {e}")));
        eprintln!("wrote {path}");
    }

    eprintln!(
        "campaign '{name}': {} runs ({} unique), cache: {} hits, {} misses, {} errors (in {:.1?})",
        c.requested,
        c.unique,
        c.cache_hits,
        c.cache_misses,
        c.errors,
        t0.elapsed()
    );
    if c.errors > 0 {
        std::process::exit(1);
    }
}
