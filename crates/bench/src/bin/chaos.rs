//! Chaos harness: drives the AMO barrier through a lossy, jittery,
//! brown-out-ridden fabric with the progress watchdog armed, and
//! reports exactly what the fault subsystem did. Every output line is
//! derived from simulated state only — no wall clock — so CI runs the
//! same seed twice and diffs the output byte-for-byte to prove the
//! fault injection is deterministic.
//!
//! The run itself goes through the same fallible runner
//! (`try_run_barrier`, arithmetic skew mode) that campaign grid cells
//! use; this binary only owns flag parsing and the report format.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amo-bench --bin chaos -- \
//!     [--procs N] [--rate PPM] [--seed S] [--watchdog CYCLES] \
//!     [--jitter MAX] [--brownout] [--episodes N] [--quick] [--unrecoverable] \
//!     [--drop PPM] [--dup PPM] [--reorder CYCLES] \
//!     [--timeout CYCLES] [--retries N] \
//!     [--plan-out PATH] [--plan-in PATH]
//! ```
//!
//! `--unrecoverable` corrupts every traversal and slashes the replay
//! budget so the very first remote packet exhausts it: the expected
//! outcome is a **typed** `SimError` (printed, exit 0), never a panic.
//! Without it, the barrier must complete despite the injected faults
//! (exit 0) — any abort is exit 1.
//!
//! `--drop`/`--dup`/`--reorder` arm the delivery-fault oracle
//! (message loss, duplication, reordering); `--timeout`/`--retries`
//! set the end-to-end recovery budget those faults race against.
//!
//! `--plan-out PATH` writes the run as a replayable
//! `amo-fault-plan-v1` document recording the delivery-fault plan,
//! the observed outcome, and a config fingerprint pinning the exact
//! simulator + machine configuration. Because the artifact must
//! replay exactly, plan-out mode runs the *delivery-only* benchmark:
//! `--rate`, `--jitter`, and `--brownout` are ignored.
//!
//! `--plan-in PATH` replays such a document (for example, a minimal
//! reproducer minted by the `chaos_search` binary). A fingerprint
//! mismatch — the simulator or machine configuration drifted since
//! the plan was minted — is refused loudly (exit 1). The replay
//! succeeds (exit 0) only if the run reproduces the plan's recorded
//! outcome: the same typed failure kind, or completion for an `"ok"`
//! plan.

use amo_campaign::chaos::{kind_name, ChaosGrid, ChaosSpec, DeliveryPlan, PlanDoc};
use amo_sync::Mechanism;
use amo_types::{Cycle, Stats, SystemConfig};
use amo_workloads::runner::{try_run_barrier, BarrierBench, RunFailure, RunInfo, SkewMode};

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag_value(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
        .unwrap_or(default)
}

fn print_fault_counters(info: &RunInfo, s: &Stats) {
    for (name, value) in [
        ("end", info.end),
        ("events", info.events),
        ("link_crc_errors", s.link_crc_errors),
        ("link_retransmissions", s.link_retransmissions),
        ("link_replay_cycles", s.link_replay_cycles),
        ("link_jitter_cycles", s.link_jitter_cycles),
        ("amu_nacks", s.amu_nacks),
        ("amu_brownout_nacks", s.amu_brownout_nacks),
        ("amu_nack_retries", s.amu_nack_retries),
        ("actmsg_retransmissions", s.actmsg_retransmissions),
        ("msgs_dropped", s.msgs_dropped),
        ("msgs_duplicated", s.msgs_duplicated),
        ("msgs_reordered", s.msgs_reordered),
        ("dup_suppressed", s.dup_suppressed),
        ("e2e_timeouts", s.e2e_timeouts),
        ("e2e_retransmissions", s.e2e_retransmissions),
    ] {
        println!("{name}={value}");
    }
}

fn print_abort(f: &RunFailure) {
    match &f.error {
        Some(err) => {
            println!("result=error kind={:?} at={}", err.kind, err.at);
            println!("error: {err}");
            for (n, d) in err.bundle.queue_depths.iter().enumerate() {
                println!(
                    "node{n}: dir_queue={} amu_queue={} outstanding_misses={}",
                    d.dir_queue, d.amu_queue, d.outstanding_misses
                );
            }
            print!("{}", err.bundle.stall_report);
        }
        None => {
            println!("result=stall hit_limit={}", f.hit_limit);
            print!("{}", f.stall_report);
        }
    }
}

/// Replay an `amo-fault-plan-v1` document; exit 0 only on an exact
/// reproduction of its recorded outcome.
fn replay_plan(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("chaos: cannot read plan {path}: {e}");
        std::process::exit(1);
    });
    let doc = PlanDoc::from_json(&text).unwrap_or_else(|e| {
        eprintln!("chaos: {e}");
        std::process::exit(1);
    });
    if let Err(e) = doc.check_fingerprint() {
        eprintln!("chaos: {e}");
        std::process::exit(1);
    }
    let p = &doc.plan;
    println!(
        "chaos: replay plan={path} expect={} procs={} episodes={} watchdog={} \
         drop_ppm={} dup_ppm={} reorder_window={} e2e_timeout={} \
         max_e2e_retries={} fault_seed={:#x}",
        doc.kind,
        doc.procs,
        doc.episodes,
        doc.watchdog,
        p.drop_ppm,
        p.dup_ppm,
        p.reorder_window,
        p.e2e_timeout,
        p.max_e2e_retries,
        p.seed
    );
    let observed = match try_run_barrier(doc.spec().bench(p)) {
        Ok(r) => {
            print_fault_counters(&r.info, &r.stats);
            println!(
                "result=ok all_finished={} last_finish={}",
                r.info.all_finished, r.info.last_finish
            );
            "ok".to_string()
        }
        Err(f) => {
            print_fault_counters(&f.info, &f.stats);
            print_abort(&f);
            f.error
                .as_ref()
                .map_or("Stall".to_string(), |e| kind_name(&e.kind).to_string())
        }
    };
    if observed == doc.kind {
        println!("replay=reproduced kind={observed}");
        std::process::exit(0);
    }
    eprintln!(
        "chaos: plan did not reproduce: expected {} but observed {observed}",
        doc.kind
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = flag_value(&args, "--plan-in") {
        replay_plan(path);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let unrecoverable = args.iter().any(|a| a == "--unrecoverable");
    let procs: u16 = parse(&args, "--procs", 64);
    let rate: u32 = parse(&args, "--rate", 20_000);
    let seed: u64 = parse(&args, "--seed", 0xC4A0_5EED);
    let watchdog: Cycle = parse(&args, "--watchdog", 10_000_000);
    let jitter: Cycle = parse(&args, "--jitter", 8);
    let episodes: u32 = parse(&args, "--episodes", if quick { 4 } else { 10 });
    let drop_ppm: u32 = parse(&args, "--drop", 0);
    let dup_ppm: u32 = parse(&args, "--dup", 0);
    let reorder_window: Cycle = parse(&args, "--reorder", 0);
    let plan_out = flag_value(&args, "--plan-out");

    let defaults = SystemConfig::with_procs(procs).faults;
    let plan = DeliveryPlan {
        drop_ppm,
        dup_ppm,
        reorder_window,
        e2e_timeout: parse(&args, "--timeout", defaults.e2e_timeout),
        max_e2e_retries: parse(&args, "--retries", defaults.max_e2e_retries),
        seed,
    };

    let mut cfg = SystemConfig::with_procs(procs);
    plan.apply(&mut cfg);
    if plan_out.is_none() {
        // The classic lossy-fabric dimensions; plan-out mode skips
        // them so the written plan replays exactly.
        cfg.faults.link_error_ppm = rate;
        cfg.faults.jitter_max = jitter;
        if args.iter().any(|a| a == "--brownout") {
            cfg.faults.amu_brownout_period = 20_000;
            cfg.faults.amu_brownout_len = 2_000;
        }
        if unrecoverable {
            cfg.faults.link_error_ppm = 1_000_000;
            cfg.faults.max_link_retries = 1;
        }
    }

    println!(
        "chaos: procs={procs} rate_ppm={} seed={seed:#x} watchdog={watchdog} \
         jitter={} episodes={episodes} unrecoverable={unrecoverable} \
         drop_ppm={drop_ppm} dup_ppm={dup_ppm} reorder_window={reorder_window} \
         e2e_timeout={} max_e2e_retries={}",
        cfg.faults.link_error_ppm, cfg.faults.jitter_max, plan.e2e_timeout, plan.max_e2e_retries,
    );

    let bench = BarrierBench {
        episodes,
        warmup: 0,
        skew: SkewMode::Arithmetic,
        watchdog,
        config: Some(cfg),
        ..BarrierBench::paper(Mechanism::Amo, procs)
    };

    let mut exit = 0;
    let observed = match try_run_barrier(bench) {
        Ok(r) => {
            print_fault_counters(&r.info, &r.stats);
            println!(
                "result=ok all_finished={} last_finish={}",
                r.info.all_finished, r.info.last_finish
            );
            if unrecoverable {
                eprintln!("expected an unrecoverable fault, but the run completed");
                exit = 1;
            }
            "ok".to_string()
        }
        Err(f) => {
            print_fault_counters(&f.info, &f.stats);
            print_abort(&f);
            if !unrecoverable && plan_out.is_none() {
                eprintln!("unexpected abort in a recoverable configuration");
                exit = 1;
            }
            f.error
                .as_ref()
                .map_or("Stall".to_string(), |e| kind_name(&e.kind).to_string())
        }
    };

    if let Some(path) = plan_out {
        let spec = ChaosSpec {
            samples: 0,
            seed: 0,
            procs,
            episodes,
            watchdog,
            max_failures: 0,
            grid: ChaosGrid::default(),
        };
        let doc = PlanDoc::new(&spec, plan, &observed);
        std::fs::write(path, doc.to_json()).unwrap_or_else(|e| {
            eprintln!("chaos: cannot write plan {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "plan_out={path} kind={observed} fingerprint={}",
            doc.fingerprint
        );
    }
    std::process::exit(exit);
}
