//! Chaos harness: drives the AMO barrier through a lossy, jittery,
//! brown-out-ridden fabric with the progress watchdog armed, and
//! reports exactly what the fault subsystem did. Every output line is
//! derived from simulated state only — no wall clock — so CI runs the
//! same seed twice and diffs the output byte-for-byte to prove the
//! fault injection is deterministic.
//!
//! The run itself goes through the same fallible runner
//! (`try_run_barrier`, arithmetic skew mode) that campaign grid cells
//! use; this binary only owns flag parsing and the report format.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amo-bench --bin chaos -- \
//!     [--procs N] [--rate PPM] [--seed S] [--watchdog CYCLES] \
//!     [--jitter MAX] [--brownout] [--episodes N] [--quick] [--unrecoverable]
//! ```
//!
//! `--unrecoverable` corrupts every traversal and slashes the replay
//! budget so the very first remote packet exhausts it: the expected
//! outcome is a **typed** `SimError` (printed, exit 0), never a panic.
//! Without it, the barrier must complete despite the injected faults
//! (exit 0) — any abort is exit 1.

use amo_sync::Mechanism;
use amo_types::{Cycle, Stats, SystemConfig};
use amo_workloads::runner::{try_run_barrier, BarrierBench, RunInfo, SkewMode};

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag_value(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
        .unwrap_or(default)
}

fn print_fault_counters(info: &RunInfo, s: &Stats) {
    for (name, value) in [
        ("end", info.end),
        ("events", info.events),
        ("link_crc_errors", s.link_crc_errors),
        ("link_retransmissions", s.link_retransmissions),
        ("link_replay_cycles", s.link_replay_cycles),
        ("link_jitter_cycles", s.link_jitter_cycles),
        ("amu_nacks", s.amu_nacks),
        ("amu_brownout_nacks", s.amu_brownout_nacks),
        ("amu_nack_retries", s.amu_nack_retries),
        ("actmsg_retransmissions", s.actmsg_retransmissions),
    ] {
        println!("{name}={value}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let unrecoverable = args.iter().any(|a| a == "--unrecoverable");
    let procs: u16 = parse(&args, "--procs", 64);
    let rate: u32 = parse(&args, "--rate", 20_000);
    let seed: u64 = parse(&args, "--seed", 0xC4A0_5EED);
    let watchdog: Cycle = parse(&args, "--watchdog", 10_000_000);
    let jitter: Cycle = parse(&args, "--jitter", 8);
    let episodes: u32 = parse(&args, "--episodes", if quick { 4 } else { 10 });

    let mut cfg = SystemConfig::with_procs(procs);
    cfg.faults.seed = seed;
    cfg.faults.link_error_ppm = rate;
    cfg.faults.jitter_max = jitter;
    if args.iter().any(|a| a == "--brownout") {
        cfg.faults.amu_brownout_period = 20_000;
        cfg.faults.amu_brownout_len = 2_000;
    }
    if unrecoverable {
        cfg.faults.link_error_ppm = 1_000_000;
        cfg.faults.max_link_retries = 1;
    }

    println!(
        "chaos: procs={procs} rate_ppm={} seed={seed:#x} watchdog={watchdog} \
         jitter={jitter} episodes={episodes} unrecoverable={unrecoverable}",
        cfg.faults.link_error_ppm
    );

    let bench = BarrierBench {
        episodes,
        warmup: 0,
        skew: SkewMode::Arithmetic,
        watchdog,
        config: Some(cfg),
        ..BarrierBench::paper(Mechanism::Amo, procs)
    };

    match try_run_barrier(bench) {
        Ok(r) => {
            print_fault_counters(&r.info, &r.stats);
            println!(
                "result=ok all_finished={} last_finish={}",
                r.info.all_finished, r.info.last_finish
            );
            if unrecoverable {
                eprintln!("expected an unrecoverable fault, but the run completed");
                std::process::exit(1);
            }
        }
        Err(f) => {
            print_fault_counters(&f.info, &f.stats);
            match &f.error {
                Some(err) => {
                    println!("result=error kind={:?} at={}", err.kind, err.at);
                    println!("error: {err}");
                    for (n, d) in err.bundle.queue_depths.iter().enumerate() {
                        println!(
                            "node{n}: dir_queue={} amu_queue={} outstanding_misses={}",
                            d.dir_queue, d.amu_queue, d.outstanding_misses
                        );
                    }
                    print!("{}", err.bundle.stall_report);
                }
                None => {
                    println!("result=stall hit_limit={}", f.hit_limit);
                    print!("{}", f.stall_report);
                }
            }
            if !unrecoverable {
                eprintln!("unexpected abort in a recoverable configuration");
                std::process::exit(1);
            }
        }
    }
}
