//! Engine performance smoke: measures simulator events/sec on the
//! 64-processor LL/SC barrier workload for both future-event-list
//! implementations (reference heap vs calendar queue), plus the
//! wall-clock effect of the work-stealing sweep executor, and records
//! the numbers to `BENCH_engine.json` so future PRs have a perf
//! trajectory to beat.
//!
//! Usage: `cargo run --release -p amo-bench --bin perf_smoke [out.json]`
//!
//! Regression guard: set `AMO_PERF_BASELINE=path/to/BENCH_engine.json`
//! (typically the committed record) and the run exits nonzero if the
//! calendar-queue throughput falls more than `AMO_PERF_TOLERANCE`
//! (default 0.05 = 5%) below the recorded number. This is what keeps
//! the `NopTracer` instrumentation hooks honest about being free.

use amo_sim::{Machine, QueueKind};
use amo_sync::{BarrierKernel, BarrierSpec, Mechanism, VarAlloc};
use amo_types::{NodeId, ProcId, SystemConfig};
use std::time::Instant;

const PROCS: u16 = 64;
const REPS: usize = 7;

/// Barrier episodes per run; `AMO_PERF_EPISODES` overrides. The default
/// makes one run ~0.2s so single-core scheduling noise averages out.
fn episodes() -> usize {
    std::env::var("AMO_PERF_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Seed-commit baseline (events/s), measured externally by building the
/// seed revision and running the same workload (see README §Performance
/// for the worktree recipe). When absent, the in-binary heap engine is
/// the reference — it understates the PR's effect because it already
/// benefits from the dispatch-path work (no payload clones, pooled
/// effect buffers, Fx-hashed maps, flat link table).
fn seed_baseline() -> Option<f64> {
    std::env::var("AMO_SEED_EVENTS_PER_SEC")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Committed-record regression guard: `AMO_PERF_BASELINE` names a prior
/// `BENCH_engine.json`; returns its calendar events/s and the allowed
/// fractional slowdown (`AMO_PERF_TOLERANCE`, default 5%).
fn committed_baseline() -> Option<(f64, f64)> {
    let path = std::env::var("AMO_PERF_BASELINE").ok()?;
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("AMO_PERF_BASELINE={path}: {e}"));
    let doc = amo_obs::Json::parse(&text)
        .unwrap_or_else(|e| panic!("AMO_PERF_BASELINE={path}: bad JSON: {e}"));
    let eps = doc
        .get("calendar_events_per_sec")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("AMO_PERF_BASELINE={path}: no calendar_events_per_sec"));
    let tol = std::env::var("AMO_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    Some((eps, tol))
}

/// One timed run of the benchmark workload; returns (events, seconds).
fn barrier_run(kind: QueueKind) -> (u64, f64) {
    let episodes = episodes();
    let mut m = Machine::new_with_queue(SystemConfig::with_procs(PROCS), kind);
    let mut alloc = VarAlloc::new();
    let spec = BarrierSpec::build(
        &mut alloc,
        Mechanism::LlSc,
        NodeId(0),
        PROCS,
        episodes as u32,
    );
    for p in 0..PROCS {
        let work = vec![200; episodes];
        m.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
    }
    let t0 = Instant::now();
    let res = m.run(10_000_000_000);
    let secs = t0.elapsed().as_secs_f64();
    assert!(res.all_finished, "benchmark workload must complete");
    (res.events, secs)
}

/// Best-of-N events/sec for one queue implementation.
fn throughput(kind: QueueKind) -> (u64, f64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..REPS {
        let (ev, secs) = barrier_run(kind);
        events = ev;
        best = best.min(secs);
    }
    (events, best, events as f64 / best)
}

/// A moderate table sweep, used to measure the executor's effect. Runs
/// through an uncached campaign so every cell is simulated.
fn sweep() -> f64 {
    let t0 = Instant::now();
    let mut c = amo_campaign::Campaign::uncached();
    let t2 = amo_campaign::artifacts::table2(&mut c, &[4, 8, 16, 32, 64], 5, 1);
    let t4 = amo_campaign::artifacts::table4(&mut c, &[4, 8, 16, 32], 4);
    assert_eq!(t2.len(), 5);
    assert_eq!(t4.len(), 4);
    t0.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());

    let eps = episodes();
    println!("engine throughput: {PROCS}-proc LL/SC barrier, {eps} episodes, best of {REPS}");
    let (heap_events, heap_secs, heap_eps) = throughput(QueueKind::Heap);
    println!("  heap queue (in-binary reference): {heap_eps:>12.0} events/s  ({heap_events} events, {heap_secs:.4}s)");
    let (cal_events, cal_secs, cal_eps) = throughput(QueueKind::Calendar);
    println!("  calendar queue:                   {cal_eps:>12.0} events/s  ({cal_events} events, {cal_secs:.4}s)");
    assert_eq!(
        heap_events, cal_events,
        "queue implementations must dispatch identical event streams"
    );
    if let Some((base_eps, tol)) = committed_baseline() {
        let floor = base_eps * (1.0 - tol);
        let verdict = if cal_eps >= floor { "ok" } else { "REGRESSION" };
        println!(
            "  committed baseline:               {base_eps:>12.0} events/s              (floor {floor:.0} at {:.0}% tolerance) ... {verdict}",
            tol * 100.0
        );
        assert!(
            cal_eps >= floor,
            "calendar throughput {cal_eps:.0} events/s is more than {:.0}% below              the committed baseline {base_eps:.0} events/s",
            tol * 100.0
        );
    }
    let seed = seed_baseline();
    let baseline_eps = seed.unwrap_or(heap_eps);
    let speedup = cal_eps / baseline_eps;
    match seed {
        Some(b) => {
            println!("  seed engine (measured baseline):  {b:>12.0} events/s");
            println!("  speedup vs seed engine: {speedup:.2}x");
        }
        None => println!("  speedup vs in-binary heap: {speedup:.2}x"),
    }

    // Sweep wall-clock: one worker vs the full pool. The env knob is
    // read by the executor at each call.
    std::env::set_var("AMO_SWEEP_THREADS", "1");
    let serial_secs = sweep();
    std::env::remove_var("AMO_SWEEP_THREADS");
    let workers = amo_workloads::executor::sweep_workers();
    let parallel_secs = sweep();
    let sweep_speedup = serial_secs / parallel_secs;
    println!(
        "sweep (table2 + table4 subset): serial {serial_secs:.2}s, \
         {workers} workers {parallel_secs:.2}s, speedup {sweep_speedup:.2}x"
    );

    let seed_field = match seed {
        Some(b) => format!("\n  \"seed_events_per_sec\": {b:.0},"),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"workload\": \"llsc_barrier_{PROCS}procs_{eps}episodes\",\n  \
         \"events\": {cal_events},{seed_field}\n  \
         \"heap_events_per_sec\": {heap_eps:.0},\n  \
         \"calendar_events_per_sec\": {cal_eps:.0},\n  \
         \"sim_throughput_speedup\": {speedup:.3},\n  \
         \"speedup_baseline\": \"{}\",\n  \
         \"sweep\": {{\n    \"workload\": \"table2[4..64]x5ep + table4[4..32]x4r\",\n    \
         \"serial_secs\": {serial_secs:.3},\n    \
         \"parallel_secs\": {parallel_secs:.3},\n    \
         \"workers\": {workers},\n    \
         \"speedup\": {sweep_speedup:.3}\n  }}\n}}\n",
        if seed.is_some() { "seed_commit" } else { "in_binary_heap" },
    );
    std::fs::write(&out_path, json).expect("write benchmark record");
    println!("wrote {out_path}");
}
