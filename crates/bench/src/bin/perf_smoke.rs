//! Engine performance smoke: measures simulator events/sec on a
//! three-workload suite — the 64-processor LL/SC barrier, the
//! 64-processor AMO barrier, and a 64-way contended AMO ticket lock —
//! for both future-event-list implementations (reference heap vs
//! calendar queue), plus the wall-clock effect of the work-stealing
//! sweep executor, and records the numbers to `BENCH_engine.json` so
//! future PRs have a perf trajectory to beat.
//!
//! Usage: `cargo run --release -p amo-bench --bin perf_smoke [out.json]`
//!
//! Regression guard: set `AMO_PERF_BASELINE=path/to/BENCH_engine.json`
//! (typically the committed record) and the run exits nonzero if any
//! workload's calendar-queue throughput falls more than
//! `AMO_PERF_TOLERANCE` (default 0.05 = 5%) below its recorded number.
//! This is what keeps the `NopTracer` instrumentation hooks honest
//! about being free. A baseline in the old single-workload schema (no
//! `workloads` object) marks a pre-overhaul record: against one of
//! those, at least one workload must additionally clear 1.25x — the
//! layout overhaul's enforced win. Regenerating the record switches it
//! to the new schema, which disarms that one-time requirement.

use amo_sim::{Machine, QueueKind};
use amo_sync::{BarrierKernel, BarrierSpec, Mechanism, TicketLockKernel, TicketLockSpec, VarAlloc};
use amo_types::{Cycle, NodeId, ProcId, SystemConfig, Word};
use std::time::Instant;

const PROCS: u16 = 64;
const REPS: usize = 7;

/// Barrier episodes per run; `AMO_PERF_EPISODES` overrides. The default
/// makes one run ~0.2s so single-core scheduling noise averages out.
/// The ticket-lock workload scales its rounds off the same knob.
fn episodes() -> usize {
    std::env::var("AMO_PERF_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Seed-commit baseline (events/s), measured externally by building the
/// seed revision and running the same workload (see README §Performance
/// for the worktree recipe). When absent, the in-binary heap engine is
/// the reference — it understates the PR's effect because it already
/// benefits from the dispatch-path work (no payload clones, pooled
/// effect buffers, packed payloads, slab arenas, flat link table).
fn seed_baseline() -> Option<f64> {
    std::env::var("AMO_SEED_EVENTS_PER_SEC")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// One timed run of a barrier workload; returns (events, seconds).
fn barrier_run(mech: Mechanism, kind: QueueKind) -> (u64, f64) {
    let episodes = episodes();
    let mut m = Machine::new_with_queue(SystemConfig::with_procs(PROCS), kind);
    let mut alloc = VarAlloc::new();
    let spec = BarrierSpec::build(&mut alloc, mech, NodeId(0), PROCS, episodes as u32);
    for p in 0..PROCS {
        let work = vec![200; episodes];
        m.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), 0);
    }
    let t0 = Instant::now();
    let res = m.run(10_000_000_000);
    let secs = t0.elapsed().as_secs_f64();
    assert!(res.all_finished, "benchmark workload must complete");
    (res.events, secs)
}

/// One timed run of the contended ticket-lock workload: every processor
/// fights for one AMO-sequenced lock, which hammers the home directory,
/// the AMU fetch-add path, and the word-update fanout.
fn lock_run(kind: QueueKind) -> (u64, f64) {
    let rounds = (episodes() / 20).max(4) as u32;
    let mut m = Machine::new_with_queue(SystemConfig::with_procs(PROCS), kind);
    let mut alloc = VarAlloc::new();
    let spec = TicketLockSpec::build(&mut alloc, Mechanism::Amo, NodeId(0), rounds, 150);
    for p in 0..PROCS {
        let think: Vec<Cycle> = (0..rounds as u64)
            .map(|r| 100 + (p as Cycle * 41 + r * 17) % 500)
            .collect();
        m.install_kernel(
            ProcId(p),
            Box::new(TicketLockKernel::new(spec, think, p as Word + 1, None)),
            0,
        );
    }
    let t0 = Instant::now();
    let res = m.run(10_000_000_000);
    let secs = t0.elapsed().as_secs_f64();
    assert!(res.all_finished, "benchmark workload must complete");
    (res.events, secs)
}

/// Best-of-N events/sec for one workload and queue implementation.
fn throughput(run: impl Fn(QueueKind) -> (u64, f64), kind: QueueKind) -> (u64, f64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..REPS {
        let (ev, secs) = run(kind);
        events = ev;
        best = best.min(secs);
    }
    (events, best, events as f64 / best)
}

struct Measured {
    key: &'static str,
    desc: String,
    events: u64,
    heap_eps: f64,
    cal_eps: f64,
}

/// A moderate table sweep, used to measure the executor's effect. Runs
/// through an uncached campaign so every cell is simulated.
fn sweep() -> f64 {
    let t0 = Instant::now();
    let mut c = amo_campaign::Campaign::uncached();
    let t2 = amo_campaign::artifacts::table2(&mut c, &[4, 8, 16, 32, 64], 5, 1);
    let t4 = amo_campaign::artifacts::table4(&mut c, &[4, 8, 16, 32], 4);
    assert_eq!(t2.len(), 5);
    assert_eq!(t4.len(), 4);
    t0.elapsed().as_secs_f64()
}

/// Committed-record regression guard, per workload. Returns the parsed
/// baseline document and the allowed fractional slowdown.
fn committed_baseline() -> Option<(amo_obs::Json, f64)> {
    let path = std::env::var("AMO_PERF_BASELINE").ok()?;
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("AMO_PERF_BASELINE={path}: {e}"));
    let doc = amo_obs::Json::parse(&text)
        .unwrap_or_else(|e| panic!("AMO_PERF_BASELINE={path}: bad JSON: {e}"));
    let tol = std::env::var("AMO_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    Some((doc, tol))
}

/// Baseline calendar events/s for `key`, if the record has one. The old
/// single-workload schema recorded only the LL/SC barrier under a
/// top-level key.
fn baseline_for(doc: &amo_obs::Json, key: &str) -> Option<f64> {
    if let Some(w) = doc.get("workloads") {
        return w.get(key)?.get("calendar_events_per_sec")?.as_f64();
    }
    if key == "llsc_barrier" {
        return doc.get("calendar_events_per_sec")?.as_f64();
    }
    None
}

/// One suite entry: (record key, human label, workload runner).
type Workload = (&'static str, String, Box<dyn Fn(QueueKind) -> (u64, f64)>);

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());

    let eps = episodes();
    let lock_rounds = (eps / 20).max(4);
    println!("engine throughput: three workloads, best of {REPS} each");
    let suite: Vec<Workload> = vec![
        (
            "llsc_barrier",
            format!("llsc_barrier_{PROCS}procs_{eps}episodes"),
            Box::new(|k| barrier_run(Mechanism::LlSc, k)),
        ),
        (
            "amo_barrier",
            format!("amo_barrier_{PROCS}procs_{eps}episodes"),
            Box::new(|k| barrier_run(Mechanism::Amo, k)),
        ),
        (
            "ticket_lock",
            format!("amo_ticket_lock_{PROCS}procs_{lock_rounds}rounds"),
            Box::new(lock_run),
        ),
    ];

    let mut results = Vec::new();
    for (key, desc, run) in suite {
        let (heap_events, _heap_secs, heap_eps) = throughput(&run, QueueKind::Heap);
        let (cal_events, cal_secs, cal_eps) = throughput(&run, QueueKind::Calendar);
        assert_eq!(
            heap_events, cal_events,
            "queue implementations must dispatch identical event streams ({key})"
        );
        println!(
            "  {key:<12} heap {heap_eps:>12.0} ev/s   calendar {cal_eps:>12.0} ev/s  \
             ({cal_events} events, {cal_secs:.4}s)"
        );
        results.push(Measured {
            key,
            desc,
            events: cal_events,
            heap_eps,
            cal_eps,
        });
    }

    if let Some((doc, tol)) = committed_baseline() {
        let old_schema = doc.get("workloads").is_none();
        let mut best_speedup = 0.0f64;
        for r in &results {
            let Some(base) = baseline_for(&doc, r.key) else {
                println!("  {:<12} no committed baseline — recorded fresh", r.key);
                continue;
            };
            let floor = base * (1.0 - tol);
            let speedup = r.cal_eps / base;
            best_speedup = best_speedup.max(speedup);
            let verdict = if r.cal_eps >= floor {
                "ok"
            } else {
                "REGRESSION"
            };
            println!(
                "  {:<12} baseline {base:>12.0} ev/s  (floor {floor:.0} at {:.0}% tolerance, \
                 {speedup:.2}x) ... {verdict}",
                r.key,
                tol * 100.0
            );
            assert!(
                r.cal_eps >= floor,
                "{} throughput {:.0} events/s is more than {:.0}% below the committed \
                 baseline {base:.0} events/s",
                r.key,
                r.cal_eps,
                tol * 100.0
            );
        }
        if old_schema {
            assert!(
                best_speedup >= 1.25,
                "layout overhaul must clear 1.25x on at least one workload against a \
                 pre-overhaul baseline; best was {best_speedup:.2}x"
            );
            println!(
                "  overhaul win vs pre-overhaul baseline: {best_speedup:.2}x (>= 1.25x) ... ok"
            );
        }
    }

    let llsc = &results[0];
    let seed = seed_baseline();
    let baseline_eps = seed.unwrap_or(llsc.heap_eps);
    let speedup = llsc.cal_eps / baseline_eps;
    match seed {
        Some(b) => {
            println!("  seed engine (measured baseline):  {b:>12.0} events/s");
            println!("  speedup vs seed engine: {speedup:.2}x");
        }
        None => println!("  llsc_barrier speedup vs in-binary heap: {speedup:.2}x"),
    }

    // Sweep wall-clock: one worker vs the full pool. The env knob is
    // read by the executor at each call.
    std::env::set_var("AMO_SWEEP_THREADS", "1");
    let serial_secs = sweep();
    std::env::remove_var("AMO_SWEEP_THREADS");
    let workers = amo_workloads::executor::sweep_workers();
    let parallel_secs = sweep();
    let sweep_speedup = serial_secs / parallel_secs;
    println!(
        "sweep (table2 + table4 subset): serial {serial_secs:.2}s, \
         {workers} workers {parallel_secs:.2}s, speedup {sweep_speedup:.2}x"
    );

    let seed_field = match seed {
        Some(b) => format!("\n  \"seed_events_per_sec\": {b:.0},"),
        None => String::new(),
    };
    let workloads_json: String = results
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{\n      \"workload\": \"{}\",\n      \"events\": {},\n      \
                 \"heap_events_per_sec\": {:.0},\n      \"calendar_events_per_sec\": {:.0}\n    }}",
                r.key, r.desc, r.events, r.heap_eps, r.cal_eps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // The top-level `calendar_events_per_sec` key repeats the LL/SC
    // barrier number so older tooling (and the pre-overhaul guard
    // schema) keeps working.
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"workload\": \"{}\",\n  \
         \"events\": {},{seed_field}\n  \
         \"heap_events_per_sec\": {:.0},\n  \
         \"calendar_events_per_sec\": {:.0},\n  \
         \"sim_throughput_speedup\": {speedup:.3},\n  \
         \"speedup_baseline\": \"{}\",\n  \
         \"workloads\": {{\n{workloads_json}\n  }},\n  \
         \"sweep\": {{\n    \"workload\": \"table2[4..64]x5ep + table4[4..32]x4r\",\n    \
         \"serial_secs\": {serial_secs:.3},\n    \
         \"parallel_secs\": {parallel_secs:.3},\n    \
         \"workers\": {workers},\n    \
         \"speedup\": {sweep_speedup:.3}\n  }}\n}}\n",
        llsc.desc,
        llsc.events,
        llsc.heap_eps,
        llsc.cal_eps,
        if seed.is_some() {
            "seed_commit"
        } else {
            "in_binary_heap"
        },
    );
    std::fs::write(&out_path, json).expect("write benchmark record");
    println!("wrote {out_path}");
}
