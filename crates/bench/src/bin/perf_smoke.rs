//! Engine performance smoke: measures simulator events/sec on a
//! three-workload suite — the 64-processor LL/SC barrier, the
//! 64-processor AMO barrier, and a 64-way contended AMO ticket lock —
//! for both future-event-list implementations (reference heap vs
//! calendar queue), plus the wall-clock effect of the work-stealing
//! sweep executor, and records the numbers to `BENCH_engine.json` so
//! future PRs have a perf trajectory to beat.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p amo-bench --bin perf_smoke -- \
//!     [out.json] [--hostprof-out FILE.json] [--history FILE.jsonl]
//! ```
//!
//! Results print as one end-of-run summary table (per-workload
//! events/s, delta vs the committed baseline, verdict).
//!
//! `--hostprof-out` additionally profiles each workload's *steady
//! state* (warm-up pass, counter reset, identical re-run) and writes a
//! validated `amo-hostprof-v1` document. This binary installs the
//! counting global allocator, so the profile's allocation numbers are
//! real — and the steady-state dispatch scopes are asserted to
//! allocate nothing. `--history` appends an `amo-bench-history-v1`
//! record (default `BENCH_history.jsonl`) for `perfdash` to trend.
//!
//! Regression guard: set `AMO_PERF_BASELINE=path/to/BENCH_engine.json`
//! (typically the committed record) and the run exits nonzero if any
//! workload's calendar-queue throughput falls more than
//! `AMO_PERF_TOLERANCE` (default 0.05 = 5%) below its recorded number.
//! This is what keeps the `NopTracer` / `NopHostProf` instrumentation
//! hooks honest about being free. A baseline in the old
//! single-workload schema (no `workloads` object) marks a pre-overhaul
//! record: against one of those, at least one workload must
//! additionally clear 1.25x — the layout overhaul's enforced win.
//! Regenerating the record switches it to the new schema, which
//! disarms that one-time requirement.

use amo_bench::cli::Args;
use amo_bench::history::{
    append_record, git_describe, host_fingerprint, unix_time, HistoryRecord, HostProfDigest,
    WorkloadPoint,
};
use amo_bench::hostprof::profile_steady;
use amo_bench::timed;
use amo_obs::{hostprof_json, validate_hostprof, CountingAlloc, HostProfSection};
use amo_sim::{Machine, QueueKind};
use amo_sync::{BarrierKernel, BarrierSpec, Mechanism, TicketLockKernel, TicketLockSpec, VarAlloc};
use amo_types::{Cycle, NodeId, ProcId, SystemConfig, Word};

/// The profiled binary opts into allocation counting; the two relaxed
/// atomic adds per allocation are noise for a suite whose hot path
/// allocates nothing (which is exactly what the profile verifies).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const PROCS: u16 = 64;
const REPS: usize = 7;

/// Barrier episodes per run; `AMO_PERF_EPISODES` overrides. The default
/// makes one run ~0.2s so single-core scheduling noise averages out.
/// The ticket-lock workload scales its rounds off the same knob.
fn episodes() -> usize {
    std::env::var("AMO_PERF_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Seed-commit baseline (events/s), measured externally by building the
/// seed revision and running the same workload (see README §Performance
/// for the worktree recipe). When absent, the in-binary heap engine is
/// the reference — it understates the PR's effect because it already
/// benefits from the dispatch-path work (no payload clones, pooled
/// effect buffers, packed payloads, slab arenas, flat link table).
fn seed_baseline() -> Option<f64> {
    std::env::var("AMO_SEED_EVENTS_PER_SEC")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Install one barrier run's kernels, starting at `start`.
fn install_barrier<T: amo_obs::Tracer, P: amo_obs::HostProf>(
    m: &mut Machine<T, P>,
    mech: Mechanism,
    episodes: usize,
    start: Cycle,
) {
    let mut alloc = VarAlloc::new();
    let spec = BarrierSpec::build(&mut alloc, mech, NodeId(0), PROCS, episodes as u32);
    for p in 0..PROCS {
        let work = vec![200; episodes];
        m.install_kernel(ProcId(p), Box::new(BarrierKernel::new(spec, work)), start);
    }
}

/// Install one contended ticket-lock run's kernels: every processor
/// fights for one AMO-sequenced lock, which hammers the home directory,
/// the AMU fetch-add path, and the word-update fanout.
fn install_lock<T: amo_obs::Tracer, P: amo_obs::HostProf>(
    m: &mut Machine<T, P>,
    rounds: u32,
    start: Cycle,
) {
    let mut alloc = VarAlloc::new();
    let spec = TicketLockSpec::build(&mut alloc, Mechanism::Amo, NodeId(0), rounds, 150);
    for p in 0..PROCS {
        let think: Vec<Cycle> = (0..rounds as u64)
            .map(|r| 100 + (p as Cycle * 41 + r * 17) % 500)
            .collect();
        m.install_kernel(
            ProcId(p),
            Box::new(TicketLockKernel::new(spec, think, p as Word + 1, None)),
            start,
        );
    }
}

/// Lock rounds derived from the episode knob.
fn lock_rounds() -> u32 {
    (episodes() / 20).max(4) as u32
}

/// One timed run of a suite workload; returns (events, seconds).
fn suite_run(key: &str, kind: QueueKind) -> (u64, f64) {
    let mut m = Machine::new_with_queue(SystemConfig::with_procs(PROCS), kind);
    match key {
        "llsc_barrier" => install_barrier(&mut m, Mechanism::LlSc, episodes(), 0),
        "amo_barrier" => install_barrier(&mut m, Mechanism::Amo, episodes(), 0),
        "ticket_lock" => install_lock(&mut m, lock_rounds(), 0),
        other => unreachable!("unknown workload {other}"),
    }
    let (res, secs) = timed(|| m.run(10_000_000_000));
    assert!(res.all_finished, "benchmark workload must complete");
    (res.events, secs)
}

/// Best-of-N events/sec for one workload and queue implementation.
fn throughput(key: &str, kind: QueueKind) -> (u64, f64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..REPS {
        let (ev, secs) = suite_run(key, kind);
        events = ev;
        best = best.min(secs);
    }
    (events, best, events as f64 / best)
}

struct Measured {
    key: &'static str,
    desc: String,
    events: u64,
    heap_eps: f64,
    cal_eps: f64,
    /// Committed-baseline events/s, when the record has this workload.
    baseline: Option<f64>,
}

/// A moderate table sweep, used to measure the executor's effect. Runs
/// through an uncached campaign so every cell is simulated.
fn sweep() -> f64 {
    let (_, secs) = timed(|| {
        let mut c = amo_campaign::Campaign::uncached();
        let t2 = amo_campaign::artifacts::table2(&mut c, &[4, 8, 16, 32, 64], 5, 1);
        let t4 = amo_campaign::artifacts::table4(&mut c, &[4, 8, 16, 32], 4);
        assert_eq!(t2.len(), 5);
        assert_eq!(t4.len(), 4);
    });
    secs
}

/// Committed-record regression guard, per workload. Returns the parsed
/// baseline document and the allowed fractional slowdown.
fn committed_baseline() -> Option<(amo_obs::Json, f64)> {
    let path = std::env::var("AMO_PERF_BASELINE").ok()?;
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("AMO_PERF_BASELINE={path}: {e}"));
    let doc = amo_obs::Json::parse(&text)
        .unwrap_or_else(|e| panic!("AMO_PERF_BASELINE={path}: bad JSON: {e}"));
    let tol = std::env::var("AMO_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    Some((doc, tol))
}

/// Baseline calendar events/s for `key`, if the record has one. The old
/// single-workload schema recorded only the LL/SC barrier under a
/// top-level key.
fn baseline_for(doc: &amo_obs::Json, key: &str) -> Option<f64> {
    if let Some(w) = doc.get("workloads") {
        return w.get(key)?.get("calendar_events_per_sec")?.as_f64();
    }
    if key == "llsc_barrier" {
        return doc.get("calendar_events_per_sec")?.as_f64();
    }
    None
}

/// Profile every suite workload's steady state and return the rendered
/// `amo-hostprof-v1` document plus the digest the history record
/// carries. Asserts the steady-state zero-allocation claim.
fn hostprof_doc() -> (String, HostProfDigest) {
    let eps = episodes();
    let cfg = SystemConfig::with_procs(PROCS);
    let runs: Vec<(&str, amo_bench::hostprof::ProfiledRun)> = vec![
        (
            "llsc_barrier",
            profile_steady(cfg, QueueKind::Calendar, 10_000_000_000, |m, start| {
                install_barrier(m, Mechanism::LlSc, eps, start)
            }),
        ),
        (
            "amo_barrier",
            profile_steady(cfg, QueueKind::Calendar, 10_000_000_000, |m, start| {
                install_barrier(m, Mechanism::Amo, eps, start)
            }),
        ),
        (
            "ticket_lock",
            profile_steady(cfg, QueueKind::Calendar, 10_000_000_000, |m, start| {
                install_lock(m, lock_rounds(), start)
            }),
        ),
    ];
    let sections: Vec<HostProfSection> = runs
        .iter()
        .map(|(key, run)| HostProfSection {
            name: key,
            phase: "steady",
            events: run.events,
            report: &run.report,
        })
        .collect();
    let meta = [
        ("suite", "perf_smoke".to_string()),
        ("procs", PROCS.to_string()),
        ("episodes", eps.to_string()),
    ];
    let doc = hostprof_json(&meta, &sections);
    let summaries = validate_hostprof(&doc).expect("perf_smoke emits a valid hostprof doc");
    let mut digest = HostProfDigest {
        wall_ns: 0,
        dispatch_self_allocs: 0,
        alloc_tracking: true,
    };
    for s in &summaries {
        assert!(
            s.alloc_tracking,
            "perf_smoke installs CountingAlloc; allocation numbers must be real"
        );
        assert_eq!(
            s.dispatch_self_allocs, 0,
            "{}: steady-state dispatch must allocate nothing",
            s.name
        );
        digest.wall_ns += s.wall_ns;
        digest.dispatch_self_allocs += s.dispatch_self_allocs;
    }
    (doc, digest)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    let out_path = args
        .errors
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".into());

    let eps = episodes();
    println!("engine throughput: three workloads, best of {REPS} each");
    let suite: Vec<(&'static str, String)> = vec![
        (
            "llsc_barrier",
            format!("llsc_barrier_{PROCS}procs_{eps}episodes"),
        ),
        (
            "amo_barrier",
            format!("amo_barrier_{PROCS}procs_{eps}episodes"),
        ),
        (
            "ticket_lock",
            format!("amo_ticket_lock_{PROCS}procs_{}rounds", lock_rounds()),
        ),
    ];

    let guard = committed_baseline();
    let mut results = Vec::new();
    for (key, desc) in suite {
        let (heap_events, _heap_secs, heap_eps) = throughput(key, QueueKind::Heap);
        let (cal_events, _cal_secs, cal_eps) = throughput(key, QueueKind::Calendar);
        assert_eq!(
            heap_events, cal_events,
            "queue implementations must dispatch identical event streams ({key})"
        );
        results.push(Measured {
            key,
            desc,
            events: cal_events,
            heap_eps,
            cal_eps,
            baseline: guard.as_ref().and_then(|(doc, _)| baseline_for(doc, key)),
        });
    }

    // The single end-of-run summary table: every workload's numbers and
    // verdict in one place. Regressions are asserted *after* the table
    // prints so a failing run still shows the full picture.
    let tol = guard.as_ref().map_or(0.05, |(_, t)| *t);
    println!(
        "\n  {:<12} {:>9} {:>14} {:>14} {:>14} {:>8}  verdict",
        "workload", "events", "heap ev/s", "calendar ev/s", "baseline", "delta"
    );
    for r in &results {
        let (base, delta, verdict) = match r.baseline {
            Some(base) => (
                format!("{base:.0}"),
                format!("{:+.1}%", (r.cal_eps / base - 1.0) * 100.0),
                if r.cal_eps >= base * (1.0 - tol) {
                    "ok"
                } else {
                    "REGRESSION"
                },
            ),
            None => ("-".into(), "-".into(), "fresh"),
        };
        println!(
            "  {:<12} {:>9} {:>14.0} {:>14.0} {:>14} {:>8}  {verdict}",
            r.key, r.events, r.heap_eps, r.cal_eps, base, delta
        );
    }

    if let Some((doc, tol)) = &guard {
        let old_schema = doc.get("workloads").is_none();
        let mut best_speedup = 0.0f64;
        for r in &results {
            let Some(base) = r.baseline else { continue };
            best_speedup = best_speedup.max(r.cal_eps / base);
            assert!(
                r.cal_eps >= base * (1.0 - tol),
                "{} throughput {:.0} events/s is more than {:.0}% below the committed \
                 baseline {base:.0} events/s",
                r.key,
                r.cal_eps,
                tol * 100.0
            );
        }
        if old_schema {
            assert!(
                best_speedup >= 1.25,
                "layout overhaul must clear 1.25x on at least one workload against a \
                 pre-overhaul baseline; best was {best_speedup:.2}x"
            );
            println!(
                "  overhaul win vs pre-overhaul baseline: {best_speedup:.2}x (>= 1.25x) ... ok"
            );
        }
    }

    let llsc = &results[0];
    let seed = seed_baseline();
    let baseline_eps = seed.unwrap_or(llsc.heap_eps);
    let speedup = llsc.cal_eps / baseline_eps;
    match seed {
        Some(b) => {
            println!("  seed engine (measured baseline):  {b:>12.0} events/s");
            println!("  speedup vs seed engine: {speedup:.2}x");
        }
        None => println!("  llsc_barrier speedup vs in-binary heap: {speedup:.2}x"),
    }

    // Sweep wall-clock: one worker vs the full pool. The env knob is
    // read by the executor at each call.
    std::env::set_var("AMO_SWEEP_THREADS", "1");
    let serial_secs = sweep();
    std::env::remove_var("AMO_SWEEP_THREADS");
    let workers = amo_workloads::executor::sweep_workers();
    let parallel_secs = sweep();
    let sweep_speedup = serial_secs / parallel_secs;
    println!(
        "sweep (table2 + table4 subset): serial {serial_secs:.2}s, \
         {workers} workers {parallel_secs:.2}s, speedup {sweep_speedup:.2}x"
    );

    // Steady-state host profile, when requested (also feeds the history
    // record's hostprof digest).
    let want_profile = args.has("hostprof-out") || args.has("history");
    let profile = want_profile.then(hostprof_doc);
    if let Some(path) = args.get("hostprof-out") {
        let (doc, _) = profile.as_ref().expect("profile was taken");
        std::fs::write(path, doc).expect("write hostprof doc");
        println!("wrote {path} (steady-state dispatch allocations: 0)");
    }

    let seed_field = match seed {
        Some(b) => format!("\n  \"seed_events_per_sec\": {b:.0},"),
        None => String::new(),
    };
    let workloads_json: String = results
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{\n      \"workload\": \"{}\",\n      \"events\": {},\n      \
                 \"heap_events_per_sec\": {:.0},\n      \"calendar_events_per_sec\": {:.0}\n    }}",
                r.key, r.desc, r.events, r.heap_eps, r.cal_eps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // The top-level `calendar_events_per_sec` key repeats the LL/SC
    // barrier number so older tooling (and the pre-overhaul guard
    // schema) keeps working.
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"workload\": \"{}\",\n  \
         \"events\": {},{seed_field}\n  \
         \"heap_events_per_sec\": {:.0},\n  \
         \"calendar_events_per_sec\": {:.0},\n  \
         \"sim_throughput_speedup\": {speedup:.3},\n  \
         \"speedup_baseline\": \"{}\",\n  \
         \"workloads\": {{\n{workloads_json}\n  }},\n  \
         \"sweep\": {{\n    \"workload\": \"table2[4..64]x5ep + table4[4..32]x4r\",\n    \
         \"serial_secs\": {serial_secs:.3},\n    \
         \"parallel_secs\": {parallel_secs:.3},\n    \
         \"workers\": {workers},\n    \
         \"speedup\": {sweep_speedup:.3}\n  }}\n}}\n",
        llsc.desc,
        llsc.events,
        llsc.heap_eps,
        llsc.cal_eps,
        if seed.is_some() {
            "seed_commit"
        } else {
            "in_binary_heap"
        },
    );
    std::fs::write(&out_path, json).expect("write benchmark record");
    println!("wrote {out_path}");

    if args.has("history") {
        let path = args.get("history").unwrap_or("BENCH_history.jsonl");
        let (os, arch, cpus) = host_fingerprint();
        let record = HistoryRecord {
            unix_time: unix_time(),
            git: git_describe(),
            os,
            arch,
            cpus,
            episodes: eps as u64,
            workloads: results
                .iter()
                .map(|r| WorkloadPoint {
                    key: r.key.into(),
                    events: r.events,
                    heap_eps: r.heap_eps,
                    cal_eps: r.cal_eps,
                })
                .collect(),
            hostprof: profile.as_ref().map(|(_, digest)| *digest),
        };
        append_record(path, &record).expect("append history record");
        println!("appended history record to {path}");
    }
}
