//! Verification CLI: run monitored schedule explorations, verification
//! matrices, passivity checks, and schedule-document replays.
//!
//! ```sh
//! # One model, exhaustively (bounded), as JSON:
//! cargo run --release -p amo-bench --bin verify -- \
//!     --explore --mech AMO --workload ticket-lock --procs 2
//!
//! # The committed matrix, through the campaign result cache:
//! cargo run --release -p amo-bench --bin verify -- \
//!     --matrix specs/verify-matrix.json
//!
//! # Replay a committed amo-schedule-v1 document (also proves the
//! # decode∘encode round trip is byte-identical to the file):
//! cargo run --release -p amo-bench --bin verify -- \
//!     --replay specs/verify-known-good.json
//!
//! # Monitors are passive: monitored and unmonitored runs agree
//! # cycle for cycle at 64 procs:
//! cargo run --release -p amo-bench --bin verify -- --passivity --procs 64
//! ```
//!
//! Flags for `--explore`: `--mech LABEL` (AMO, MAO, LL/SC, ActMsg,
//! Atomic), `--workload barrier|ticket-lock`, `--procs N`,
//! `--episodes N` / `--rounds N`, `--skew-choices N`, `--skew-step C`,
//! `--reorder-window C`, `--dups`, `--planted-double-apply`,
//! `--max-runs N`, `--max-choice-points N`, `--emit-doc FILE` (write
//! the first counterexample's minimal schedule — or, when the model is
//! clean, the empty-tape known-good schedule — as `amo-schedule-v1`).
//! `--matrix` honors `--no-cache` / `--cache-dir DIR`; `--out FILE`
//! redirects any report. Exit status is 1 when violations were found,
//! so CI can gate on it as well as on the `"violations":0` field.

use amo_bench::cli::Args;
use amo_campaign::ResultCache;
use amo_types::{Cycle, JsonWriter};
use amo_verify::doc::parse_mech;
use amo_verify::{
    explore, render_matrix_report, run_matrix, ExploreLimits, ExploreReport, ScheduleDoc,
    VerifyMatrix, VerifyModel, VerifyWorkload,
};

fn die(msg: impl AsRef<str>) -> ! {
    eprintln!("verify: {}", msg.as_ref());
    std::process::exit(2);
}

fn emit(out: Option<&str>, doc: &str) {
    match out {
        None => println!("{doc}"),
        Some(path) => std::fs::write(path, format!("{doc}\n"))
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}"))),
    }
}

fn num<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.num(name, default).unwrap_or_else(|e| die(e))
}

/// Build the `--explore` model from flags.
fn model_from_flags(args: &Args) -> VerifyModel {
    let mech = parse_mech(args.get("mech").unwrap_or("AMO")).unwrap_or_else(|e| die(e));
    let workload = match args.get("workload").unwrap_or("barrier") {
        "barrier" => VerifyWorkload::Barrier {
            episodes: num(args, "episodes", 2u32),
        },
        "ticket-lock" => VerifyWorkload::TicketLock {
            rounds: num(args, "rounds", 1u32),
        },
        other => die(format!("--workload: unknown workload '{other}'")),
    };
    let mut model = VerifyModel::new(mech, workload, num(args, "procs", 2u16));
    model.skew_choices = num(args, "skew-choices", model.skew_choices);
    model.skew_step = num(args, "skew-step", model.skew_step);
    model.reorder_window = num(args, "reorder-window", model.reorder_window);
    model.max_choice_points = num(args, "max-choice-points", model.max_choice_points);
    model.watchdog = num(args, "watchdog", model.watchdog);
    model.explore_dups = args.has("dups");
    model.planted_double_apply = args.has("planted-double-apply");
    model
}

fn explore_report_json(model: &VerifyModel, report: &ExploreReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", "amo-verify-explore-v1");
    w.kv_str("mech", model.mech.label());
    w.kv_str("workload", model.workload.tag());
    w.kv_u64("procs", model.procs as u64);
    w.kv_u64("schedules", report.schedules);
    w.kv_u64("distinct", report.distinct);
    w.kv_u64("pruned", report.pruned);
    w.key("truncated");
    w.bool_val(report.truncated);
    w.kv_u64("violations", report.violations());
    w.key("counterexamples");
    w.begin_arr();
    for cx in &report.counterexamples {
        w.begin_obj();
        w.kv_str("monitor", &cx.monitor);
        w.kv_str("kind", &cx.kind);
        w.kv_str("detail", &cx.detail);
        w.key("tape");
        w.begin_arr();
        for &v in &cx.tape {
            w.u64_val(v as u64);
        }
        w.end_arr();
        w.key("minimal");
        w.begin_arr();
        for &v in &cx.minimal {
            w.u64_val(v as u64);
        }
        w.end_arr();
        w.kv_u64("shrink_probes", cx.shrink_probes as u64);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

fn run_explore(args: &Args) -> i32 {
    let model = model_from_flags(args);
    let mut limits = ExploreLimits::default();
    limits.max_runs = num(args, "max-runs", limits.max_runs);
    let report = explore(&model, &limits);
    emit(args.get("out"), &explore_report_json(&model, &report));

    if let Some(path) = args.get("emit-doc") {
        let doc = match report.counterexamples.first() {
            Some(cx) => {
                let out = model.run_once(&cx.minimal);
                ScheduleDoc::new(model, cx.minimal.clone(), &out)
            }
            None => {
                let out = model.run_once(&[]);
                ScheduleDoc::new(model, Vec::new(), &out)
            }
        };
        std::fs::write(path, format!("{}\n", doc.to_json()))
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
        eprintln!(
            "verify: wrote {path} kind={} fingerprint={}",
            doc.kind, doc.fingerprint
        );
    }
    (report.violations() > 0) as i32
}

fn run_matrix_mode(args: &Args, path: &str) -> i32 {
    let spec =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
    let matrix = VerifyMatrix::from_json(&spec).unwrap_or_else(|e| die(e));
    let cache = if args.has("no-cache") {
        None
    } else {
        let dir = args
            .get("cache-dir")
            .map(Into::into)
            .unwrap_or_else(ResultCache::default_dir);
        Some(ResultCache::new(dir))
    };
    let outcomes = run_matrix(&matrix, cache.as_ref());
    emit(args.get("out"), &render_matrix_report(&outcomes));
    (outcomes.iter().map(|o| o.violations).sum::<u64>() > 0) as i32
}

fn run_replay(path: &str) -> i32 {
    let raw =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
    let doc = ScheduleDoc::from_json(&raw).unwrap_or_else(|e| die(e));
    // The committed document must be exactly what this simulator would
    // mint: decode∘encode is byte-identity (modulo one trailing
    // newline), so stale hand-edits cannot hide behind a lenient parse.
    if doc.to_json() != raw.trim_end_matches('\n') {
        eprintln!("verify: {path} is not byte-identical to its re-encoding — regenerate it");
        return 1;
    }
    match doc.replay() {
        Ok(out) => {
            println!(
                "replay: ok kind={} monitor={} end={} schedule={path}",
                doc.kind,
                if doc.monitor.is_empty() {
                    "-"
                } else {
                    &doc.monitor
                },
                out.end
            );
            0
        }
        Err(e) => {
            eprintln!("verify: {e}");
            1
        }
    }
}

fn run_passivity(args: &Args) -> i32 {
    let procs = num(args, "procs", 64u16);
    let models = [
        VerifyModel::new(
            parse_mech(args.get("mech").unwrap_or("AMO")).unwrap_or_else(|e| die(e)),
            VerifyWorkload::Barrier {
                episodes: num(args, "episodes", 2u32),
            },
            procs,
        ),
        VerifyModel::new(
            parse_mech(args.get("mech").unwrap_or("AMO")).unwrap_or_else(|e| die(e)),
            VerifyWorkload::TicketLock {
                rounds: num(args, "rounds", 1u32),
            },
            procs,
        ),
    ];
    let mut status = 0;
    for model in models {
        let monitored = model.run_once(&[]);
        let (end, fingerprint): (Cycle, (u64, u64)) = model.run_unmonitored(&[]);
        if monitored.end == end && monitored.fingerprint == fingerprint {
            println!(
                "passivity: ok workload={} procs={} end={}",
                model.workload.tag(),
                procs,
                end
            );
        } else {
            eprintln!(
                "passivity: VIOLATED workload={} procs={} monitored_end={} unmonitored_end={}",
                model.workload.tag(),
                procs,
                monitored.end,
                end
            );
            status = 1;
        }
    }
    status
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    if !args.errors.is_empty() {
        die(format!("unexpected arguments: {}", args.errors.join(" ")));
    }
    let status = if let Some(path) = args.get("matrix") {
        run_matrix_mode(&args, path)
    } else if let Some(path) = args.get("replay") {
        run_replay(path)
    } else if args.has("passivity") {
        run_passivity(&args)
    } else if args.has("explore") {
        run_explore(&args)
    } else {
        die("one of --explore, --matrix FILE, --replay FILE, --passivity is required");
    };
    std::process::exit(status);
}
