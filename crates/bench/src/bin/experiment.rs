//! Run a single custom experiment from the command line.
//!
//! ```sh
//! # a 64-CPU AMO barrier through an 8-ary tree:
//! cargo run --release -p amo-bench --bin experiment -- \
//!     barrier --mech amo --procs 64 --episodes 10 --algo tree:8
//!
//! # a 32-CPU LL/SC ticket-lock benchmark, CSV output:
//! cargo run --release -p amo-bench --bin experiment -- \
//!     lock --mech llsc --kind ticket --procs 32 --rounds 8 --csv
//! ```
//!
//! Exits nonzero with a usage message on malformed arguments.

use amo_obs::{
    analyze, hostprof_json, metrics_json, perfetto_json, validate_hostprof, validate_perfetto,
    HostProfSection, Workload,
};
use amo_sync::Mechanism;
use amo_types::stats::{OpClass, OP_CLASSES};
use amo_types::{Stats, SystemConfig};
use amo_workloads::{
    run_barrier_obs, run_lock_obs, BarrierAlgo, BarrierBench, LockBench, LockKind, ObsReport,
    ObsSpec, SkewMode,
};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: experiment barrier --mech <llsc|atomic|actmsg|mao|amo> --procs N \\\n\
         \x20          [--episodes N] [--warmup N] [--algo central|tree:B|ktree:B|dissem] \\\n\
         \x20          [--skew CYC] [--seed N] [--watchdog CYC] [--csv]\n\
         \x20      experiment lock --mech <...> --kind <ticket|array|mcs> --procs N \\\n\
         \x20          [--rounds N] [--cs CYC] [--think CYC] [--seed N] [--watchdog CYC] [--csv]\n\
         \x20observability (both subcommands):\n\
         \x20          [--trace-out FILE.json] [--trace-cap N] \\\n\
         \x20          [--critpath-out FILE.json] \\\n\
         \x20          [--metrics-json FILE.json] [--sample-interval CYC] \\\n\
         \x20          [--hostprof-out FILE.json]"
    );
    exit(2);
}

use amo_bench::cli::Args;

/// Numeric flag with usage-exit on parse failure.
fn num<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.num(name, default).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

/// Required numeric flag with usage-exit when absent or malformed.
fn required_num<T: std::str::FromStr>(args: &Args, name: &str) -> T {
    match args.get(name) {
        None => {
            eprintln!("--{name} is required");
            usage();
        }
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{name}: cannot parse '{v}'");
            usage();
        }),
    }
}

fn parse_mech(s: &str) -> Mechanism {
    match s.to_ascii_lowercase().as_str() {
        "llsc" | "ll/sc" => Mechanism::LlSc,
        "atomic" => Mechanism::Atomic,
        "actmsg" => Mechanism::ActMsg,
        "mao" => Mechanism::Mao,
        "amo" => Mechanism::Amo,
        other => {
            eprintln!("unknown mechanism '{other}'");
            usage();
        }
    }
}

fn parse_algo(s: &str) -> BarrierAlgo {
    if s == "central" {
        return BarrierAlgo::Central;
    }
    if s == "dissem" || s == "dissemination" {
        return BarrierAlgo::Dissemination;
    }
    if let Some(b) = s.strip_prefix("tree:") {
        return BarrierAlgo::Tree(b.parse().unwrap_or_else(|_| usage()));
    }
    if let Some(b) = s.strip_prefix("ktree:") {
        return BarrierAlgo::KTree(b.parse().unwrap_or_else(|_| usage()));
    }
    eprintln!("unknown algorithm '{s}'");
    usage();
}

fn print_latencies(stats: &amo_types::Stats) {
    const ALL: [OpClass; OP_CLASSES] = [
        OpClass::Load,
        OpClass::Store,
        OpClass::Atomic,
        OpClass::Amo,
        OpClass::Mao,
        OpClass::ActMsg,
        OpClass::Spin,
    ];
    let mut line = String::from("mean op latency:");
    for c in ALL {
        if let Some(l) = stats.mean_op_latency(c) {
            line.push_str(&format!(" {}={:.0}cy", c.label(), l));
        }
    }
    println!("{line}");
}

/// Parse the observability flags shared by both subcommands.
fn parse_obs(args: &Args) -> ObsSpec {
    let tracing = args.get("trace-out").is_some() || args.get("critpath-out").is_some();
    let sampling = args.get("metrics-json").is_some() || args.get("sample-interval").is_some();
    ObsSpec {
        trace_cap: if tracing {
            num(args, "trace-cap", 1 << 20)
        } else {
            0
        },
        sample_interval: if sampling {
            num(args, "sample-interval", 500)
        } else {
            0
        },
        hostprof: args.get("hostprof-out").is_some(),
    }
}

/// Write the requested trace / metrics artefacts. The Perfetto file is
/// re-validated after writing so a malformed export fails loudly here
/// rather than in the viewer.
fn emit_obs(
    args: &Args,
    cfg: &SystemConfig,
    stats: &Stats,
    events: u64,
    obs: &ObsReport,
    workload: Workload,
    meta: &[(&str, String)],
) {
    if let Some(buf) = obs.trace.as_ref() {
        if buf.dropped > 0 {
            eprintln!(
                "WARNING: ring tracer dropped {} events; trace-derived artefacts \
                 cover only the final window of the run — rerun with a larger \
                 --trace-cap for complete coverage",
                buf.dropped
            );
        }
    }
    if let Some(path) = args.get("trace-out") {
        let buf = obs.trace.as_ref().expect("trace was requested");
        let json = perfetto_json(buf, cfg.num_nodes(), cfg.procs_per_node);
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        match validate_perfetto(&json, Some(cfg.num_nodes())) {
            Ok(s) => eprintln!(
                "wrote {path}: {} events on {} tracks ({} dropped); open at ui.perfetto.dev",
                s.events, s.tracks, buf.dropped
            ),
            Err(e) => {
                eprintln!("{path}: invalid trace export: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = args.get("critpath-out") {
        let buf = obs.trace.as_ref().expect("critpath analysis was requested");
        match analyze(buf, workload) {
            Ok(report) => {
                std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                });
                eprint!("{}", report.render_text());
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("critical-path analysis failed: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = args.get("metrics-json") {
        let doc = metrics_json(stats, obs.timeseries.as_ref(), obs.trace.as_ref(), meta);
        std::fs::write(path, &doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("hostprof-out") {
        let report = obs.hostprof.as_ref().expect("host profiling was requested");
        // A single uncached run has no warm-up pass, so container
        // growth is in-profile: this is a "cold" section by definition.
        let section = HostProfSection {
            name: meta
                .first()
                .map(|(_, v)| v.as_str())
                .unwrap_or("experiment"),
            phase: "cold",
            events,
            report,
        };
        let doc = hostprof_json(meta, &[section]);
        let summaries = validate_hostprof(&doc).unwrap_or_else(|e| {
            eprintln!("{path}: invalid hostprof doc: {e}");
            exit(1);
        });
        std::fs::write(path, &doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprint!("{}", report.self_time_table());
        let s = &summaries[0];
        eprintln!(
            "wrote {path}: {} section, {:.1} ms profiled wall-clock, alloc tracking {}",
            s.phase,
            s.wall_ns as f64 / 1e6,
            if s.alloc_tracking { "on" } else { "off" }
        );
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage()
    };
    let args = Args::parse(rest);
    if let Some(e) = args.errors.first() {
        eprintln!("unexpected argument: {e}");
        usage();
    }
    let mech = parse_mech(args.get("mech").unwrap_or_else(|| usage()));
    let procs: u16 = required_num(&args, "procs");
    let csv = args.has("csv");

    match cmd.as_str() {
        "barrier" => {
            let bench = BarrierBench {
                mech,
                procs,
                episodes: num(&args, "episodes", 10),
                warmup: num(&args, "warmup", 2),
                algo: args.get("algo").map_or(BarrierAlgo::Central, parse_algo),
                style: None,
                max_skew: num(&args, "skew", 800),
                skew: SkewMode::Random,
                seed: num(&args, "seed", 0xA40_5EEDu64),
                watchdog: num(&args, "watchdog", 0),
                config: None,
            };
            let obs = parse_obs(&args);
            let r = run_barrier_obs(bench, obs);
            let cfg = SystemConfig::with_procs(procs);
            emit_obs(
                &args,
                &cfg,
                &r.stats,
                r.info.events,
                &r.obs,
                Workload::Barrier,
                &[
                    ("workload", "barrier".into()),
                    ("mech", mech.label().into()),
                    ("procs", procs.to_string()),
                    ("algo", format!("{:?}", bench.algo)),
                    ("episodes", bench.episodes.to_string()),
                ],
            );
            if csv {
                println!("kind,mech,procs,algo,avg_cycles,cycles_per_proc,msgs,bytes",);
                println!(
                    "barrier,{},{},{:?},{:.1},{:.2},{},{}",
                    mech.label(),
                    procs,
                    bench.algo,
                    r.timing.avg_cycles,
                    r.timing.cycles_per_proc,
                    r.stats.total_msgs(),
                    r.stats.total_bytes(),
                );
            } else {
                println!(
                    "{} barrier, {procs} CPUs, {:?}: {:.0} cycles/episode \
                     ({:.1} cycles/processor)",
                    mech.label(),
                    bench.algo,
                    r.timing.avg_cycles,
                    r.timing.cycles_per_proc
                );
                println!("{}", r.stats);
                print_latencies(&r.stats);
            }
        }
        "lock" => {
            let kind = match args.get("kind").unwrap_or_else(|| usage()) {
                "ticket" => LockKind::Ticket,
                "array" => LockKind::Array,
                "mcs" => LockKind::Mcs,
                other => {
                    eprintln!("unknown lock kind '{other}'");
                    usage();
                }
            };
            let bench = LockBench {
                mech,
                kind,
                procs,
                rounds: num(&args, "rounds", 8),
                cs_cycles: num(&args, "cs", 250),
                max_think: num(&args, "think", 1000),
                seed: num(&args, "seed", 0x10C_5EEDu64),
                watchdog: num(&args, "watchdog", 0),
                check_exclusion: true,
                config: None,
            };
            let obs = parse_obs(&args);
            let r = run_lock_obs(bench, obs);
            let cfg = SystemConfig::with_procs(procs);
            emit_obs(
                &args,
                &cfg,
                &r.stats,
                r.info.events,
                &r.obs,
                Workload::Lock,
                &[
                    ("workload", "lock".into()),
                    ("mech", mech.label().into()),
                    ("kind", format!("{kind:?}")),
                    ("procs", procs.to_string()),
                    ("rounds", bench.rounds.to_string()),
                ],
            );
            if csv {
                println!("kind,mech,lock,procs,total_cycles,cycles_per_acq,msgs,bytes");
                println!(
                    "lock,{},{:?},{},{},{:.1},{},{}",
                    mech.label(),
                    kind,
                    procs,
                    r.timing.total_cycles,
                    r.timing.cycles_per_acquisition,
                    r.stats.total_msgs(),
                    r.stats.total_bytes(),
                );
            } else {
                println!(
                    "{} {:?} lock, {procs} CPUs: {} cycles total \
                     ({:.0} cycles/acquisition, 0 exclusion violations)",
                    mech.label(),
                    kind,
                    r.timing.total_cycles,
                    r.timing.cycles_per_acquisition
                );
                println!("{}", r.stats);
                print_latencies(&r.stats);
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            usage();
        }
    }
}
