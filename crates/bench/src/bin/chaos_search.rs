//! Chaos search CLI: sample seeded delivery-fault plans from a grid,
//! probe the AMO barrier under each, shrink every failure to a minimal
//! reproducer, and write the first one as a replayable
//! `amo-fault-plan-v1` document the `chaos` binary accepts via
//! `--plan-in`.
//!
//! All output is derived from simulated state and the search seed —
//! no wall clock — so CI runs the same search twice and byte-diffs the
//! reports to prove the whole find-and-shrink pipeline is
//! deterministic.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amo-bench --bin chaos_search -- \
//!     [--samples N] [--seed S] [--procs N] [--episodes N] \
//!     [--watchdog CYCLES] [--max-failures N] [--out PLAN.json] \
//!     [--drops a,b,..] [--dups a,b,..] [--reorders a,b,..] \
//!     [--timeouts a,b,..] [--retries a,b,..]
//! ```
//!
//! The list flags override one grid dimension each (a single value
//! pins it), so a known-bad region — say `--drops 400000 --retries 1`,
//! a heavy-loss fabric against a one-retry recovery budget — becomes a
//! planted target the search must find. With `--out`, finding no
//! failure is an error (exit 1): the caller asked for a reproducer.

use amo_campaign::chaos::{search, ChaosGrid, ChaosSpec, DeliveryPlan, PlanDoc};
use amo_types::Cycle;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag_value(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
        .unwrap_or(default)
}

fn parse_list<T: std::str::FromStr>(args: &[String], name: &str, default: Vec<T>) -> Vec<T> {
    match flag_value(args, name) {
        None => default,
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad value for {name}: {s}"))
            })
            .collect(),
    }
}

fn fmt_plan(p: &DeliveryPlan) -> String {
    format!(
        "drop_ppm={} dup_ppm={} reorder_window={} e2e_timeout={} \
         max_e2e_retries={} fault_seed={:#x}",
        p.drop_ppm, p.dup_ppm, p.reorder_window, p.e2e_timeout, p.max_e2e_retries, p.seed
    )
}

fn fmt_list<T: std::fmt::Display>(v: &[T]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = flag_value(&args, "--out");
    let g = ChaosGrid::default();
    let spec = ChaosSpec {
        samples: parse(&args, "--samples", 16),
        seed: parse(&args, "--seed", 0xC4A0_5EED),
        procs: parse(&args, "--procs", 64),
        episodes: parse(&args, "--episodes", 4),
        watchdog: parse::<Cycle>(&args, "--watchdog", 10_000_000),
        max_failures: parse(&args, "--max-failures", 4),
        grid: ChaosGrid {
            drop_ppm: parse_list(&args, "--drops", g.drop_ppm),
            dup_ppm: parse_list(&args, "--dups", g.dup_ppm),
            reorder_window: parse_list(&args, "--reorders", g.reorder_window),
            e2e_timeout: parse_list(&args, "--timeouts", g.e2e_timeout),
            max_e2e_retries: parse_list(&args, "--retries", g.max_e2e_retries),
        },
    };

    println!(
        "chaos-search: samples={} seed={:#x} procs={} episodes={} watchdog={} max_failures={}",
        spec.samples, spec.seed, spec.procs, spec.episodes, spec.watchdog, spec.max_failures
    );
    println!(
        "grid: drops=[{}] dups=[{}] reorders=[{}] timeouts=[{}] retries=[{}]",
        fmt_list(&spec.grid.drop_ppm),
        fmt_list(&spec.grid.dup_ppm),
        fmt_list(&spec.grid.reorder_window),
        fmt_list(&spec.grid.e2e_timeout),
        fmt_list(&spec.grid.max_e2e_retries),
    );

    let report = search(&spec);
    println!(
        "searched: sampled={} benign={} failures={}",
        report.sampled,
        report.benign,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "finding: sample={} kind={} {}",
            f.sample,
            f.kind,
            fmt_plan(&f.plan)
        );
        println!(
            "minimal: sample={} kind={} {} shrink_probes={}",
            f.sample,
            f.kind,
            fmt_plan(&f.minimal),
            f.shrink_probes
        );
    }

    if let Some(path) = out {
        let Some(f) = report.failures.first() else {
            eprintln!(
                "chaos-search: no failure found in {} samples, nothing to write",
                spec.samples
            );
            std::process::exit(1);
        };
        let doc = PlanDoc::new(&spec, f.minimal, &f.kind);
        std::fs::write(path, doc.to_json()).unwrap_or_else(|e| {
            eprintln!("chaos-search: cannot write plan {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "plan_out={path} kind={} fingerprint={}",
            f.kind, doc.fingerprint
        );
    }
}
