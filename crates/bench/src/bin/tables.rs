//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p amo-bench --bin tables            # everything, paper sizes
//! cargo run --release -p amo-bench --bin tables -- table2  # one artefact
//! cargo run --release -p amo-bench --bin tables -- --quick # smoke sizes
//! ```

use amo_bench::Profile;
use amo_workloads::render;
use amo_workloads::tables;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let profile = if quick {
        Profile::quick()
    } else {
        Profile::paper()
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.iter().any(|w| *w == name || *w == "all");

    let t0 = Instant::now();

    if want("table2") || want("figure5") {
        let rows = tables::table2(&profile.sizes, profile.episodes, profile.warmup);
        if csv {
            print!("{}", render::csv_table2(&rows));
        } else {
            if want("table2") {
                println!("{}", render::render_table2(&rows));
            }
            if want("figure5") {
                println!("{}", render::render_figure5(&rows));
            }
        }
    }

    if want("table3") || want("figure6") {
        let rows = tables::table3(&profile.tree_sizes, profile.episodes, profile.warmup);
        if csv {
            print!("{}", render::csv_table3(&rows));
        } else {
            if want("table3") {
                println!("{}", render::render_table3(&rows));
            }
            if want("figure6") {
                println!("{}", render::render_figure6(&rows));
            }
        }
    }

    if want("table4") {
        let rows = tables::table4(&profile.sizes, profile.rounds);
        if csv {
            print!("{}", render::csv_table4(&rows));
        } else {
            println!("{}", render::render_table4(&rows));
        }
    }

    if want("figure7") {
        let rows = tables::figure7(&profile.traffic_sizes, profile.rounds);
        if csv {
            print!("{}", render::csv_figure7(&rows));
        } else {
            println!("{}", render::render_figure7(&rows));
        }
    }

    if want("ext-locks") {
        let rows = tables::ext_locks(&profile.sizes, profile.rounds);
        println!("{}", render::render_ext_locks(&rows));
    }

    if want("ext-barriers") {
        let rows = tables::ext_barriers(&profile.tree_sizes, profile.episodes, profile.warmup);
        println!("{}", render::render_ext_barriers(&rows));
    }

    if want("ext-ktree") {
        let sizes: Vec<u16> = profile
            .tree_sizes
            .iter()
            .copied()
            .filter(|&s| s >= 16)
            .collect();
        let rows = tables::ext_ktree(&sizes, profile.episodes, profile.warmup);
        println!("{}", render::render_ext_ktree(&rows));
    }

    if want("ext-app") {
        let procs = *profile.sizes.last().unwrap_or(&16).min(&64);
        let rows = amo_workloads::app::sync_tax(procs, &[1_000, 10_000, 100_000], 8, 2);
        println!("{}", render::render_sync_tax(procs, &rows));
    }

    if want("ext-cs") {
        let procs = *profile.sizes.last().unwrap_or(&16).min(&32);
        let rows =
            amo_workloads::app::cs_sensitivity(procs, &[0, 250, 1_000, 5_000], profile.rounds);
        println!("{}", render::render_cs_sensitivity(procs, &rows));
    }

    if want("ext-signal") {
        let pairs = 8u16;
        let results: Vec<_> = amo_sync::Mechanism::ALL
            .iter()
            .map(|&mech| amo_workloads::app::signal_latency(mech, pairs, profile.rounds))
            .collect();
        println!("{}", render::render_signal(pairs, &results));
    }

    if want("ext-selfsched") {
        let procs = *profile.sizes.last().unwrap_or(&16).min(&64);
        let tasks = 256;
        let rows = amo_workloads::app::self_scheduling(procs, tasks, &[50, 500, 5_000]);
        println!("{}", render::render_self_sched(procs, tasks, &rows));
    }

    if want("figure1") {
        let (llsc, amo) = tables::figure1();
        println!("Figure 1 census (4 CPUs, one warm episode):");
        println!("  LL/SC barrier: ~{llsc} one-way messages");
        println!("  AMO barrier:   ~{amo} one-way messages\n");
    }

    eprintln!("(regenerated in {:.1?})", t0.elapsed());
}
