//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p amo-bench --bin tables            # everything, paper sizes
//! cargo run --release -p amo-bench --bin tables -- table2  # one artefact
//! cargo run --release -p amo-bench --bin tables -- --quick # smoke sizes
//! ```
//!
//! `--trace-out FILE` / `--metrics-json FILE` additionally run one
//! representative traced AMO barrier (the largest profile size) and
//! write its Perfetto trace / metrics report.

use amo_bench::Profile;
use amo_obs::{metrics_json, perfetto_json, validate_perfetto};
use amo_sync::Mechanism;
use amo_types::SystemConfig;
use amo_workloads::render;
use amo_workloads::tables;
use amo_workloads::{run_barrier_obs, BarrierBench, ObsSpec};
use std::time::Instant;

/// `--name FILE` flag lookup in the positional argument list.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Run one traced AMO barrier at the profile's largest size and write
/// the requested artefacts (the same exporters `experiment` uses).
fn emit_representative_obs(profile: &Profile, trace_out: Option<&str>, metrics_out: Option<&str>) {
    let procs = *profile.sizes.last().expect("profile has sizes");
    let bench = BarrierBench {
        episodes: profile.episodes,
        warmup: profile.warmup,
        ..BarrierBench::paper(Mechanism::Amo, procs)
    };
    let r = run_barrier_obs(
        bench,
        ObsSpec {
            trace_cap: if trace_out.is_some() { 1 << 20 } else { 0 },
            sample_interval: if metrics_out.is_some() { 500 } else { 0 },
        },
    );
    let cfg = SystemConfig::with_procs(procs);
    if let Some(path) = trace_out {
        let buf = r.obs.trace.as_ref().expect("trace requested");
        let json = perfetto_json(buf, cfg.num_nodes(), cfg.procs_per_node);
        std::fs::write(path, &json).expect("write trace file");
        let summary = validate_perfetto(&json, Some(cfg.num_nodes())).expect("trace export valid");
        eprintln!(
            "wrote {path}: {} events on {} tracks (AMO barrier, {procs} CPUs)",
            summary.events, summary.tracks
        );
    }
    if let Some(path) = metrics_out {
        let doc = metrics_json(
            &r.stats,
            r.obs.timeseries.as_ref(),
            &[
                ("workload", "barrier".into()),
                ("mech", "amo".into()),
                ("procs", procs.to_string()),
            ],
        );
        std::fs::write(path, &doc).expect("write metrics file");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let profile = if quick {
        Profile::quick()
    } else {
        Profile::paper()
    };
    let trace_out = flag_value(&args, "--trace-out");
    let metrics_out = flag_value(&args, "--metrics-json");
    let file_args = [trace_out, metrics_out];
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .filter(|a| !file_args.contains(&Some(a)))
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.iter().any(|w| *w == name || *w == "all");

    let t0 = Instant::now();

    if want("table2") || want("figure5") {
        let rows = tables::table2(&profile.sizes, profile.episodes, profile.warmup);
        if csv {
            print!("{}", render::csv_table2(&rows));
        } else {
            if want("table2") {
                println!("{}", render::render_table2(&rows));
            }
            if want("figure5") {
                println!("{}", render::render_figure5(&rows));
            }
        }
    }

    if want("table3") || want("figure6") {
        let rows = tables::table3(&profile.tree_sizes, profile.episodes, profile.warmup);
        if csv {
            print!("{}", render::csv_table3(&rows));
        } else {
            if want("table3") {
                println!("{}", render::render_table3(&rows));
            }
            if want("figure6") {
                println!("{}", render::render_figure6(&rows));
            }
        }
    }

    if want("table4") {
        let rows = tables::table4(&profile.sizes, profile.rounds);
        if csv {
            print!("{}", render::csv_table4(&rows));
        } else {
            println!("{}", render::render_table4(&rows));
        }
    }

    if want("figure7") {
        let rows = tables::figure7(&profile.traffic_sizes, profile.rounds);
        if csv {
            print!("{}", render::csv_figure7(&rows));
        } else {
            println!("{}", render::render_figure7(&rows));
        }
    }

    if want("ext-locks") {
        let rows = tables::ext_locks(&profile.sizes, profile.rounds);
        println!("{}", render::render_ext_locks(&rows));
    }

    if want("ext-barriers") {
        let rows = tables::ext_barriers(&profile.tree_sizes, profile.episodes, profile.warmup);
        println!("{}", render::render_ext_barriers(&rows));
    }

    if want("ext-ktree") {
        let sizes: Vec<u16> = profile
            .tree_sizes
            .iter()
            .copied()
            .filter(|&s| s >= 16)
            .collect();
        let rows = tables::ext_ktree(&sizes, profile.episodes, profile.warmup);
        println!("{}", render::render_ext_ktree(&rows));
    }

    if want("ext-app") {
        let procs = *profile.sizes.last().unwrap_or(&16).min(&64);
        let rows = amo_workloads::app::sync_tax(procs, &[1_000, 10_000, 100_000], 8, 2);
        println!("{}", render::render_sync_tax(procs, &rows));
    }

    if want("ext-cs") {
        let procs = *profile.sizes.last().unwrap_or(&16).min(&32);
        let rows =
            amo_workloads::app::cs_sensitivity(procs, &[0, 250, 1_000, 5_000], profile.rounds);
        println!("{}", render::render_cs_sensitivity(procs, &rows));
    }

    if want("ext-signal") {
        let pairs = 8u16;
        let results: Vec<_> = amo_sync::Mechanism::ALL
            .iter()
            .map(|&mech| amo_workloads::app::signal_latency(mech, pairs, profile.rounds))
            .collect();
        println!("{}", render::render_signal(pairs, &results));
    }

    if trace_out.is_some() || metrics_out.is_some() {
        emit_representative_obs(&profile, trace_out, metrics_out);
    }

    if want("ext-selfsched") {
        let procs = *profile.sizes.last().unwrap_or(&16).min(&64);
        let tasks = 256;
        let rows = amo_workloads::app::self_scheduling(procs, tasks, &[50, 500, 5_000]);
        println!("{}", render::render_self_sched(procs, tasks, &rows));
    }

    if want("figure1") {
        let (llsc, amo) = tables::figure1();
        println!("Figure 1 census (4 CPUs, one warm episode):");
        println!("  LL/SC barrier: ~{llsc} one-way messages");
        println!("  AMO barrier:   ~{amo} one-way messages\n");
    }

    eprintln!("(regenerated in {:.1?})", t0.elapsed());
}
