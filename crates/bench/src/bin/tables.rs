//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p amo-bench --bin tables            # everything, paper sizes
//! cargo run --release -p amo-bench --bin tables -- table2  # one artefact
//! cargo run --release -p amo-bench --bin tables -- --quick # smoke sizes
//! cargo run --release -p amo-bench --bin tables -- --csv   # machine-readable cells
//! ```
//!
//! This binary is a thin shim over the `amo-campaign` artifact
//! generators (uncached: every cell simulates). The `campaign` binary
//! runs the same generators through the result cache and also executes
//! declarative spec files.
//!
//! `--trace-out FILE` / `--metrics-json FILE` additionally run one
//! representative traced AMO barrier (the largest profile size) and
//! write its Perfetto trace / metrics report.

use amo_bench::Stopwatch;
use amo_campaign::{artifacts, ArtifactProfile, Campaign};
use amo_obs::{metrics_json, perfetto_json, validate_perfetto};
use amo_sync::Mechanism;
use amo_types::SystemConfig;
use amo_workloads::{run_barrier_obs, BarrierBench, ObsSpec};

/// `--name FILE` flag lookup in the positional argument list.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Run one traced AMO barrier at the profile's largest size and write
/// the requested artefacts (the same exporters `experiment` uses).
fn emit_representative_obs(
    profile: &ArtifactProfile,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
) {
    let procs = *profile.sizes.last().expect("profile has sizes");
    let bench = BarrierBench {
        episodes: profile.episodes,
        warmup: profile.warmup,
        ..BarrierBench::paper(Mechanism::Amo, procs)
    };
    let r = run_barrier_obs(
        bench,
        ObsSpec {
            trace_cap: if trace_out.is_some() { 1 << 20 } else { 0 },
            sample_interval: if metrics_out.is_some() { 500 } else { 0 },
            hostprof: false,
        },
    );
    let cfg = SystemConfig::with_procs(procs);
    if let Some(path) = trace_out {
        let buf = r.obs.trace.as_ref().expect("trace requested");
        let json = perfetto_json(buf, cfg.num_nodes(), cfg.procs_per_node);
        std::fs::write(path, &json).expect("write trace file");
        let summary = validate_perfetto(&json, Some(cfg.num_nodes())).expect("trace export valid");
        eprintln!(
            "wrote {path}: {} events on {} tracks (AMO barrier, {procs} CPUs)",
            summary.events, summary.tracks
        );
    }
    if let Some(path) = metrics_out {
        let doc = metrics_json(
            &r.stats,
            r.obs.timeseries.as_ref(),
            r.obs.trace.as_ref(),
            &[
                ("workload", "barrier".into()),
                ("mech", "amo".into()),
                ("procs", procs.to_string()),
            ],
        );
        std::fs::write(path, &doc).expect("write metrics file");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let profile = if quick {
        ArtifactProfile::quick()
    } else {
        ArtifactProfile::paper()
    };
    let trace_out = flag_value(&args, "--trace-out");
    let metrics_out = flag_value(&args, "--metrics-json");
    let file_args = [trace_out, metrics_out];
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .filter(|a| !file_args.contains(&Some(a)))
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.iter().any(|w| *w == name || *w == "all");

    let clock = Stopwatch::new();

    let mut campaign = Campaign::uncached();
    print!(
        "{}",
        artifacts::render_artifacts(&mut campaign, &profile, &want, csv)
    );

    if trace_out.is_some() || metrics_out.is_some() {
        emit_representative_obs(&profile, trace_out, metrics_out);
    }

    eprintln!(
        "({} runs regenerated in {:.1}s)",
        campaign.counters.unique,
        clock.elapsed_secs()
    );
}
