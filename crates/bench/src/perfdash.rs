//! Perf-trajectory dashboard: render `BENCH_history.jsonl` as a
//! markdown table with ASCII sparklines and judge the newest record
//! against the rolling median.
//!
//! The verdict logic is the CI gate: for each workload, the latest
//! calendar-queue throughput is compared to the median of the previous
//! (up to `window`) records; falling more than `tolerance` below the
//! median is a regression and [`Dashboard::regressed`] turns the
//! `perfdash` exit code nonzero. The median — not the previous point —
//! is the reference so one noisy record neither raises false alarms
//! nor moves the bar.

use crate::history::HistoryRecord;

/// Default fractional slowdown tolerated before a point counts as a
/// regression.
pub const DEFAULT_TOLERANCE: f64 = 0.05;
/// Default number of prior records the rolling median looks back over.
pub const DEFAULT_WINDOW: usize = 10;

/// One workload's row of the dashboard.
#[derive(Clone, Debug)]
pub struct WorkloadVerdict {
    /// Workload key.
    pub key: String,
    /// The series of calendar-queue throughputs, oldest first (records
    /// that lack this workload are skipped).
    pub series: Vec<f64>,
    /// Median of the previous `window` points (`None` with < 2 points).
    pub median: Option<f64>,
    /// `latest / median - 1`, when a median exists.
    pub delta: Option<f64>,
    /// True when the latest point fell more than the tolerance below
    /// the rolling median.
    pub regressed: bool,
}

/// A rendered dashboard plus its verdicts.
#[derive(Clone, Debug)]
pub struct Dashboard {
    /// Markdown document: header, one table row per workload.
    pub markdown: String,
    /// Per-workload verdicts, in first-seen order.
    pub verdicts: Vec<WorkloadVerdict>,
}

impl Dashboard {
    /// True when any workload regressed (the CI gate).
    pub fn regressed(&self) -> bool {
        self.verdicts.iter().any(|v| v.regressed)
    }
}

/// Median of a non-empty slice (mean of the middle pair when even).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Render a series as Unicode block-element sparkline glyphs, scaled
/// to the series' own min..max (a flat series renders mid-height).
pub fn sparkline(series: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = series
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
            (l.min(x), h.max(x))
        });
    series
        .iter()
        .map(|&x| {
            if hi <= lo {
                GLYPHS[3]
            } else {
                let t = (x - lo) / (hi - lo);
                GLYPHS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Compute verdicts and render the markdown dashboard.
pub fn render(records: &[HistoryRecord], tolerance: f64, window: usize) -> Dashboard {
    // Workload keys in first-seen order across the whole history.
    let mut keys: Vec<String> = Vec::new();
    for r in records {
        for w in &r.workloads {
            if !keys.contains(&w.key) {
                keys.push(w.key.clone());
            }
        }
    }

    let mut verdicts = Vec::new();
    for key in &keys {
        let series: Vec<f64> = records
            .iter()
            .flat_map(|r| r.workloads.iter().filter(|w| &w.key == key))
            .map(|w| w.cal_eps)
            .collect();
        let (median, delta, regressed) = match series.split_last() {
            Some((latest, prev)) if !prev.is_empty() => {
                let tail = &prev[prev.len().saturating_sub(window)..];
                let med = median(tail);
                let delta = latest / med - 1.0;
                (Some(med), Some(delta), delta < -tolerance)
            }
            _ => (None, None, false),
        };
        verdicts.push(WorkloadVerdict {
            key: key.clone(),
            series,
            median,
            delta,
            regressed,
        });
    }

    let mut md = String::new();
    md.push_str(&format!(
        "## Engine throughput trajectory ({} records, tolerance {:.0}%, window {window})\n\n",
        records.len(),
        tolerance * 100.0
    ));
    if let Some(last) = records.last() {
        md.push_str(&format!(
            "Latest: `{}` on {}/{} ({} cpus), {} episodes.\n\n",
            last.git, last.os, last.arch, last.cpus, last.episodes
        ));
    }
    md.push_str("| workload | latest ev/s | median ev/s | delta | trend | verdict |\n");
    md.push_str("|---|---:|---:|---:|---|---|\n");
    for v in &verdicts {
        let latest = v.series.last().copied().unwrap_or(0.0);
        let (med, delta, verdict) = match (v.median, v.delta) {
            (Some(m), Some(d)) => (
                format!("{m:.0}"),
                format!("{:+.1}%", d * 100.0),
                if v.regressed { "REGRESSION" } else { "ok" },
            ),
            _ => ("-".into(), "-".into(), "n/a (need ≥ 2 records)"),
        };
        md.push_str(&format!(
            "| {} | {latest:.0} | {med} | {delta} | `{}` | {verdict} |\n",
            v.key,
            sparkline(&v.series)
        ));
    }
    Dashboard {
        markdown: md,
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WorkloadPoint;

    fn record(points: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            unix_time: 1_700_000_000,
            git: "abc1234".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 8,
            episodes: 1000,
            workloads: points
                .iter()
                .map(|(k, eps)| WorkloadPoint {
                    key: (*k).into(),
                    events: 1000,
                    heap_eps: eps / 2.0,
                    cal_eps: *eps,
                })
                .collect(),
            hostprof: None,
        }
    }

    #[test]
    fn planted_regression_is_flagged_and_steady_series_is_ok() {
        let mut records: Vec<HistoryRecord> = (0..5)
            .map(|i| record(&[("llsc_barrier", 1e7 + i as f64), ("ticket_lock", 1.2e7)]))
            .collect();
        records.push(record(&[("llsc_barrier", 0.8e7), ("ticket_lock", 1.2e7)]));
        let dash = render(&records, 0.05, DEFAULT_WINDOW);
        assert!(dash.regressed());
        let llsc = &dash.verdicts[0];
        assert!(llsc.regressed && llsc.delta.unwrap() < -0.05);
        assert!(!dash.verdicts[1].regressed, "flat series stays ok");
        assert!(dash.markdown.contains("REGRESSION"));

        // Within tolerance: a 3% dip is noise, not a regression.
        let mut ok = records.clone();
        ok.pop();
        ok.push(record(&[("llsc_barrier", 0.97e7), ("ticket_lock", 1.2e7)]));
        assert!(!render(&ok, 0.05, DEFAULT_WINDOW).regressed());
    }

    #[test]
    fn single_record_renders_without_verdict() {
        let dash = render(&[record(&[("llsc_barrier", 1e7)])], 0.05, DEFAULT_WINDOW);
        assert!(!dash.regressed());
        assert_eq!(dash.verdicts[0].median, None);
        assert!(dash.markdown.contains("n/a"));
    }

    #[test]
    fn median_is_robust_to_one_noisy_record() {
        // One absurdly fast middle record must not raise the bar.
        let records: Vec<HistoryRecord> = [1e7, 1e7, 9e7, 1e7, 1.01e7]
            .iter()
            .map(|&e| record(&[("llsc_barrier", e)]))
            .collect();
        assert!(!render(&records, 0.05, DEFAULT_WINDOW).regressed());
    }

    #[test]
    fn window_bounds_the_lookback() {
        // Ancient slow records outside the window must not drag the
        // median down and mask a real regression.
        let mut records: Vec<HistoryRecord> = (0..20)
            .map(|i| {
                let eps = if i < 10 { 1e6 } else { 1e7 };
                record(&[("llsc_barrier", eps)])
            })
            .collect();
        records.push(record(&[("llsc_barrier", 0.9e7)]));
        let dash = render(&records, 0.05, 5);
        assert!(dash.regressed(), "10% below the recent median");
    }

    #[test]
    fn sparkline_tracks_shape() {
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▄▄▄");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }
}
