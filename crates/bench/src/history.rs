//! The perf-history ledger: `amo-bench-history-v1` records, one JSON
//! object per line of `BENCH_history.jsonl`.
//!
//! Where `BENCH_engine.json` is a single snapshot (the floor the CI
//! regression guard enforces), the history file is the *trajectory*:
//! `perf_smoke --history` appends one record per run, and `perfdash`
//! renders the series and judges the newest point against the rolling
//! median. Records carry a host fingerprint so a number measured on a
//! different machine is recognizable as such, and cold-start records
//! (first run on a host, populated caches absent) are expected to sit
//! below the warm trend — see EXPERIMENTS.md.

use amo_types::{Json, JsonWriter};

/// One workload's throughput measurement inside a history record.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadPoint {
    /// Record key (`llsc_barrier`, `amo_barrier`, `ticket_lock`).
    pub key: String,
    /// Simulated events per run.
    pub events: u64,
    /// Reference-heap engine throughput, events/second.
    pub heap_eps: f64,
    /// Calendar-queue engine throughput, events/second — the number
    /// the regression verdicts are computed over.
    pub cal_eps: f64,
}

/// Optional hostprof digest attached to a record when the run was also
/// profiled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostProfDigest {
    /// Profiled wall-clock nanoseconds (steady passes, all workloads).
    pub wall_ns: u64,
    /// Exclusive allocations across the `dispatch:*` scopes (the
    /// steady-state zero-allocation claim; 0 when the claim holds).
    pub dispatch_self_allocs: u64,
    /// Whether [`amo_obs::CountingAlloc`] was counting.
    pub alloc_tracking: bool,
}

/// One `amo-bench-history-v1` record.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryRecord {
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time: u64,
    /// `git describe --always --dirty` of the measured tree, or
    /// `"unknown"` outside a git checkout.
    pub git: String,
    /// Host OS (`std::env::consts::OS`).
    pub os: String,
    /// Host CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available hardware parallelism.
    pub cpus: u64,
    /// Barrier episodes per run (the suite's sizing knob).
    pub episodes: u64,
    /// Per-workload measurements, in suite order.
    pub workloads: Vec<WorkloadPoint>,
    /// Hostprof digest, when the run was profiled.
    pub hostprof: Option<HostProfDigest>,
}

impl HistoryRecord {
    /// Serialize as a single JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.kv_str("schema", "amo-bench-history-v1");
        w.kv_u64("unix_time", self.unix_time);
        w.kv_str("git", &self.git);
        w.key("host");
        w.begin_obj();
        w.kv_str("os", &self.os);
        w.kv_str("arch", &self.arch);
        w.kv_u64("cpus", self.cpus);
        w.end_obj();
        w.kv_u64("episodes", self.episodes);
        w.key("workloads");
        w.begin_obj();
        for p in &self.workloads {
            w.key(&p.key);
            w.begin_obj();
            w.kv_u64("events", p.events);
            w.kv_f64("heap_events_per_sec", p.heap_eps);
            w.kv_f64("calendar_events_per_sec", p.cal_eps);
            w.end_obj();
        }
        w.end_obj();
        if let Some(h) = &self.hostprof {
            w.key("hostprof");
            w.begin_obj();
            w.kv_u64("wall_ns", h.wall_ns);
            w.kv_u64("dispatch_self_allocs", h.dispatch_self_allocs);
            w.kv_bool("alloc_tracking", h.alloc_tracking);
            w.end_obj();
        }
        w.end_obj();
        w.finish()
    }

    /// Parse one JSONL line.
    pub fn parse_line(line: &str) -> Result<HistoryRecord, String> {
        let v = Json::parse(line).map_err(|e| format!("history record: {e}"))?;
        if v.get("schema").and_then(Json::as_str) != Some("amo-bench-history-v1") {
            return Err("history record: wrong or missing schema tag".into());
        }
        let u64_field = |j: &Json, k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("history record: missing {k}"))
        };
        let host = v.get("host").ok_or("history record: missing host")?;
        let workloads_obj = v
            .get("workloads")
            .ok_or("history record: missing workloads")?;
        let mut workloads = Vec::new();
        for key in workloads_obj.keys() {
            let p = workloads_obj.get(key).expect("key came from the object");
            workloads.push(WorkloadPoint {
                key: key.to_string(),
                events: u64_field(p, "events")?,
                heap_eps: p
                    .get("heap_events_per_sec")
                    .and_then(Json::as_f64)
                    .ok_or("history record: missing heap_events_per_sec")?,
                cal_eps: p
                    .get("calendar_events_per_sec")
                    .and_then(Json::as_f64)
                    .ok_or("history record: missing calendar_events_per_sec")?,
            });
        }
        if workloads.is_empty() {
            return Err("history record: no workloads".into());
        }
        let hostprof = match v.get("hostprof") {
            None => None,
            Some(h) => Some(HostProfDigest {
                wall_ns: u64_field(h, "wall_ns")?,
                dispatch_self_allocs: u64_field(h, "dispatch_self_allocs")?,
                alloc_tracking: h
                    .get("alloc_tracking")
                    .and_then(Json::as_bool)
                    .ok_or("history record: missing alloc_tracking")?,
            }),
        };
        Ok(HistoryRecord {
            unix_time: u64_field(&v, "unix_time")?,
            git: v
                .get("git")
                .and_then(Json::as_str)
                .ok_or("history record: missing git")?
                .to_string(),
            os: host
                .get("os")
                .and_then(Json::as_str)
                .ok_or("history record: missing host.os")?
                .to_string(),
            arch: host
                .get("arch")
                .and_then(Json::as_str)
                .ok_or("history record: missing host.arch")?
                .to_string(),
            cpus: u64_field(host, "cpus")?,
            episodes: u64_field(&v, "episodes")?,
            workloads,
            hostprof,
        })
    }
}

/// Parse a whole history file (blank lines ignored). Errors carry the
/// offending 1-based line number.
pub fn parse_history(text: &str) -> Result<Vec<HistoryRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(HistoryRecord::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Append one record to a history file, creating it if absent. The
/// write is line-atomic in practice (single short `write` call).
pub fn append_record(path: &str, record: &HistoryRecord) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", record.to_line())
}

/// `git describe --always --dirty`, or `"unknown"` when git or the
/// repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The host fields of a fresh record: `(os, arch, cpus)`.
pub fn host_fingerprint() -> (String, String, u64) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    (
        std::env::consts::OS.to_string(),
        std::env::consts::ARCH.to_string(),
        cpus,
    )
}

/// Seconds since the Unix epoch.
pub fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cal: f64) -> HistoryRecord {
        HistoryRecord {
            unix_time: 1_700_000_000,
            git: "abc1234".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 8,
            episodes: 1000,
            workloads: vec![WorkloadPoint {
                key: "llsc_barrier".into(),
                events: 1_271_322,
                heap_eps: 5e6,
                cal_eps: cal,
            }],
            hostprof: Some(HostProfDigest {
                wall_ns: 123_456_789,
                dispatch_self_allocs: 0,
                alloc_tracking: true,
            }),
        }
    }

    #[test]
    fn record_round_trips_through_its_line() {
        let r = record(9_384_928.0);
        let parsed = HistoryRecord::parse_line(&r.to_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn history_file_parses_with_blank_lines_and_reports_bad_ones() {
        let text = format!("{}\n\n{}\n", record(1e6).to_line(), record(2e6).to_line());
        let rs = parse_history(&text).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].workloads[0].cal_eps, 2e6);

        let bad = format!("{}\nnot json\n", record(1e6).to_line());
        let err = parse_history(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let line = record(1e6).to_line().replace("history-v1", "history-v9");
        assert!(HistoryRecord::parse_line(&line).is_err());
    }
}
