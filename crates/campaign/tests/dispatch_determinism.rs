//! Batched same-cycle dispatch must be invisible to campaign results:
//! the content-addressed cache key hashes inputs only, and the executed
//! artifacts must be byte-identical whether the machine drains the
//! event queue in same-cycle batches (the default) or one event at a
//! time (`AMO_DISPATCH_PER_EVENT=1`, read at machine construction).
//! Anything less would make cached results depend on an execution-mode
//! knob that is not part of the key.

use amo_campaign::run::outcome_to_json;
use amo_campaign::RunSpec;
use amo_sync::Mechanism;
use amo_workloads::runner::{BarrierBench, LockBench, LockKind};

fn specs() -> Vec<RunSpec> {
    vec![
        RunSpec::Barrier(BarrierBench {
            episodes: 3,
            warmup: 1,
            ..BarrierBench::paper(Mechanism::Amo, 8)
        }),
        RunSpec::Barrier(BarrierBench {
            episodes: 3,
            warmup: 1,
            ..BarrierBench::paper(Mechanism::LlSc, 8)
        }),
        RunSpec::Lock(LockBench::paper(Mechanism::Amo, LockKind::Ticket, 8)),
    ]
}

#[test]
fn dispatch_mode_changes_neither_keys_nor_payload_bytes() {
    for spec in specs() {
        let key = spec.key();
        let batched = outcome_to_json(&spec.execute());

        std::env::set_var("AMO_DISPATCH_PER_EVENT", "1");
        let per_event = outcome_to_json(&spec.execute());
        let key_per_event = spec.key();
        std::env::remove_var("AMO_DISPATCH_PER_EVENT");

        assert_eq!(
            key, key_per_event,
            "cache keys hash inputs only — dispatch mode must not appear"
        );
        assert_eq!(
            batched, per_event,
            "batched and per-event dispatch must produce byte-identical \
             cache payloads for {spec:?}"
        );
    }
}
