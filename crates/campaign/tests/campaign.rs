//! End-to-end campaign tests: cold/warm bit-identity through the
//! on-disk cache, corruption recovery, key invalidation on config
//! changes, the committed spec files, and the golden comparison
//! against `tables_output.txt`.

use amo_campaign::{
    artifacts, ArtifactProfile, Campaign, CampaignPlan, CampaignSpec, ResultCache, RunSpec,
};
use amo_sync::Mechanism;
use amo_types::SystemConfig;
use amo_workloads::runner::BarrierBench;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("amo-campaign-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_profile() -> ArtifactProfile {
    ArtifactProfile {
        sizes: vec![4, 8],
        tree_sizes: vec![16],
        traffic_sizes: vec![16],
        episodes: 3,
        warmup: 1,
        rounds: 4,
    }
}

/// A cold render followed by a warm re-render must produce the same
/// bytes, with the warm pass served entirely from the cache (zero
/// simulations).
#[test]
fn warm_rerun_is_bit_identical_and_fully_cached() {
    let dir = tmpdir("warm");
    let profile = small_profile();
    let want = |n: &str| matches!(n, "table2" | "table4" | "figure1");

    let mut cold = Campaign::new(Some(ResultCache::new(&dir)));
    let cold_doc = artifacts::render_artifacts(&mut cold, &profile, &want, false);
    assert_eq!(cold.counters.cache_hits, 0);
    assert_eq!(cold.counters.cache_misses, cold.counters.unique);
    assert!(cold.counters.unique > 0);

    let mut warm = Campaign::new(Some(ResultCache::new(&dir)));
    let warm_doc = artifacts::render_artifacts(&mut warm, &profile, &want, false);
    assert_eq!(warm.counters.cache_misses, 0, "warm pass must not simulate");
    assert_eq!(warm.counters.cache_hits, warm.counters.unique);
    assert_eq!(cold_doc, warm_doc, "cached render must be bit-identical");

    // And the cache is also equivalent to not caching at all.
    let mut un = Campaign::uncached();
    let un_doc = artifacts::render_artifacts(&mut un, &profile, &want, false);
    assert_eq!(cold_doc, un_doc);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting a cached entry on disk silently degrades it to a miss:
/// the campaign recomputes the same numbers and rewrites the entry.
#[test]
fn corrupted_entry_is_recomputed_and_repaired() {
    let dir = tmpdir("corrupt");
    let spec = RunSpec::Barrier(BarrierBench {
        episodes: 3,
        warmup: 1,
        ..BarrierBench::paper(Mechanism::Amo, 4)
    });

    let mut c = Campaign::new(Some(ResultCache::new(&dir)));
    let first = c.run_ok(std::slice::from_ref(&spec));

    // Flip a payload byte in the entry file.
    let cache = ResultCache::new(&dir);
    let path = cache.entry_path(spec.key());
    let mut bytes = std::fs::read(&path).unwrap();
    let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
    bytes[nl + 20] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let mut again = Campaign::new(Some(ResultCache::new(&dir)));
    let second = again.run_ok(std::slice::from_ref(&spec));
    assert_eq!(again.counters.cache_hits, 0, "corrupt entry must miss");
    assert_eq!(again.counters.cache_misses, 1);
    assert_eq!(first[0].numbers, second[0].numbers);

    // The recompute rewrote a valid entry.
    let mut third = Campaign::new(Some(ResultCache::new(&dir)));
    third.run_ok(&[spec]);
    assert_eq!(third.counters.cache_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Any change to the run's inputs — here a machine-configuration field
/// — changes the content key, so stale entries are never served.
#[test]
fn config_change_invalidates_the_key() {
    let dir = tmpdir("stale");
    let base = BarrierBench {
        episodes: 3,
        warmup: 1,
        ..BarrierBench::paper(Mechanism::Amo, 4)
    };
    let mut slow_cfg = SystemConfig::with_procs(4);
    slow_cfg.network.hop_latency *= 2;
    let changed = BarrierBench {
        config: Some(slow_cfg),
        ..base
    };
    assert_ne!(
        RunSpec::Barrier(base).key(),
        RunSpec::Barrier(changed).key(),
        "config override must change the content key"
    );

    let mut c = Campaign::new(Some(ResultCache::new(&dir)));
    c.run_ok(&[RunSpec::Barrier(base)]);
    let mut c2 = Campaign::new(Some(ResultCache::new(&dir)));
    c2.run_ok(&[RunSpec::Barrier(changed)]);
    assert_eq!(c2.counters.cache_hits, 0, "changed config must not hit");
    assert_eq!(c2.counters.cache_misses, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The spec files shipped in `specs/` must parse, and the error-rate
/// sweep must expand to the documented six-point grid.
#[test]
fn committed_spec_files_parse_and_expand() {
    let specs = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    for name in ["paper.json", "quick.json", "error-rate-sweep.json"] {
        let doc = std::fs::read_to_string(specs.join(name)).unwrap();
        let spec = CampaignSpec::parse(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
        match (name, &spec.plan) {
            ("error-rate-sweep.json", CampaignPlan::Grid(runs)) => {
                assert_eq!(runs.len(), 6, "one run per documented error rate");
                let RunSpec::Barrier(b) = &runs[0].spec else {
                    panic!("barrier sweep")
                };
                assert_eq!(b.procs, 64);
                let cfg = b.config.expect("fault plan applied");
                assert_eq!(cfg.faults.seed, 42);
                assert_eq!(cfg.faults.jitter_max, 8);
            }
            (_, CampaignPlan::Artifacts { .. }) => {}
            (n, p) => panic!("{n}: unexpected plan {p:?}"),
        }
    }
}

/// Golden test: one campaign invocation over the paper profile
/// reproduces the committed `tables_output.txt` byte-for-byte. Slow
/// (it is the full artifact set), so ignored by default; CI runs it
/// release-mode alongside the cold/warm binary diff.
#[test]
#[ignore = "full paper render; run with --release -- --ignored"]
fn paper_render_matches_committed_tables_output() {
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tables_output.txt"
    ))
    .expect("committed tables_output.txt");
    let mut c = Campaign::uncached();
    let rendered = artifacts::render_artifacts(&mut c, &ArtifactProfile::paper(), &|_| true, false);
    assert_eq!(
        rendered, committed,
        "campaign render drifted from the committed artifact"
    );
}
