//! Content-addressed on-disk result cache.
//!
//! Entries live under a cache directory (default
//! `target/campaign-cache/`), one file per run, addressed by the run's
//! 128-bit content key (see [`crate::run::RunSpec::key`]): path
//! `<dir>/<first two hex digits>/<32-hex-digit key>.json`. An entry is
//! two lines:
//!
//! ```text
//! {"schema":"amo-cache-v1","key":"<hex>","len":N,"checksum":"<hex>"}
//! <amo-run-artifacts-v1 payload>
//! ```
//!
//! The header pins the payload's byte length and its FNV-1a-128
//! checksum, so a truncated, bit-flipped, or hand-edited entry is
//! detected on read and treated as a miss — the run recomputes and the
//! entry is rewritten. Stale entries never need detection: any change
//! to the run's inputs (config, seeds, workload parameters, code
//! fingerprint) changes the key, so stale results are simply never
//! addressed again. Writes go through a temp file + rename, so a
//! crashed campaign cannot leave a half-written entry under a live key.

use crate::run::{outcome_from_json, outcome_to_json, RunArtifacts};
use amo_types::jsonv::Json;
use amo_types::seed::stable_hash128;
use amo_types::JsonWriter;
use std::path::{Path, PathBuf};

/// Schema tag of the entry header line.
pub const CACHE_SCHEMA: &str = "amo-cache-v1";

/// Render a 128-bit key as 32 lowercase hex digits.
pub fn key_hex(key: (u64, u64)) -> String {
    format!("{:016x}{:016x}", key.0, key.1)
}

/// A handle on one on-disk cache directory.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Cache rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The conventional location: `target/campaign-cache` under the
    /// current directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("campaign-cache")
    }

    /// Root directory of this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn entry_path(&self, key: (u64, u64)) -> PathBuf {
        let hex = key_hex(key);
        self.dir.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Look up `key`. Returns the cached outcome if the entry exists and
    /// passes verification; any defect (unreadable, malformed header,
    /// key/length/checksum mismatch, undecodable payload) is a miss.
    pub fn get(&self, key: (u64, u64)) -> Option<Result<RunArtifacts, String>> {
        let raw = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let (header, payload) = raw.split_once('\n')?;
        let payload = payload.strip_suffix('\n').unwrap_or(payload);
        let h = Json::parse(header).ok()?;
        if h.get("schema")?.as_str()? != CACHE_SCHEMA {
            return None;
        }
        if h.get("key")?.as_str()? != key_hex(key) {
            return None;
        }
        if h.get("len")?.as_u64()? != payload.len() as u64 {
            return None;
        }
        if h.get("checksum")?.as_str()? != key_hex(stable_hash128(payload.as_bytes())) {
            return None;
        }
        outcome_from_json(payload).ok()
    }

    /// Store `outcome` under `key`, atomically (temp file + rename).
    /// I/O failures are reported, not fatal: a read-only cache directory
    /// degrades a campaign to cold runs, it does not kill it.
    pub fn put(
        &self,
        key: (u64, u64),
        outcome: &Result<RunArtifacts, String>,
    ) -> Result<(), String> {
        write_entry(&self.entry_path(key), key, &outcome_to_json(outcome))
    }

    /// Path of the derived-artifact blob of `kind` for `key`:
    /// `<dir>/<kind>/<first two hex digits>/<hex key>.json`.
    pub fn blob_path(&self, kind: &str, key: (u64, u64)) -> PathBuf {
        let hex = key_hex(key);
        self.dir
            .join(kind)
            .join(&hex[..2])
            .join(format!("{hex}.json"))
    }

    /// Look up a derived-artifact blob (e.g. a critical-path report)
    /// stored under `kind`/`key`. Entries use the same
    /// header-plus-checksum envelope as run outcomes, so corruption is a
    /// miss here too.
    pub fn get_blob(&self, kind: &str, key: (u64, u64)) -> Option<String> {
        let raw = std::fs::read_to_string(self.blob_path(kind, key)).ok()?;
        let (header, payload) = raw.split_once('\n')?;
        let payload = payload.strip_suffix('\n').unwrap_or(payload);
        let h = Json::parse(header).ok()?;
        if h.get("schema")?.as_str()? != CACHE_SCHEMA {
            return None;
        }
        if h.get("key")?.as_str()? != key_hex(key) {
            return None;
        }
        if h.get("len")?.as_u64()? != payload.len() as u64 {
            return None;
        }
        if h.get("checksum")?.as_str()? != key_hex(stable_hash128(payload.as_bytes())) {
            return None;
        }
        Some(payload.to_string())
    }

    /// Store a derived-artifact blob under `kind`/`key`, atomically.
    pub fn put_blob(&self, kind: &str, key: (u64, u64), payload: &str) -> Result<(), String> {
        write_entry(&self.blob_path(kind, key), key, payload)
    }
}

/// Write one checksummed cache entry (header line + payload) via a temp
/// file and rename.
fn write_entry(path: &Path, key: (u64, u64), payload: &str) -> Result<(), String> {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", CACHE_SCHEMA);
    w.kv_str("key", &key_hex(key));
    w.kv_u64("len", payload.len() as u64);
    w.kv_str("checksum", &key_hex(stable_hash128(payload.as_bytes())));
    w.end_obj();
    let entry = format!("{}\n{payload}\n", w.finish());

    let parent = path.parent().expect("entry path has a parent");
    std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, &entry).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amo_types::Stats;

    fn art(v: f64) -> Result<RunArtifacts, String> {
        Ok(RunArtifacts {
            numbers: vec![("x".into(), v)],
            stats: Stats::new(),
        })
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("amo-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_then_get_round_trips() {
        let cache = ResultCache::new(tmpdir("roundtrip"));
        let key = (0x1234, 0xABCD);
        assert!(cache.get(key).is_none(), "cold cache misses");
        cache.put(key, &art(42.5)).unwrap();
        let got = cache.get(key).expect("hit").expect("ok");
        assert_eq!(got.num("x"), 42.5);
        // Error outcomes cache too (a known-bad cell must not re-simulate).
        let ekey = (0x9999, 0x1111);
        cache.put(ekey, &Err("boom".into())).unwrap();
        assert_eq!(cache.get(ekey).unwrap().unwrap_err(), "boom");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupted_payload_is_a_miss() {
        let cache = ResultCache::new(tmpdir("corrupt"));
        let key = (7, 8);
        cache.put(key, &art(1.0)).unwrap();
        let path = cache.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte (past the header line).
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[nl + 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.get(key).is_none(), "flipped byte must fail checksum");
        // Recompute-and-rewrite restores the entry.
        cache.put(key, &art(1.0)).unwrap();
        assert!(cache.get(key).is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn blobs_round_trip_and_detect_corruption() {
        let cache = ResultCache::new(tmpdir("blob"));
        let key = (0xAA, 0xBB);
        assert!(cache.get_blob("critpath", key).is_none(), "cold miss");
        cache
            .put_blob("critpath", key, r#"{"schema":"amo-critpath-v1"}"#)
            .unwrap();
        assert_eq!(
            cache.get_blob("critpath", key).as_deref(),
            Some(r#"{"schema":"amo-critpath-v1"}"#)
        );
        // Kinds are separate namespaces.
        assert!(cache.get_blob("other", key).is_none());
        // A flipped payload byte fails the checksum.
        let path = cache.blob_path("critpath", key);
        let mut bytes = std::fs::read(&path).unwrap();
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[nl + 5] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.get_blob("critpath", key).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_and_mislabeled_entries_are_misses() {
        let cache = ResultCache::new(tmpdir("defects"));
        let key = (21, 22);
        cache.put(key, &art(3.0)).unwrap();
        let path = cache.entry_path(key);
        let full = std::fs::read_to_string(&path).unwrap();
        // Truncation.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(cache.get(key).is_none());
        // An entry stored under the wrong key (e.g. a renamed file).
        let other = (23, 24);
        std::fs::create_dir_all(cache.entry_path(other).parent().unwrap()).unwrap();
        std::fs::write(cache.entry_path(other), &full).unwrap();
        assert!(cache.get(other).is_none(), "embedded key must match path");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
