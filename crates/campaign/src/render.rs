//! Plain-text rendering of the regenerated tables and figures, in the
//! layout of the paper.

use crate::artifacts::{Figure7Row, Table2Row, Table3Row, Table4Row};

fn hline(width: usize) -> String {
    "-".repeat(width)
}

/// Render Table 2: speedups of centralized barriers over LL/SC.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 2. Performance of different barriers.\n");
    out.push_str(&format!(
        "{:>5} | {:>8} {:>8} {:>8} {:>8} | {:>12}\n",
        "CPUs", "ActMsg", "Atomic", "MAO", "AMO", "LL/SC cycles"
    ));
    out.push_str(&hline(60));
    out.push('\n');
    for r in rows {
        let s: Vec<f64> = r.speedups.iter().map(|&(_, v)| v).collect();
        out.push_str(&format!(
            "{:>5} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>12.0}\n",
            r.procs, s[0], s[1], s[2], s[3], r.base_cycles
        ));
    }
    out
}

/// Render Figure 5: cycles-per-processor of centralized barriers.
pub fn render_figure5(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5. Cycles-per-processor of different barriers.\n");
    out.push_str(&format!(
        "{:>5} | {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "CPUs", "LL/SC", "ActMsg", "Atomic", "MAO", "AMO"
    ));
    out.push_str(&hline(58));
    out.push('\n');
    for r in rows {
        let v: Vec<f64> = r.cycles_per_proc.iter().map(|&(_, v)| v).collect();
        out.push_str(&format!(
            "{:>5} | {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}\n",
            r.procs, v[0], v[1], v[2], v[3], v[4]
        ));
    }
    out
}

/// Render Table 3: tree-barrier speedups over the flat LL/SC baseline.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 3. Performance of tree-based barriers.\n");
    out.push_str(&format!(
        "{:>5} | {:>11} {:>12} {:>12} {:>9} {:>9} | {:>7}\n",
        "CPUs", "LL/SC+tree", "ActMsg+tree", "Atomic+tree", "MAO+tree", "AMO+tree", "AMO"
    ));
    out.push_str(&hline(80));
    out.push('\n');
    for r in rows {
        let s: Vec<f64> = r.tree_speedups.iter().map(|&(_, _, v)| v).collect();
        out.push_str(&format!(
            "{:>5} | {:>11.2} {:>12.2} {:>12.2} {:>9.2} {:>9.2} | {:>7.2}\n",
            r.procs, s[0], s[1], s[2], s[3], s[4], r.amo_flat_speedup
        ));
    }
    out.push_str("(best branching factors: ");
    for r in rows {
        let b: Vec<String> = r
            .tree_speedups
            .iter()
            .map(|&(m, b, _)| format!("{}={b}", m.label()))
            .collect();
        out.push_str(&format!("[{} CPUs: {}] ", r.procs, b.join(" ")));
    }
    out.push_str(")\n");
    out
}

/// Render Figure 6: cycles-per-processor of tree barriers.
pub fn render_figure6(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6. Cycles-per-processor of tree-based barriers.\n");
    out.push_str(&format!(
        "{:>5} | {:>10} {:>10} {:>11} {:>9} {:>9}\n",
        "CPUs", "LL/SC+tr", "ActMsg+tr", "Atomic+tr", "MAO+tr", "AMO+tr"
    ));
    out.push_str(&hline(62));
    out.push('\n');
    for r in rows {
        let v: Vec<f64> = r.cycles_per_proc.iter().map(|&(_, v)| v).collect();
        out.push_str(&format!(
            "{:>5} | {:>10.1} {:>10.1} {:>11.1} {:>9.1} {:>9.1}\n",
            r.procs, v[0], v[1], v[2], v[3], v[4]
        ));
    }
    out
}

/// Render Table 4: lock speedups over the LL/SC ticket lock.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 4. Speedups of different locks over the LL/SC-based ticket lock.\n");
    out.push_str(&format!("{:>5} |", "CPUs"));
    for (m, _, _) in &rows[0].speedups {
        out.push_str(&format!(" {:>7}t {:>7}a |", m.label(), m.label()));
    }
    out.push('\n');
    out.push_str(&hline(6 + rows[0].speedups.len() * 19));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>5} |", r.procs));
        for &(_, t, a) in &r.speedups {
            out.push_str(&format!(" {:>8.2} {:>8.2} |", t, a));
        }
        out.push('\n');
    }
    out
}

/// Render Figure 7: normalized ticket-lock network traffic.
pub fn render_figure7(rows: &[Figure7Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 7. Network traffic for ticket locks (normalized to LL/SC).\n");
    out.push_str(&format!(
        "{:>5} | {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "CPUs", "LL/SC", "ActMsg", "Atomic", "MAO", "AMO"
    ));
    out.push_str(&hline(54));
    out.push('\n');
    for r in rows {
        let v: Vec<f64> = r.traffic.iter().map(|&(_, _, n)| n).collect();
        out.push_str(&format!(
            "{:>5} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            r.procs, v[0], v[1], v[2], v[3], v[4]
        ));
    }
    out
}

/// Render the MCS-lock extension table.
pub fn render_ext_locks(rows: &[crate::artifacts::ExtLocksRow]) -> String {
    let mut out = String::new();
    out.push_str("Extension: MCS queue locks (speedup over the LL/SC ticket lock).\n");
    out.push_str(&format!(
        "{:>5} | {:>9} {:>9} {:>9} {:>9}\n",
        "CPUs", "LL/SC", "Atomic", "MAO", "AMO"
    ));
    out.push_str(&hline(52));
    out.push('\n');
    for r in rows {
        let v: Vec<f64> = r.mcs_speedups.iter().map(|&(_, s)| s).collect();
        out.push_str(&format!(
            "{:>5} | {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            r.procs, v[0], v[1], v[2], v[3]
        ));
    }
    out
}

/// Render the barrier-algorithm extension table.
pub fn render_ext_barriers(rows: &[crate::artifacts::ExtBarriersRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Extension: dissemination barriers vs the paper's algorithms\n\
         (cycles/episode, speedup over centralized LL/SC; tree* = best branching).\n",
    );
    out.push_str(&format!("{:>5} |", "CPUs"));
    for (label, _, _) in &rows[0].entries {
        out.push_str(&format!(" {label:>20} |"));
    }
    out.push('\n');
    out.push_str(&hline(6 + rows[0].entries.len() * 23));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>5} |", r.procs));
        for &(_, cycles, speedup) in &r.entries {
            out.push_str(&format!(" {cycles:>11.0} ({speedup:>5.2}x) |"));
        }
        out.push('\n');
    }
    out
}

/// Render the k-level AMO tree study.
pub fn render_ext_ktree(rows: &[crate::artifacts::ExtKtreeRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Extension: deep AMO combining trees vs the flat AMO barrier\n\
         (the paper's future-work question; ratio >1 means the tree helps).\n",
    );
    out.push_str(&format!(
        "{:>5} | {:>12} | {}\n",
        "CPUs", "flat cycles", "per branching: b -> depth, cycles (ratio)"
    ));
    out.push_str(&hline(78));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>5} | {:>12.0} |", r.procs, r.flat_cycles));
        for &(b, depth, cycles, ratio) in &r.ktrees {
            out.push_str(&format!(" b={b}: d{depth}, {cycles:.0} ({ratio:.2}x);"));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// CSV renderers (machine-readable output for the `tables --csv` mode)
// ---------------------------------------------------------------------

/// Table 2 as CSV: `procs,mech,speedup,cycles_per_proc`.
pub fn csv_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from("table,procs,mech,speedup,cycles_per_proc\n");
    for r in rows {
        for (i, &(mech, cpp)) in r.cycles_per_proc.iter().enumerate() {
            let speedup = if i == 0 { 1.0 } else { r.speedups[i - 1].1 };
            out.push_str(&format!(
                "table2,{},{},{:.4},{:.2}\n",
                r.procs,
                mech.label(),
                speedup,
                cpp
            ));
        }
    }
    out
}

/// Table 3 as CSV: `procs,mech,branching,tree_speedup` plus the flat
/// AMO row per size.
pub fn csv_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from("table,procs,mech,branching,speedup,cycles_per_proc\n");
    for r in rows {
        for (i, &(mech, b, s)) in r.tree_speedups.iter().enumerate() {
            out.push_str(&format!(
                "table3,{},{}+tree,{},{:.4},{:.2}\n",
                r.procs,
                mech.label(),
                b,
                s,
                r.cycles_per_proc[i].1
            ));
        }
        out.push_str(&format!(
            "table3,{},AMO,,{:.4},\n",
            r.procs, r.amo_flat_speedup
        ));
    }
    out
}

/// Table 4 as CSV: `procs,mech,kind,speedup`.
pub fn csv_table4(rows: &[Table4Row]) -> String {
    let mut out = String::from("table,procs,mech,kind,speedup\n");
    for r in rows {
        for &(mech, t, a) in &r.speedups {
            out.push_str(&format!(
                "table4,{},{},ticket,{:.4}\n",
                r.procs,
                mech.label(),
                t
            ));
            out.push_str(&format!(
                "table4,{},{},array,{:.4}\n",
                r.procs,
                mech.label(),
                a
            ));
        }
    }
    out
}

/// Figure 7 as CSV: `procs,mech,bytes,normalized`.
pub fn csv_figure7(rows: &[Figure7Row]) -> String {
    let mut out = String::from("table,procs,mech,bytes,normalized\n");
    for r in rows {
        for &(mech, bytes, norm) in &r.traffic {
            out.push_str(&format!(
                "figure7,{},{},{},{:.4}\n",
                r.procs,
                mech.label(),
                bytes,
                norm
            ));
        }
    }
    out
}

/// Render the synchronization-tax study.
pub fn render_sync_tax(procs: u16, rows: &[amo_workloads::app::SyncTaxRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension: synchronization tax of a bulk-synchronous app at {procs} CPUs\n\
         (fraction of each work+barrier step spent synchronizing).\n"
    ));
    out.push_str(&format!("{:>10} |", "work/step"));
    for c in &rows[0].cells {
        out.push_str(&format!(" {:>8}", c.mech.label()));
    }
    out.push('\n');
    out.push_str(&hline(12 + rows[0].cells.len() * 9));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>10} |", r.work_grain));
        for c in &r.cells {
            out.push_str(&format!(" {:>7.1}%", c.tax * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Render the critical-section sensitivity study.
pub fn render_cs_sensitivity(procs: u16, rows: &[amo_workloads::app::CsSensitivityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension: ticket-lock sensitivity to critical-section length at {procs} CPUs\n\
         (benchmark time normalized to LL/SC per row).\n"
    ));
    out.push_str(&format!("{:>9} |", "CS cycles"));
    for (m, _) in &rows[0].times {
        out.push_str(&format!(" {:>8}", m.label()));
    }
    out.push('\n');
    out.push_str(&hline(11 + rows[0].times.len() * 9));
    out.push('\n');
    for r in rows {
        let llsc = r
            .times
            .iter()
            .find(|(m, _)| *m == amo_sync::Mechanism::LlSc)
            .expect("LL/SC measured")
            .1 as f64;
        out.push_str(&format!("{:>9} |", r.cs_cycles));
        for &(_, t) in &r.times {
            out.push_str(&format!(" {:>7.2}x", llsc / t as f64));
        }
        out.push('\n');
    }
    out
}

/// Render the point-to-point signalling study.
pub fn render_signal(pairs: u16, results: &[amo_workloads::app::SignalResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension: producer→consumer signal latency ({pairs} cross-node pairs)\n"
    ));
    out.push_str("(one-way cycles from the producer's release to the consumer's wake-up).\n");
    for r in results {
        out.push_str(&format!(
            "  {:>8}: {:>7.0} cycles\n",
            r.mech.label(),
            r.mean_latency
        ));
    }
    out
}

/// Render the self-scheduling-loop study.
pub fn render_self_sched(
    procs: u16,
    tasks: u32,
    rows: &[amo_workloads::app::SelfSchedRow],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension: dynamic loop self-scheduling ({tasks} tasks on {procs} CPUs)\n"
    ));
    out.push_str("(wall cycles to drain the pool; the shared index is a fetch-add).\n");
    out.push_str(&format!("{:>10} |", "task grain"));
    for c in &rows[0].cells {
        out.push_str(&format!(" {:>9}", c.mech.label()));
    }
    out.push('\n');
    out.push_str(&hline(12 + rows[0].cells.len() * 10));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>10} |", r.task_grain));
        for c in &r.cells {
            out.push_str(&format!(" {:>9}", c.total_cycles));
        }
        out.push('\n');
    }
    out
}

/// Render the outcomes of a grid campaign, one line per cell:
/// `label: name=value ...` for successful runs (the run's artifact
/// scalars in their fixed order) or `label: error: ...` (first line of
/// the failure) for faulted cells.
pub fn render_grid(
    runs: &[crate::spec::GridRun],
    outcomes: &[Result<crate::run::RunArtifacts, String>],
) -> String {
    let mut out = String::new();
    for (run, outcome) in runs.iter().zip(outcomes) {
        match outcome {
            Ok(art) => {
                out.push_str(&run.label);
                out.push(':');
                for (name, value) in &art.numbers {
                    out.push_str(&format!(" {name}={value}"));
                }
                out.push('\n');
            }
            Err(msg) => {
                let first = msg.lines().next().unwrap_or("unknown failure");
                out.push_str(&format!("{}: error: {first}\n", run.label));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::*;
    use amo_sync::Mechanism;

    #[test]
    fn app_renderers_cover_their_studies() {
        use amo_workloads::app::{
            CsSensitivityRow, SelfSchedCell, SelfSchedRow, SignalResult, SyncTaxCell, SyncTaxRow,
        };
        let tax = vec![SyncTaxRow {
            work_grain: 1000,
            cells: Mechanism::ALL
                .iter()
                .map(|&mech| SyncTaxCell {
                    mech,
                    step_cycles: 2000.0,
                    tax: 0.5,
                })
                .collect(),
        }];
        let s = render_sync_tax(16, &tax);
        assert!(s.contains("synchronization tax") && s.contains("50.0%"));

        let cs = vec![CsSensitivityRow {
            cs_cycles: 250,
            times: Mechanism::ALL.iter().map(|&m| (m, 1000)).collect(),
        }];
        let s = render_cs_sensitivity(16, &cs);
        assert!(s.contains("critical-section") && s.contains("1.00x"));

        let sig: Vec<SignalResult> = Mechanism::ALL
            .iter()
            .map(|&mech| SignalResult {
                mech,
                mean_latency: 500.0,
            })
            .collect();
        assert!(render_signal(8, &sig).contains("500 cycles"));

        let ss = vec![SelfSchedRow {
            task_grain: 50,
            cells: Mechanism::ALL
                .iter()
                .map(|&mech| SelfSchedCell {
                    mech,
                    total_cycles: 4242,
                })
                .collect(),
        }];
        assert!(render_self_sched(16, 256, &ss).contains("4242"));
    }

    #[test]
    fn renderers_do_not_panic_on_synthetic_data() {
        let t2 = vec![Table2Row {
            procs: 4,
            base_cycles: 1000.0,
            speedups: TABLE_MECHS.iter().map(|&m| (m, 2.0)).collect(),
            cycles_per_proc: std::iter::once((Mechanism::LlSc, 250.0))
                .chain(TABLE_MECHS.iter().map(|&m| (m, 100.0)))
                .collect(),
        }];
        assert!(render_table2(&t2).contains("Table 2"));
        assert!(render_figure5(&t2).contains("Figure 5"));

        let t3 = vec![Table3Row {
            procs: 16,
            base_cycles: 5000.0,
            tree_speedups: TREE_MECHS.iter().map(|&m| (m, 4, 3.0)).collect(),
            amo_flat_speedup: 9.0,
            cycles_per_proc: TREE_MECHS.iter().map(|&m| (m, 120.0)).collect(),
        }];
        assert!(render_table3(&t3).contains("Table 3"));
        assert!(render_figure6(&t3).contains("Figure 6"));

        let t4 = vec![Table4Row {
            procs: 4,
            base_cycles: 8000.0,
            speedups: LOCK_MECHS.iter().map(|&m| (m, 1.0, 0.5)).collect(),
        }];
        let s = render_table4(&t4);
        assert!(s.contains("Table 4"));
        assert!(s.contains("AMO"));

        let f7 = vec![Figure7Row {
            procs: 128,
            traffic: LOCK_MECHS.iter().map(|&m| (m, 1000, 1.0)).collect(),
        }];
        assert!(render_figure7(&f7).contains("Figure 7"));
    }
}
