//! The unit a campaign schedules and caches: one simulation run.
//!
//! A [`RunSpec`] fully describes one simulator invocation — workload,
//! mechanism, sizes, seeds, fault plan, config overrides. It canonicalizes
//! to a JSON document ([`RunSpec::canonical_doc`]) whose stable 128-bit
//! hash ([`RunSpec::key`]) is the run's content address: two specs with
//! the same key are the same experiment, no matter which campaign, bin,
//! or session asks for them. Executing a spec yields a
//! [`RunArtifacts`] — the named scalars the table reducers consume plus
//! the machine's full [`Stats`] — or, for a faulted grid cell, an error
//! string; both outcomes serialize (`amo-run-artifacts-v1`) so the
//! result cache can replay them without simulating.

use amo_sync::Mechanism;
use amo_types::jsonv::Json;
use amo_types::{Cycle, JsonWriter, Stats, SystemConfig};
use amo_workloads::runner::{
    try_run_barrier, try_run_lock, BarrierAlgo, BarrierBench, LockBench, LockKind, SkewMode,
};

/// Schema tag of a serialized run outcome.
pub const ARTIFACTS_SCHEMA: &str = "amo-run-artifacts-v1";

/// Code fingerprint folded into every cache key. Bump the trailing
/// model tag whenever a change alters simulated timing or statistics
/// without touching any `RunSpec` field — the cache cannot see code,
/// only keys, so this constant is how stale entries get invalidated
/// wholesale. The crate version rides along so releases never collide.
pub const CODE_FINGERPRINT: &str = concat!("amo-", env!("CARGO_PKG_VERSION"), "+model-2");

/// One simulation run a campaign can schedule.
///
/// `Barrier` and `Lock` wrap the full bench descriptions (including
/// optional `SystemConfig` overrides and fault plans) and execute
/// through the fallible runners, so a faulted cell fails alone. The
/// application-study variants wrap the single-cell entry points in
/// `amo_workloads::app`.
#[derive(Clone, Debug)]
pub enum RunSpec {
    /// A barrier benchmark cell.
    Barrier(BarrierBench),
    /// A lock benchmark cell.
    Lock(LockBench),
    /// One synchronization-tax cell: `steps` iterations of `grain`
    /// cycles of jittered work plus a barrier.
    SyncTax {
        /// Mechanism under test.
        mech: Mechanism,
        /// Processor count.
        procs: u16,
        /// Cycles of useful work per processor per step.
        grain: Cycle,
        /// Steps (including warm-up).
        steps: u32,
        /// Warm-up steps excluded from measurement.
        warmup: u32,
    },
    /// One producer→consumer signalling cell.
    Signal {
        /// Mechanism under test.
        mech: Mechanism,
        /// Cross-node producer/consumer pairs.
        pairs: u16,
        /// Ping-pong rounds per pair.
        rounds: u32,
    },
    /// One self-scheduling-loop cell.
    SelfSched {
        /// Mechanism under test.
        mech: Mechanism,
        /// Processor count.
        procs: u16,
        /// Tasks in the shared pool.
        tasks: u32,
        /// Cycles of work per task.
        grain: Cycle,
    },
}

fn mech_tag(m: Mechanism) -> &'static str {
    m.label()
}

fn algo_tag(a: BarrierAlgo) -> String {
    match a {
        BarrierAlgo::Central => "central".into(),
        BarrierAlgo::Tree(b) => format!("tree:{b}"),
        BarrierAlgo::KTree(b) => format!("ktree:{b}"),
        BarrierAlgo::Dissemination => "dissem".into(),
    }
}

fn skew_tag(s: SkewMode) -> &'static str {
    match s {
        SkewMode::Random => "random",
        SkewMode::Arithmetic => "arithmetic",
    }
}

fn kind_tag(k: LockKind) -> &'static str {
    match k {
        LockKind::Ticket => "ticket",
        LockKind::Array => "array",
        LockKind::Mcs => "mcs",
    }
}

impl RunSpec {
    /// The canonical JSON document this run hashes to. The document pins
    /// every input that can change the simulated outcome: workload
    /// parameters, the *normalized* machine configuration (an omitted
    /// config override canonicalizes to the same document as an explicit
    /// paper-default config — same machine, same key), and the
    /// [`CODE_FINGERPRINT`].
    pub fn canonical_doc(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.kv_str("code", CODE_FINGERPRINT);
        match self {
            RunSpec::Barrier(b) => {
                w.kv_str("workload", "barrier");
                w.kv_str("mech", mech_tag(b.mech));
                w.kv_u64("procs", b.procs as u64);
                w.kv_u64("episodes", b.episodes as u64);
                w.kv_u64("warmup", b.warmup as u64);
                w.kv_str("algo", &algo_tag(b.algo));
                w.kv_str(
                    "style",
                    &b.style.map_or("default".into(), |s| format!("{s:?}")),
                );
                w.kv_u64("max_skew", b.max_skew);
                w.kv_str("skew", skew_tag(b.skew));
                w.kv_u64("seed", b.seed);
                w.kv_u64("watchdog", b.watchdog);
                let cfg = b
                    .config
                    .unwrap_or_else(|| SystemConfig::with_procs(b.procs));
                w.key("config");
                w.raw_val(&cfg.canonical_json());
            }
            RunSpec::Lock(b) => {
                w.kv_str("workload", "lock");
                w.kv_str("mech", mech_tag(b.mech));
                w.kv_str("kind", kind_tag(b.kind));
                w.kv_u64("procs", b.procs as u64);
                w.kv_u64("rounds", b.rounds as u64);
                w.kv_u64("cs_cycles", b.cs_cycles);
                w.kv_u64("max_think", b.max_think);
                w.kv_u64("seed", b.seed);
                w.kv_u64("watchdog", b.watchdog);
                w.key("check_exclusion");
                w.bool_val(b.check_exclusion);
                let cfg = b
                    .config
                    .unwrap_or_else(|| SystemConfig::with_procs(b.procs));
                w.key("config");
                w.raw_val(&cfg.canonical_json());
            }
            RunSpec::SyncTax {
                mech,
                procs,
                grain,
                steps,
                warmup,
            } => {
                w.kv_str("workload", "sync_tax");
                w.kv_str("mech", mech_tag(*mech));
                w.kv_u64("procs", *procs as u64);
                w.kv_u64("grain", *grain);
                w.kv_u64("steps", *steps as u64);
                w.kv_u64("warmup", *warmup as u64);
                w.key("config");
                w.raw_val(&SystemConfig::with_procs(*procs).canonical_json());
            }
            RunSpec::Signal {
                mech,
                pairs,
                rounds,
            } => {
                w.kv_str("workload", "signal");
                w.kv_str("mech", mech_tag(*mech));
                w.kv_u64("pairs", *pairs as u64);
                w.kv_u64("rounds", *rounds as u64);
                w.key("config");
                w.raw_val(&SystemConfig::with_procs(pairs * 2).canonical_json());
            }
            RunSpec::SelfSched {
                mech,
                procs,
                tasks,
                grain,
            } => {
                w.kv_str("workload", "self_sched");
                w.kv_str("mech", mech_tag(*mech));
                w.kv_u64("procs", *procs as u64);
                w.kv_u64("tasks", *tasks as u64);
                w.kv_u64("grain", *grain);
                w.key("config");
                w.raw_val(&SystemConfig::with_procs(*procs).canonical_json());
            }
        }
        w.end_obj();
        w.finish()
    }

    /// The run's content address: [`amo_types::seed::stable_hash128`] of
    /// the canonical document.
    pub fn key(&self) -> (u64, u64) {
        amo_types::seed::stable_hash128(self.canonical_doc().as_bytes())
    }

    /// Execute the run. Faulted or stalled barrier/lock cells come back
    /// as `Err(message)` — never a panic — so a campaign grid keeps its
    /// other cells. (The application studies run fault-free machines and
    /// keep their original panic-on-stall contract.)
    pub fn execute(&self) -> Result<RunArtifacts, String> {
        match self {
            RunSpec::Barrier(b) => match try_run_barrier(*b) {
                Ok(r) => Ok(RunArtifacts {
                    numbers: vec![
                        ("avg_cycles".into(), r.timing.avg_cycles),
                        ("cycles_per_proc".into(), r.timing.cycles_per_proc),
                        ("measured".into(), r.timing.measured as f64),
                    ],
                    stats: r.stats,
                }),
                Err(f) => Err(f.to_string()),
            },
            RunSpec::Lock(b) => match try_run_lock(*b) {
                Ok(r) => Ok(RunArtifacts {
                    numbers: vec![
                        ("total_cycles".into(), r.timing.total_cycles as f64),
                        (
                            "cycles_per_acquisition".into(),
                            r.timing.cycles_per_acquisition,
                        ),
                        ("acquisitions".into(), r.timing.acquisitions as f64),
                    ],
                    stats: r.stats,
                }),
                Err(f) => Err(f.to_string()),
            },
            RunSpec::SyncTax {
                mech,
                procs,
                grain,
                steps,
                warmup,
            } => {
                let c = amo_workloads::app::sync_tax_cell(*mech, *procs, *grain, *steps, *warmup);
                Ok(RunArtifacts {
                    numbers: vec![("step_cycles".into(), c.step_cycles), ("tax".into(), c.tax)],
                    stats: Stats::new(),
                })
            }
            RunSpec::Signal {
                mech,
                pairs,
                rounds,
            } => {
                let r = amo_workloads::app::signal_latency(*mech, *pairs, *rounds);
                Ok(RunArtifacts {
                    numbers: vec![("mean_latency".into(), r.mean_latency)],
                    stats: Stats::new(),
                })
            }
            RunSpec::SelfSched {
                mech,
                procs,
                tasks,
                grain,
            } => {
                let c = amo_workloads::app::self_sched_cell(*mech, *procs, *tasks, *grain);
                Ok(RunArtifacts {
                    numbers: vec![("total_cycles".into(), c.total_cycles as f64)],
                    stats: Stats::new(),
                })
            }
        }
    }
}

/// What one run produced: the named scalars its reducers consume, plus
/// the machine-wide statistics (message/byte/fault counters, latency
/// histograms) for traffic figures and campaign-level aggregation.
#[derive(Clone, Debug)]
pub struct RunArtifacts {
    /// Named scalar results, in a fixed per-workload order.
    pub numbers: Vec<(String, f64)>,
    /// Machine statistics (empty for the app studies, which reduce to
    /// scalars only).
    pub stats: Stats,
}

impl RunArtifacts {
    /// Look up a named scalar; panics with the available names on a
    /// miss (a reducer asking for the wrong workload's number is a bug).
    pub fn num(&self, name: &str) -> f64 {
        self.numbers
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| {
                panic!(
                    "no artifact number '{name}' (have: {})",
                    self.numbers
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .1
    }
}

/// Serialize a run outcome (success or failure) as one
/// `amo-run-artifacts-v1` JSON document. Floats use Rust's shortest
/// round-trip `Display`, so a decode–encode cycle is byte-identical —
/// the property the warm-cache bit-identity guarantee rests on.
pub fn outcome_to_json(outcome: &Result<RunArtifacts, String>) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.kv_str("schema", ARTIFACTS_SCHEMA);
    match outcome {
        Ok(a) => {
            w.kv_str("status", "ok");
            w.key("numbers");
            w.begin_arr();
            for (name, value) in &a.numbers {
                w.begin_arr();
                w.str_val(name);
                w.f64_val(*value);
                w.end_arr();
            }
            w.end_arr();
            w.key("stats");
            a.stats.write_json(&mut w);
        }
        Err(msg) => {
            w.kv_str("status", "error");
            w.kv_str("message", msg);
        }
    }
    w.end_obj();
    w.finish()
}

/// Decode a serialized run outcome; `Err` describes why the document is
/// not a valid `amo-run-artifacts-v1` (the cache treats that as
/// corruption and recomputes).
pub fn outcome_from_json(doc: &str) -> Result<Result<RunArtifacts, String>, String> {
    let v = Json::parse(doc).map_err(|e| format!("artifacts: {e}"))?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some(ARTIFACTS_SCHEMA) => {}
        other => return Err(format!("artifacts: bad schema {other:?}")),
    }
    match v.get("status").and_then(|s| s.as_str()) {
        Some("ok") => {
            let mut numbers = Vec::new();
            for pair in v
                .get("numbers")
                .and_then(|n| n.as_arr())
                .ok_or("artifacts: missing numbers")?
            {
                let pair = pair.as_arr().ok_or("artifacts: malformed number pair")?;
                match pair {
                    [name, value] => numbers.push((
                        name.as_str()
                            .ok_or("artifacts: number name not a string")?
                            .to_string(),
                        value
                            .as_f64()
                            .ok_or("artifacts: number value not a number")?,
                    )),
                    _ => return Err("artifacts: number pair arity".into()),
                }
            }
            let stats = Stats::from_json(v.get("stats").ok_or("artifacts: missing stats")?)?;
            Ok(Ok(RunArtifacts { numbers, stats }))
        }
        Some("error") => Ok(Err(v
            .get("message")
            .and_then(|m| m.as_str())
            .ok_or("artifacts: missing error message")?
            .to_string())),
        other => Err(format!("artifacts: bad status {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barrier_spec() -> RunSpec {
        RunSpec::Barrier(BarrierBench {
            episodes: 3,
            warmup: 1,
            ..BarrierBench::paper(Mechanism::Amo, 4)
        })
    }

    #[test]
    fn canonical_doc_is_normalized_over_default_config() {
        // An explicit paper-default config override hashes identically
        // to no override: same machine, same key.
        let implicit = barrier_spec();
        let explicit = RunSpec::Barrier(BarrierBench {
            episodes: 3,
            warmup: 1,
            config: Some(SystemConfig::with_procs(4)),
            ..BarrierBench::paper(Mechanism::Amo, 4)
        });
        assert_eq!(implicit.canonical_doc(), explicit.canonical_doc());
        assert_eq!(implicit.key(), explicit.key());
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let a = barrier_spec();
        let mut cfg = SystemConfig::with_procs(4);
        cfg.faults.link_error_ppm = 1_000;
        let b = RunSpec::Barrier(BarrierBench {
            episodes: 3,
            warmup: 1,
            config: Some(cfg),
            ..BarrierBench::paper(Mechanism::Amo, 4)
        });
        let c = RunSpec::Lock(LockBench::paper(Mechanism::Amo, LockKind::Ticket, 4));
        assert_ne!(a.key(), b.key(), "fault plan must be part of the key");
        assert_ne!(a.key(), c.key());
        assert_ne!(b.key(), c.key());
    }

    #[test]
    fn outcome_round_trips_byte_identically() {
        let outcome = barrier_spec().execute();
        assert!(outcome.is_ok());
        let doc = outcome_to_json(&outcome);
        let back = outcome_from_json(&doc).expect("decodes");
        assert_eq!(
            outcome_to_json(&back),
            doc,
            "decode∘encode must be identity"
        );
        let art = back.unwrap();
        assert!(art.num("avg_cycles") > 0.0);
        assert!(art.stats.total_msgs() > 0);
    }

    #[test]
    fn faulted_cell_serializes_as_error() {
        let mut cfg = SystemConfig::with_procs(4);
        cfg.faults.link_error_ppm = 1_000_000;
        cfg.faults.max_link_retries = 1;
        cfg.faults.seed = 7;
        let spec = RunSpec::Barrier(BarrierBench {
            episodes: 2,
            warmup: 1,
            config: Some(cfg),
            ..BarrierBench::paper(Mechanism::Amo, 4)
        });
        let outcome = spec.execute();
        let msg = outcome.clone().unwrap_err();
        assert!(msg.contains("aborted"), "{msg}");
        let doc = outcome_to_json(&outcome);
        let back = outcome_from_json(&doc).expect("decodes");
        assert_eq!(back.unwrap_err(), msg);
    }
}
